"""Member registry: CA-certified ledger participants and their roles.

"Ledger members are registered and authenticated using their public keys"
(§II-C).  The registry wraps the CA: registering a member issues a
certificate binding (member id, role, pk); privileged operations call
:meth:`MemberRegistry.require_role` before proceeding.
"""

from __future__ import annotations

from ..crypto.ca import Certificate, CertificateAuthority, CertificateError, Role
from ..crypto.keys import PublicKey
from .errors import AuthenticationError, AuthorizationError

__all__ = ["MemberRegistry"]


class MemberRegistry:
    """All registered participants of one ledger deployment."""

    def __init__(self, ca: CertificateAuthority | None = None) -> None:
        self._ca = ca or CertificateAuthority("repro-root-ca")
        self._members: dict[str, Certificate] = {}

    @property
    def ca(self) -> CertificateAuthority:
        return self._ca

    @property
    def ca_public_key(self) -> PublicKey:
        return self._ca.public_key

    def register(self, member_id: str, role: Role, public_key: PublicKey) -> Certificate:
        """Register a member; the CA certifies the binding."""
        if member_id in self._members:
            raise AuthenticationError(f"member already registered: {member_id!r}")
        certificate = self._ca.issue(member_id, role, public_key)
        self._members[member_id] = certificate
        return certificate

    def certificate(self, member_id: str) -> Certificate:
        try:
            return self._members[member_id]
        except KeyError:
            raise AuthenticationError(f"unknown member: {member_id!r}") from None

    def public_key(self, member_id: str) -> PublicKey:
        return self.certificate(member_id).public_key

    def role(self, member_id: str) -> Role:
        return self.certificate(member_id).role

    def require_role(self, member_id: str, role: Role) -> Certificate:
        """Return the certificate iff the member holds ``role``."""
        certificate = self.certificate(member_id)
        if certificate.role != role:
            raise AuthorizationError(
                f"member {member_id!r} holds role {certificate.role.value!r}, "
                f"operation requires {role.value!r}"
            )
        return certificate

    def members_with_role(self, role: Role) -> list[str]:
        return sorted(m for m, c in self._members.items() if c.role == role)

    def all_members(self) -> list[str]:
        return sorted(self._members)

    def adopt(self, certificate: Certificate) -> Certificate:
        """Install an existing CA-issued certificate without re-issuing.

        The rebuild path (``repro/export/rebuild.py``) reconstructs a
        registry from an export bundle's certificates; re-issuing would
        mint *new* signatures and break byte-equivalence with the source
        deployment.  The certificate must verify against this registry's
        CA; adopting the same certificate twice is a no-op, a conflicting
        one is refused.
        """
        existing = self._members.get(certificate.member_id)
        if existing is not None:
            if existing == certificate:
                return existing
            raise AuthenticationError(
                f"member already registered with a different certificate: "
                f"{certificate.member_id!r}"
            )
        self.validate_certificate(certificate)
        self._members[certificate.member_id] = certificate
        return certificate

    def validate_certificate(self, certificate: Certificate) -> None:
        """Re-validate a presented certificate against the CA."""
        try:
            self._ca.validate(certificate)
        except CertificateError as exc:
            raise AuthenticationError(str(exc)) from exc

    def export(self) -> dict[str, Certificate]:
        """Snapshot of all certificates (for auditor ledger views)."""
        return dict(self._members)
