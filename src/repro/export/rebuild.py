"""Rebuild-from-truth: reconstruct a ledger from a bundle or raw stream.

The operator's strongest accountability claim is GlassDB-style: *the
journal stream alone determines every commitment*.  This module makes the
claim testable — it rebuilds a complete deployment (any backend, any shard
count) from an :class:`~repro.export.bundle.ExportBundle` or from a raw
on-disk stream, then cross-checks every root, epoch anchor, and signed
tree head against the bundle, a live instance, or caller-pinned heads.
Agreement proves the operator added nothing and lost nothing; every
disagreement is reported as a typed :class:`Divergence` inside a
:class:`RebuildReport` (an :class:`~repro.artifacts.Artifact`).

Unlike the standalone verifier, rebuilding *is* allowed to import the
ledger kernel — it exists to resurrect one.  A tampered stream refuses to
rebuild: interior corruption surfaces from the stream layer as
``StreamCorruptionError`` and is re-raised as :class:`RebuildError`, never
papered over into a half-trusted ledger.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from ..core.errors import LedgerError, RecoveryError
from ..core.ledger import CONFIG_FILE, Ledger, LedgerConfig
from ..core.members import MemberRegistry
from ..core.snapshot import load_config_file
from ..crypto.ca import Certificate, Role
from ..crypto.ecdsa import Signature
from ..crypto.keys import KeyPair, PublicKey
from ..core.errors import AuthenticationError
from ..encoding import decode, encode
from ..storage.stream import MemoryStream, StreamCorruptionError
from ..timeauth.clock import Clock
from ..transparency.sth import SignedTreeHead
from .bundle import BundleError, ExportBundle

__all__ = ["Divergence", "RebuildError", "RebuildReport", "rebuild_from_bundle", "rebuild_from_stream"]

REBUILD_SCHEME = "repro.rebuild_report.v1"


class RebuildError(LedgerError):
    """The source of truth refuses to rebuild (corrupt, purged, unusable)."""


@dataclass(frozen=True)
class Divergence:
    """One typed disagreement between the rebuilt ledger and a reference."""

    kind: str  # "root" | "anchor" | "sth" | "composite" | "live" | ...
    shard_index: int
    coordinate: str
    expected: bytes
    actual: bytes
    detail: str = ""


@dataclass(frozen=True)
class RebuildReport:
    """Outcome of a rebuild cross-check — divergence as evidence, not logs.

    ``ok`` iff no check diverged; ``checks`` names every comparison that
    ran, so "nothing diverged" is distinguishable from "nothing was
    checked".  As an :class:`~repro.artifacts.Artifact` the report
    round-trips through bytes, and ``verify()`` asserts its own internal
    consistency (``ok`` ⇔ no divergences recorded).
    """

    ok: bool
    source: str  # "bundle" | "stream"
    ledger_uri: str
    num_shards: int
    journals: int
    checks: tuple[str, ...]
    divergences: tuple[Divergence, ...] = ()

    def __bool__(self) -> bool:
        return self.ok

    def verify(self) -> bool:
        """Internal consistency; never raises."""
        return self.ok == (not self.divergences)

    def to_bytes(self) -> bytes:
        return encode(
            {
                "scheme": REBUILD_SCHEME,
                "ok": self.ok,
                "source": self.source,
                "ledger_uri": self.ledger_uri,
                "num_shards": self.num_shards,
                "journals": self.journals,
                "checks": list(self.checks),
                "divergences": [
                    {
                        "kind": d.kind,
                        "shard_index": d.shard_index,
                        "coordinate": d.coordinate,
                        "expected": d.expected,
                        "actual": d.actual,
                        "detail": d.detail,
                    }
                    for d in self.divergences
                ],
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RebuildReport":
        obj = decode(data)
        if not isinstance(obj, dict) or obj.get("scheme") != REBUILD_SCHEME:
            raise BundleError("not a repro.rebuild_report.v1 payload")
        return cls(
            ok=bool(obj["ok"]),
            source=obj["source"],
            ledger_uri=obj["ledger_uri"],
            num_shards=obj["num_shards"],
            journals=obj["journals"],
            checks=tuple(obj["checks"]),
            divergences=tuple(
                Divergence(
                    kind=d["kind"],
                    shard_index=d["shard_index"],
                    coordinate=d["coordinate"],
                    expected=bytes(d["expected"]),
                    actual=bytes(d["actual"]),
                    detail=d["detail"],
                )
                for d in obj["divergences"]
            ),
        )


# ----------------------------------------------------------------- from bundle


def rebuild_from_bundle(
    bundle: ExportBundle,
    *,
    lsp_keypair: KeyPair | None = None,
    registry: MemberRegistry | None = None,
    clock: Clock | None = None,
    live: Any = None,
    pinned_heads: Sequence[SignedTreeHead] | None = None,
) -> tuple[Any, RebuildReport]:
    """Reconstruct a deployment from ``bundle`` and cross-check it.

    Returns ``(ledger, report)`` — a :class:`Ledger` for a solo bundle, a
    :class:`repro.shard.ShardedLedger` for a sharded one.  ``lsp_keypair``
    defaults to the deployment-deterministic seed and must match the
    bundle-pinned LSP key; ``live``/``pinned_heads`` add external
    cross-checks on top of the bundle's own roots, anchors, and heads.

    Raises :class:`RebuildError` when the bundle cannot produce a complete
    ledger (purged prefix, truncated slice, corrupt journal bytes).
    """
    lsp_keypair = lsp_keypair or KeyPair.generate(seed=f"lsp:{bundle.ledger_uri}")
    registry = registry or MemberRegistry()
    divergences: list[Divergence] = []
    checks: list[str] = ["recover"]

    if lsp_keypair.public.to_bytes() != bundle.lsp_public_key:
        divergences.append(
            Divergence(
                kind="lsp-key",
                shard_index=-1,
                coordinate="lsp_public_key",
                expected=bundle.lsp_public_key,
                actual=lsp_keypair.public.to_bytes(),
                detail="supplied LSP keypair is not the bundle's LSP",
            )
        )
    _adopt_certificates(bundle, registry, divergences)
    checks.append("certificates")

    shards: list[Ledger] = []
    base_config = LedgerConfig(
        uri=bundle.ledger_uri,
        fractal_height=bundle.fractal_height,
        block_size=bundle.block_size,
        shards=1,
    )
    for section in sorted(bundle.shards, key=lambda s: s.shard_index):
        stream = MemoryStream()
        if section.genesis_start != 0:
            raise RebuildError(
                f"shard {section.shard_index} slice starts at jsn "
                f"{section.genesis_start}; rebuilding needs the stream from "
                f"genesis (purged prefixes are irrecoverable from a bundle)"
            )
        for position, entry in enumerate(section.entries):
            if entry.jsn != position:
                raise RebuildError(
                    f"shard {section.shard_index} slice is not contiguous at "
                    f"jsn {entry.jsn}"
                )
            if entry.data is not None:
                stream.append(entry.data)
            elif entry.occulted:
                stream.erase(stream.append(b""))
            else:
                raise RebuildError(
                    f"shard {section.shard_index} jsn {entry.jsn} was purged; "
                    f"its bytes are gone from the bundle"
                )
        if len(stream) == 0:
            raise RebuildError(f"shard {section.shard_index} slice is empty")
        try:
            shard = Ledger.recover(base_config, stream, registry, lsp_keypair, clock=clock)
        except (RecoveryError, StreamCorruptionError) as exc:
            raise RebuildError(
                f"shard {section.shard_index} refuses to rebuild: {exc}"
            ) from exc
        shards.append(shard)

    lsp_key = PublicKey.from_bytes(bundle.lsp_public_key)
    for index, (section, shard) in enumerate(
        zip(sorted(bundle.shards, key=lambda s: s.shard_index), shards)
    ):
        if bundle.num_shards > 1:
            shard.sth_shard_index = index
        _cross_check_shard(bundle, section, shard, lsp_key, divergences, checks)

    ledger: Any
    if bundle.num_shards > 1:
        ledger = _assemble_sharded(bundle, shards, registry, lsp_keypair, clock)
        checks.append("composite")
        _check_composite(bundle, ledger, divergences)
    else:
        ledger = shards[0]

    _external_cross_check(ledger, live, pinned_heads, divergences, checks)

    report = RebuildReport(
        ok=not divergences,
        source="bundle",
        ledger_uri=bundle.ledger_uri,
        num_shards=bundle.num_shards,
        journals=bundle.journal_count,
        checks=tuple(checks),
        divergences=tuple(divergences),
    )
    return ledger, report


# ----------------------------------------------------------------- from stream


def rebuild_from_stream(
    data_dir: str | os.PathLike[str],
    *,
    lsp_keypair: KeyPair | None = None,
    registry: MemberRegistry | None = None,
    clock: Clock | None = None,
    live: Any = None,
    pinned_heads: Sequence[SignedTreeHead] | None = None,
) -> tuple[Any, RebuildReport]:
    """Rebuild a deployment by full replay of its on-disk journal stream(s).

    Snapshots and node pages are deliberately ignored (``force_rebuild``):
    the raw stream is the source of truth being tested.  Interior stream
    corruption refuses the rebuild with :class:`RebuildError`.
    """
    base = Path(data_dir)
    try:
        config = load_config_file(base / CONFIG_FILE, data_dir=str(base))
    except LedgerError as exc:
        raise RebuildError(f"{base} holds no readable ledger config: {exc}") from exc
    lsp_keypair = lsp_keypair or KeyPair.generate(seed=f"lsp:{config.uri}")
    registry = registry or MemberRegistry()
    try:
        if config.shards > 1:
            from ..shard import ShardedLedger

            ledger: Any = ShardedLedger.open(
                str(base), registry, lsp_keypair, clock=clock, force_rebuild=True
            )
        else:
            ledger = Ledger.open(
                str(base), registry, lsp_keypair, clock=clock, force_rebuild=True
            )
    except (StreamCorruptionError, RecoveryError) as exc:
        raise RebuildError(f"stream under {base} refuses to rebuild: {exc}") from exc

    divergences: list[Divergence] = []
    checks = ["recover"]
    _external_cross_check(ledger, live, pinned_heads, divergences, checks)
    report = RebuildReport(
        ok=not divergences,
        source="stream",
        ledger_uri=config.uri,
        num_shards=config.shards,
        journals=ledger.size,
        checks=tuple(checks),
        divergences=tuple(divergences),
    )
    return ledger, report


# ------------------------------------------------------------------- internals


def _adopt_certificates(
    bundle: ExportBundle, registry: MemberRegistry, divergences: list[Divergence]
) -> None:
    if registry.ca_public_key.to_bytes() != bundle.ca_public_key:
        divergences.append(
            Divergence(
                kind="ca-key",
                shard_index=-1,
                coordinate="ca_public_key",
                expected=bundle.ca_public_key,
                actual=registry.ca_public_key.to_bytes(),
                detail="registry CA differs from the bundle's; certificates not adopted",
            )
        )
        return
    for bc in bundle.certificates:
        certificate = Certificate(
            member_id=bc.member_id,
            role=Role(bc.role),
            public_key=PublicKey.from_bytes(bc.public_key),
            issuer=bc.issuer,
            signature=Signature.from_bytes(bc.signature) if bc.signature else None,
        )
        try:
            registry.adopt(certificate)
        except AuthenticationError as exc:
            divergences.append(
                Divergence(
                    kind="certificate",
                    shard_index=-1,
                    coordinate=bc.member_id,
                    expected=bc.public_key,
                    actual=b"",
                    detail=str(exc),
                )
            )


def _cross_check_shard(
    bundle: ExportBundle,
    section: Any,
    shard: Ledger,
    lsp_key: PublicKey,
    divergences: list[Divergence],
    checks: list[str],
) -> None:
    tag = section.shard_index

    checks.append(f"root[{tag}]")
    trusted_root = _bundle_trusted_root(section, lsp_key)
    rebuilt_root = shard.current_root()
    if trusted_root is not None and rebuilt_root != trusted_root:
        divergences.append(
            Divergence(
                kind="root",
                shard_index=tag,
                coordinate="current_root",
                expected=trusted_root,
                actual=rebuilt_root,
                detail="rebuilt fam root diverges from the bundle's trusted root",
            )
        )

    checks.append(f"anchors[{tag}]")
    rebuilt_anchors = dict(shard.epoch_anchors().items())
    for epoch, root in section.anchors:
        actual = rebuilt_anchors.get(epoch)
        if actual != root:
            divergences.append(
                Divergence(
                    kind="anchor",
                    shard_index=tag,
                    coordinate=f"epoch {epoch}",
                    expected=root,
                    actual=actual or b"",
                    detail="rebuilt epoch anchor diverges",
                )
            )

    checks.append(f"sths[{tag}]")
    rebuilt_head = shard.get_sth()
    for position, blob in enumerate(section.sths):
        head = SignedTreeHead.from_bytes(blob)
        if not _head_matches_rebuilt(shard, head, rebuilt_head):
            divergences.append(
                Divergence(
                    kind="sth",
                    shard_index=tag,
                    coordinate=f"head #{position} (epoch {head.epoch}, live {head.live_size})",
                    expected=head.root,
                    actual=rebuilt_head.root,
                    detail="bundle head is not on the rebuilt append-only history",
                )
            )


def _bundle_trusted_root(section: Any, lsp_key: PublicKey) -> bytes | None:
    if not section.latest_receipt:
        return None
    from ..core.receipt import Receipt

    receipt = Receipt.from_bytes(section.latest_receipt)
    if not receipt.verify(lsp_key):
        return None
    return receipt.ledger_root


def _head_matches_rebuilt(
    shard: Ledger, head: SignedTreeHead, rebuilt_head: SignedTreeHead
) -> bool:
    """Does ``head`` sit on the rebuilt accumulator's append-only history?"""
    if head.coords == rebuilt_head.coords:
        return head.root == rebuilt_head.root
    try:
        cbundle, _assertion = shard.get_consistency(head, rebuilt_head)
    except (LedgerError, ValueError, KeyError, IndexError):
        return False
    return cbundle.verify(head, rebuilt_head)


def _assemble_sharded(
    bundle: ExportBundle,
    shards: list[Ledger],
    registry: MemberRegistry,
    lsp_keypair: KeyPair,
    clock: Clock | None,
) -> Any:
    from ..shard import ShardedLedger
    from ..timeauth import SimClock

    sharded = ShardedLedger.__new__(ShardedLedger)
    sharded.config = LedgerConfig(
        uri=bundle.ledger_uri,
        fractal_height=bundle.fractal_height,
        block_size=bundle.block_size,
        shards=bundle.num_shards,
    )
    sharded.num_shards = bundle.num_shards
    sharded.clock = clock or SimClock()
    sharded.registry = registry
    sharded._lsp_keypair = lsp_keypair
    sharded._shards = shards
    return sharded


def _check_composite(
    bundle: ExportBundle, sharded: Any, divergences: list[Divergence]
) -> None:
    if not bundle.composite_sth:
        divergences.append(
            Divergence(
                kind="composite",
                shard_index=-1,
                coordinate="composite_sth",
                expected=b"",
                actual=b"",
                detail="sharded bundle carries no composite head to check",
            )
        )
        return
    head = SignedTreeHead.from_bytes(bundle.composite_sth)
    actual = sharded.composite_root()
    if head.root != actual:
        divergences.append(
            Divergence(
                kind="composite",
                shard_index=-1,
                coordinate="composite_root",
                expected=head.root,
                actual=actual,
                detail="rebuilt composite root diverges from the bundle head",
            )
        )


def _external_cross_check(
    ledger: Any,
    live: Any,
    pinned_heads: Sequence[SignedTreeHead] | None,
    divergences: list[Divergence],
    checks: list[str],
) -> None:
    if pinned_heads:
        checks.append("pinned-heads")
        for head in pinned_heads:
            target = _shard_for_head(ledger, head)
            if target is None:
                divergences.append(
                    Divergence(
                        kind="sth",
                        shard_index=head.shard_index,
                        coordinate=f"pinned epoch {head.epoch}",
                        expected=head.root,
                        actual=b"",
                        detail="pinned head names a shard the rebuild does not have",
                    )
                )
                continue
            if not _head_matches_rebuilt(target, head, target.get_sth()):
                divergences.append(
                    Divergence(
                        kind="sth",
                        shard_index=head.shard_index,
                        coordinate=f"pinned epoch {head.epoch}, live {head.live_size}",
                        expected=head.root,
                        actual=target.current_root(),
                        detail="pinned head is not on the rebuilt history",
                    )
                )
    if live is not None:
        checks.append("live")
        live_head = live.get_sth()
        rebuilt_root = ledger.current_root()
        if live_head.root != rebuilt_root:
            divergences.append(
                Divergence(
                    kind="live",
                    shard_index=live_head.shard_index,
                    coordinate=f"live head epoch {live_head.epoch}",
                    expected=live_head.root,
                    actual=rebuilt_root,
                    detail="live instance's current head diverges from the rebuild",
                )
            )


def _shard_for_head(ledger: Any, head: SignedTreeHead) -> Ledger | None:
    shards = getattr(ledger, "shards", None)
    if shards is None:
        return ledger
    index = head.shard_index
    if 0 <= index < len(shards):
        return shards[index]
    return None
