"""Offline export, standalone verification, and rebuild-from-truth.

Three cooperating modules (DESIGN.md §17):

* :mod:`repro.export.bundle` — the checksummed single-file container and
  the :func:`export_bundle` writer (kernel-free module; the writer takes a
  live ledger object);
* :mod:`repro.export.verifier` — :func:`verify_bundle`, which re-runs
  what/when/who + STH consistency over a bundle with **no** ledger kernel,
  service, or network imports;
* :mod:`repro.export.rebuild` — :func:`rebuild_from_bundle` /
  :func:`rebuild_from_stream`, reconstructing a full deployment and
  cross-checking it, divergences reported as typed evidence.

``import repro.export`` stays standalone-safe: :mod:`repro.export.rebuild`
(which legitimately imports the kernel) is **not** imported here — reach it
as ``repro.export.rebuild`` explicitly.
"""

from .bundle import (
    BundleCertificate,
    BundleCorruptionError,
    BundleEntry,
    BundleError,
    ClueSection,
    ExportBundle,
    ShardSection,
    export_bundle,
)
from .verifier import verify_bundle, verify_bundle_path

__all__ = [
    "BundleCertificate",
    "BundleCorruptionError",
    "BundleEntry",
    "BundleError",
    "ClueSection",
    "ExportBundle",
    "ShardSection",
    "export_bundle",
    "verify_bundle",
    "verify_bundle_path",
]
