"""Standalone offline bundle verification — no ledger, no service, no network.

This module re-runs the paper's ubiquitous-verification story over an
:class:`~repro.export.bundle.ExportBundle` alone:

* **what** — every journal slot folds to the trusted root: a frontier-only
  :class:`~repro.merkle.fam.FamReplayer` replay of the whole slice (when it
  starts at jsn 0) must land exactly on the trusted commitment, every
  bundled full-chain fam proof must fold there too, and every bundled epoch
  anchor must equal the replayed epoch root;
* **when** — TSA-mode time journals bracket each journal's creation time;
  the tokens are reconstructed from the journal payloads themselves and
  checked against out-of-band TSA keys (T-Ledger evidence is not
  serializable into a bundle — DESIGN.md §17 records that limit);
* **who** — client signatures against CA-certified member keys, the LSP
  receipt against the LSP certificate, the block chain against the
  receipt's block hash;
* **consistency** — the signed tree head chain verifies per head, links
  append-only via consistency bundles, the LSP's signed assertions match
  both endpoints, and a sharded bundle's composite head refolds from its
  shard heads, each of which must match that shard's trusted root.

The trusted root per shard is, in order of preference: a caller-pinned
root, else the LSP-signed ``ledger_root`` of the bundled latest receipt.
The LSP/CA keys default to the bundle-pinned ones (trust-on-first-use);
callers with out-of-band keys pass them explicitly and any mismatch is a
failure, not a fallback.

Import discipline is the point: this file reaches only
``repro.crypto`` / ``repro.merkle`` / ``repro.encoding``, kernel-free
``repro.core`` leaves (journal, receipt, blocks), ``repro.transparency.sth``
and ``repro.timeauth`` — never ``repro.core.ledger``, ``repro.service`` or
``repro.net`` (a test asserts this on a live interpreter).  Verification
**never raises** on bad evidence: every defect lands in a falsy, typed
:class:`~repro.artifacts.VerifyResult`.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..artifacts import VerifyResult
from ..core.blocks import Block
from ..core.journal import Journal, JournalType
from ..core.receipt import Receipt
from ..crypto.ca import Certificate, Role
from ..crypto.ecdsa import Signature
from ..crypto.hashing import EMPTY_DIGEST
from ..crypto.keys import PublicKey
from ..encoding import decode
from ..merkle.cmtree import ClueProof
from ..merkle.fam import FamAccumulator, FamProof, FamReplayer
from ..timeauth.tsa import TimeStampToken
from ..transparency.sth import (
    SOLO_SHARD,
    ConsistencyAssertion,
    ConsistencyBundle,
    SignedTreeHead,
)
from .bundle import ExportBundle, ShardSection

__all__ = ["verify_bundle", "verify_bundle_path"]

_MAX_DETAILS = 8


class _Problems:
    """Accumulates typed defect strings; keeps the result message bounded."""

    def __init__(self) -> None:
        self.entries: list[str] = []

    def add(self, kind: str, message: str) -> None:
        self.entries.append(f"{kind}: {message}")

    def detail(self) -> str:
        shown = "; ".join(self.entries[:_MAX_DETAILS])
        extra = len(self.entries) - _MAX_DETAILS
        if extra > 0:
            shown += f"; (+{extra} more)"
        return shown


def verify_bundle(
    bundle: ExportBundle,
    *,
    ca_public_key: PublicKey | None = None,
    lsp_public_key: PublicKey | None = None,
    tsa_keys: Mapping[str, PublicKey] | None = None,
    pinned_roots: Mapping[int, bytes] | None = None,
) -> VerifyResult:
    """Offline-verify ``bundle``; returns a structured, never-raising result.

    ``tsa_keys`` enables the *when* factor (``when=None`` means "not
    checked", not "passed"); ``pinned_roots`` maps shard index → trusted fam
    root, overriding the receipt-derived root for that shard.
    """
    try:
        return _verify(bundle, ca_public_key, lsp_public_key, tsa_keys, pinned_roots)
    except Exception as exc:  # noqa: BLE001 — boundary: malformed evidence must
        # fail typed+falsy, not crash the auditor's batch run.
        return VerifyResult(
            ok=False,
            target="bundle",
            level="standalone",
            what=False,
            detail=f"malformed bundle evidence: {type(exc).__name__}: {exc}",
        )


def verify_bundle_path(path: Any, **anchors: Any) -> VerifyResult:
    """:func:`verify_bundle` over a bundle file.

    Container-level damage (truncation, bit rot) raises
    :class:`~repro.export.bundle.BundleCorruptionError` from
    :meth:`ExportBundle.read` — typed, and distinct from evidence-level
    failures which return a falsy result.
    """
    return verify_bundle(ExportBundle.read(path), **anchors)


def _verify(
    bundle: ExportBundle,
    ca_public_key: PublicKey | None,
    lsp_public_key: PublicKey | None,
    tsa_keys: Mapping[str, PublicKey] | None,
    pinned_roots: Mapping[int, bytes] | None,
) -> VerifyResult:
    problems = _Problems()
    what_ok = True
    who_ok = True
    when_ok: bool | None = True if tsa_keys is not None else None

    ca_key = ca_public_key or PublicKey.from_bytes(bundle.ca_public_key)
    lsp_key = lsp_public_key or PublicKey.from_bytes(bundle.lsp_public_key)
    if ca_public_key is not None and ca_public_key.to_bytes() != bundle.ca_public_key:
        who_ok = False
        problems.add("ca-key", "bundle pins a different CA key than supplied")
    if (
        lsp_public_key is not None
        and lsp_public_key.to_bytes() != bundle.lsp_public_key
    ):
        who_ok = False
        problems.add("lsp-key", "bundle pins a different LSP key than supplied")

    certificates: dict[str, Certificate] = {}
    for bc in bundle.certificates:
        cert = Certificate(
            member_id=bc.member_id,
            role=Role(bc.role),
            public_key=PublicKey.from_bytes(bc.public_key),
            issuer=bc.issuer,
            signature=Signature.from_bytes(bc.signature) if bc.signature else None,
        )
        if not cert.verify(ca_key):
            who_ok = False
            problems.add("certificate", f"{bc.member_id!r} fails CA validation")
        certificates[bc.member_id] = cert

    if len(bundle.shards) != bundle.num_shards:
        what_ok = False
        problems.add(
            "shape",
            f"bundle claims {bundle.num_shards} shards, carries {len(bundle.shards)}",
        )

    shard_roots: dict[int, bytes | None] = {}
    for section in bundle.shards:
        s_what, s_who, s_when, root = _verify_shard(
            bundle, section, certificates, lsp_key, tsa_keys, pinned_roots, problems
        )
        what_ok = what_ok and s_what
        who_ok = who_ok and s_who
        if when_ok is not None and s_when is not None:
            when_ok = when_ok and s_when
        shard_roots[section.shard_index] = root

    what_ok = _verify_composite(bundle, lsp_key, shard_roots, problems) and what_ok

    factors = [f for f in (what_ok, when_ok, who_ok) if f is not None]
    ok = all(factors)
    solo_root = shard_roots.get(0) if bundle.num_shards == 1 else None
    return VerifyResult(
        ok=ok,
        target="bundle",
        level="standalone",
        what=what_ok,
        when=when_ok,
        who=who_ok,
        trusted_root=solo_root,
        detail=problems.detail()
        or f"{bundle.journal_count} journals across {bundle.num_shards} shard(s)",
    )


def _verify_shard(
    bundle: ExportBundle,
    section: ShardSection,
    certificates: dict[str, Certificate],
    lsp_key: PublicKey,
    tsa_keys: Mapping[str, PublicKey] | None,
    pinned_roots: Mapping[int, bytes] | None,
    problems: _Problems,
) -> tuple[bool, bool, bool | None, bytes | None]:
    tag = f"shard {section.shard_index}"
    what_ok = True
    who_ok = True
    when_ok: bool | None = None

    # --- decode the slice; journal bytes must hash to their retained digest
    journals: dict[int, Journal] = {}
    retained: dict[int, bytes] = {}
    contiguous = True
    expected = section.genesis_start
    for entry in section.entries:
        if entry.jsn != expected:
            contiguous = False
        expected = entry.jsn + 1
        retained[entry.jsn] = entry.retained_hash
        if entry.data is None:
            continue
        journal = Journal.from_bytes(entry.data)
        if journal.jsn != entry.jsn:
            what_ok = False
            problems.add("slice", f"{tag}: slot {entry.jsn} holds jsn {journal.jsn}")
            continue
        if journal.tx_hash() != entry.retained_hash:
            what_ok = False
            problems.add(
                "slice", f"{tag}: jsn {entry.jsn} bytes do not hash to retained digest"
            )
            continue
        journals[entry.jsn] = journal

    # --- trusted root: pinned, else the receipt's LSP-signed ledger_root
    receipt: Receipt | None = None
    if section.latest_receipt:
        receipt = Receipt.from_bytes(section.latest_receipt)
        if not receipt.verify(lsp_key):
            who_ok = False
            receipt = None
            problems.add("receipt", f"{tag}: latest receipt fails the LSP signature")
    trusted_root: bytes | None = None
    if pinned_roots is not None:
        trusted_root = pinned_roots.get(section.shard_index)
    if trusted_root is None and receipt is not None:
        trusted_root = receipt.ledger_root
    if trusted_root is None:
        what_ok = False
        problems.add("trust", f"{tag}: no trusted root (no pin, no valid receipt)")
        return what_ok, who_ok, when_ok, None

    # --- what: full replay (complete slices) + every bundled proof
    anchors = dict(section.anchors)
    if section.genesis_start == 0 and contiguous and section.entries:
        replayer = FamReplayer(bundle.fractal_height)
        for entry in section.entries:
            replayer.append(entry.retained_hash)
        if replayer.current_root() != trusted_root:
            what_ok = False
            problems.add(
                "replay", f"{tag}: replayed slice root diverges from trusted root"
            )
        for epoch, root in anchors.items():
            if epoch >= len(replayer.epoch_roots) or replayer.epoch_roots[epoch] != root:
                what_ok = False
                problems.add("anchor", f"{tag}: epoch {epoch} anchor diverges")
    elif anchors:
        problems.add(
            "anchor",
            f"{tag}: slice is partial; {len(anchors)} anchors taken on proof evidence only",
        )

    for jsn, blob in section.proofs:
        if jsn not in retained:
            what_ok = False
            problems.add("proof", f"{tag}: proof for jsn {jsn} outside the slice")
            continue
        proof = FamProof.from_bytes(blob)
        if not FamAccumulator.verify_full(retained[jsn], proof, trusted_root):
            what_ok = False
            problems.add("proof", f"{tag}: jsn {jsn} does not fold to trusted root")

    # --- blocks: chained, and pinned by the receipt
    blocks = [Block.from_bytes(blob) for blob in section.blocks]
    for height in range(1, len(blocks)):
        if blocks[height].previous_hash != blocks[height - 1].hash():
            what_ok = False
            problems.add("blocks", f"{tag}: chain breaks at height {height}")
    if receipt is not None and blocks and receipt.block_hash != EMPTY_DIGEST:
        # The receipt pins the latest block *as of its issue* (EMPTY_DIGEST
        # when none was sealed yet); blocks sealed after it (a trailing
        # partial commit) chain forward from that point.
        if receipt.block_hash not in {block.hash() for block in blocks}:
            what_ok = False
            problems.add("blocks", f"{tag}: receipt attests no block in the chain")

    # --- when: TSA-mode brackets reconstructed from the journals themselves
    if tsa_keys is not None:
        when_ok = _verify_when(tag, journals, retained, tsa_keys, problems)

    # --- who: every surviving journal's pi_c, plus the receipt's pi_s target
    for jsn in sorted(journals):
        journal = journals[jsn]
        cert = certificates.get(journal.client_id)
        if cert is None:
            who_ok = False
            problems.add("who", f"{tag}: jsn {jsn} has no certificate on file")
            continue
        if journal.client_signature is None or not cert.public_key.verify(
            journal.request_hash, journal.client_signature
        ):
            who_ok = False
            problems.add("who", f"{tag}: jsn {jsn} fails the client signature")
    if receipt is not None:
        target = journals.get(receipt.jsn)
        if target is None and receipt.jsn not in retained:
            who_ok = False
            problems.add("receipt", f"{tag}: receipt names jsn outside the slice")
        elif target is not None and receipt.tx_hash != target.tx_hash():
            who_ok = False
            problems.add("receipt", f"{tag}: receipt tx-hash mismatch")

    # --- the signed tree head chain + consistency assertions
    expected_shard = SOLO_SHARD if bundle.num_shards == 1 else section.shard_index
    heads = [SignedTreeHead.from_bytes(blob) for blob in section.sths]
    for position, head in enumerate(heads):
        if not head.verify(lsp_key):
            what_ok = False
            problems.add("sth", f"{tag}: head #{position} fails the LSP signature")
        if head.shard_index != expected_shard or head.ledger_uri != bundle.ledger_uri:
            what_ok = False
            problems.add("sth", f"{tag}: head #{position} belongs to another stream")
    if heads:
        newest = heads[-1]
        if pinned_roots is None and newest.root != trusted_root:
            what_ok = False
            problems.add(
                "sth", f"{tag}: freshest head contradicts the receipt's ledger root"
            )
    covered = set()
    for old_idx, new_idx, cb_blob, assertion_blob in section.consistency:
        if not (0 <= old_idx < new_idx < len(heads)):
            what_ok = False
            problems.add("consistency", f"{tag}: pair ({old_idx},{new_idx}) out of range")
            continue
        old, new = heads[old_idx], heads[new_idx]
        cbundle = ConsistencyBundle.from_bytes(cb_blob)
        assertion = ConsistencyAssertion.from_bytes(assertion_blob)
        if not cbundle.verify(old, new):
            what_ok = False
            problems.add(
                "consistency", f"{tag}: heads #{old_idx}->#{new_idx} not append-only"
            )
        if not (
            assertion.verify(lsp_key)
            and assertion.matches_old(old)
            and assertion.matches_new(new)
        ):
            what_ok = False
            problems.add(
                "consistency", f"{tag}: assertion #{old_idx}->#{new_idx} invalid"
            )
        covered.add((old_idx, new_idx))
    missing = [
        (i, i + 1) for i in range(len(heads) - 1) if (i, i + 1) not in covered
    ]
    if missing:
        what_ok = False
        problems.add(
            "consistency", f"{tag}: {len(missing)} adjacent head pair(s) unlinked"
        )

    # --- clue lineages, bound to the block-attested state root
    attested_state = blocks[-1].state_root if blocks else None
    for clue_section in section.clue_proofs:
        proof = ClueProof.from_bytes(clue_section.proof)
        digests = {
            version: retained[jsn]
            for version, jsn in enumerate(clue_section.jsns)
            if jsn in retained
        }
        if len(digests) != len(clue_section.jsns):
            what_ok = False
            problems.add(
                "clue", f"{tag}: {clue_section.clue!r} references jsns outside the slice"
            )
            continue
        if not proof.verify(digests, clue_section.state_root):
            what_ok = False
            problems.add("clue", f"{tag}: {clue_section.clue!r} lineage fails")
        if attested_state is None or clue_section.state_root != attested_state:
            what_ok = False
            problems.add(
                "clue",
                f"{tag}: {clue_section.clue!r} state root is not block-attested",
            )

    return what_ok, who_ok, when_ok, trusted_root


def _verify_when(
    tag: str,
    journals: dict[int, Journal],
    retained: dict[int, bytes],
    tsa_keys: Mapping[str, PublicKey],
    problems: _Problems,
) -> bool:
    """Bracket every non-time journal between verified TSA time anchors."""
    marks: list[tuple[int, float, bool]] = []
    for jsn in sorted(journals):
        journal = journals[jsn]
        if journal.journal_type is not JournalType.TIME:
            continue
        info = decode(journal.payload)
        if info.get("mode") != "tsa":
            # T-Ledger evidence lives outside the journal payload and is not
            # bundle-serializable; its anchors bound nothing here.
            marks.append((jsn, 0.0, False))
            continue
        token = TimeStampToken(
            digest=bytes(info["anchored_root"]),
            timestamp=info["timestamp"],
            tsa_id=info["tsa_id"],
            signature=Signature.from_bytes(bytes(info["signature"])),
        )
        key = tsa_keys.get(token.tsa_id)
        marks.append((jsn, token.timestamp, key is not None and token.verify(key)))

    ok = True
    unbounded = 0
    for jsn in sorted(retained):
        journal = journals.get(jsn)
        if journal is not None and journal.journal_type is JournalType.TIME:
            continue
        bounded = False
        for time_jsn, _timestamp, valid in marks:
            if time_jsn > jsn:
                if not valid:
                    ok = False
                    problems.add(
                        "when", f"{tag}: jsn {jsn} ceiling anchor fails verification"
                    )
                bounded = True
                break
        if not bounded:
            unbounded += 1
    if unbounded:
        ok = False
        problems.add(
            "when", f"{tag}: {unbounded} journal(s) have no verified time ceiling"
        )
    return ok


def _verify_composite(
    bundle: ExportBundle,
    lsp_key: PublicKey,
    shard_roots: dict[int, bytes | None],
    problems: _Problems,
) -> bool:
    if bundle.num_shards == 1:
        if bundle.composite_sth:
            problems.add("composite", "solo bundle carries a composite head")
            return False
        return True
    if not bundle.composite_sth:
        problems.add("composite", "sharded bundle is missing its composite head")
        return False
    head = SignedTreeHead.from_bytes(bundle.composite_sth)
    ok = True
    if not head.verify(lsp_key):
        ok = False
        problems.add("composite", "composite head fails the LSP signature")
    if not head.is_composite or head.ledger_uri != bundle.ledger_uri:
        ok = False
        problems.add("composite", "composite head misdescribes the deployment")
    if not head.composite_consistent():
        ok = False
        problems.add("composite", "composite root does not refold from shard heads")
    seen = set()
    for shard_index, _epoch, _tree, _live, root in head.shard_heads:
        seen.add(shard_index)
        expected = shard_roots.get(shard_index)
        if expected is None or bytes(root) != expected:
            ok = False
            problems.add(
                "composite", f"shard {shard_index} head contradicts its trusted root"
            )
    if seen != set(range(bundle.num_shards)):
        ok = False
        problems.add("composite", "composite head does not cover every shard")
    return ok
