"""Offline export bundles: carry a verifiable ledger away in one file.

An :class:`ExportBundle` is a self-contained, checksummed snapshot of
everything a distrusting auditor needs to re-run what/when/who and STH
consistency with **no ledger, no service, no network**:

* the journal stream slice (verbatim journal bytes, or retained digests for
  mutated slots) per shard;
* full-chain fam existence proofs, epoch anchors, and the block chain;
* the signed tree head chain with consistency bundles + assertions;
* requested clue-lineage proofs bound to the block-attested state root;
* the trusted LSP/CA roots and the member certificates.

Container format (DESIGN.md §17): ``LDBBNDL1`` magic, a big-endian u32
crc32c of the payload, then one canonically-encoded TLV payload over
:mod:`repro.encoding` — the same torn-tail conventions as §9: the file is
written via tmp → flush → fsync → rename, and *any* flipped bit fails the
checksum as a typed :class:`BundleCorruptionError`, never a false PASS.

This module is **kernel-free**: it imports no ``repro.core.ledger``, no
service, no network.  The writer (:func:`export_bundle`) takes a live
ledger *object* duck-typed over the solo/sharded export surface, so only
the process that already holds a ledger pays those imports — a standalone
verifier process loads this module without them.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.errors import LedgerError, UsageError
from ..core.snapshot import _commit_file
from ..storage.checksum import crc32c

__all__ = [
    "BUNDLE_MAGIC",
    "BundleCertificate",
    "BundleCorruptionError",
    "BundleEntry",
    "BundleError",
    "ClueSection",
    "ExportBundle",
    "ShardSection",
    "export_bundle",
]

BUNDLE_MAGIC = b"LDBBNDL1"
BUNDLE_SCHEME = "repro.bundle.v1"
_CRC = struct.Struct(">I")


class BundleError(LedgerError):
    """A bundle could not be built or interpreted."""


class BundleCorruptionError(BundleError):
    """The bundle's bytes fail integrity checks (checksum, framing, TLV)."""


@dataclass(frozen=True)
class BundleEntry:
    """One journal slot: verbatim bytes, or the retained digest if mutated."""

    jsn: int
    data: bytes | None  # None when the payload was purged/occulted away
    retained_hash: bytes
    occulted: bool = False
    purged: bool = False


@dataclass(frozen=True)
class ClueSection:
    """A clue lineage proof bound to the state root it folds against."""

    clue: str
    proof: bytes  # ClueProof bytes
    state_root: bytes  # CM-Tree1 root the proof folds to
    jsns: tuple[int, ...]  # shard-local jsns, in version order


@dataclass(frozen=True)
class ShardSection:
    """Everything exported from one shard (the whole ledger when solo)."""

    shard_index: int  # 0-based position; the STH stamp is SOLO_SHARD when solo
    genesis_start: int
    entries: tuple[BundleEntry, ...]
    latest_receipt: bytes  # Receipt bytes (b"" when the ledger has none)
    proofs: tuple[tuple[int, bytes], ...]  # (jsn, full-chain FamProof bytes)
    anchors: tuple[tuple[int, bytes], ...]  # (epoch, completed-epoch root)
    blocks: tuple[bytes, ...]  # Block header bytes, chain order
    sths: tuple[bytes, ...]  # SignedTreeHead bytes, oldest..freshest
    consistency: tuple[tuple[int, int, bytes, bytes], ...]
    # (old sth idx, new sth idx, ConsistencyBundle bytes, assertion bytes)
    clue_proofs: tuple[ClueSection, ...] = ()


@dataclass(frozen=True)
class BundleCertificate:
    """A member certificate, flattened to primitives for the container."""

    member_id: str
    role: str
    public_key: bytes
    issuer: str
    signature: bytes


@dataclass(frozen=True)
class ExportBundle:
    """The offline artifact: one deployment, one file, zero dependencies.

    An :class:`~repro.artifacts.Artifact`: ``to_bytes``/``from_bytes`` are
    the checksummed container round-trip, and ``verify()`` runs the
    standalone verifier (``repro.export.verifier``) over the bundle.
    """

    ledger_uri: str
    fractal_height: int
    block_size: int
    num_shards: int
    created_at: float
    ca_public_key: bytes
    lsp_public_key: bytes
    certificates: tuple[BundleCertificate, ...]
    shards: tuple[ShardSection, ...]
    composite_sth: bytes = b""  # composite SignedTreeHead bytes (sharded only)
    source_path: Path | None = field(default=None, compare=False)

    # ------------------------------------------------------------- queries

    @property
    def journal_count(self) -> int:
        return sum(len(section.entries) for section in self.shards)

    # ---------------------------------------------------------- byte forms

    def _payload(self) -> dict[str, Any]:
        return {
            "scheme": BUNDLE_SCHEME,
            "ledger_uri": self.ledger_uri,
            "fractal_height": self.fractal_height,
            "block_size": self.block_size,
            "num_shards": self.num_shards,
            "created_at": self.created_at,
            "ca_public_key": self.ca_public_key,
            "lsp_public_key": self.lsp_public_key,
            "certificates": [
                {
                    "member_id": c.member_id,
                    "role": c.role,
                    "public_key": c.public_key,
                    "issuer": c.issuer,
                    "signature": c.signature,
                }
                for c in self.certificates
            ],
            "shards": [
                {
                    "shard_index": s.shard_index,
                    "genesis_start": s.genesis_start,
                    "entries": [
                        [e.jsn, e.data, e.retained_hash, e.occulted, e.purged]
                        for e in s.entries
                    ],
                    "latest_receipt": s.latest_receipt,
                    "proofs": [[jsn, blob] for jsn, blob in s.proofs],
                    "anchors": [[epoch, root] for epoch, root in s.anchors],
                    "blocks": list(s.blocks),
                    "sths": list(s.sths),
                    "consistency": [
                        [old, new, cb, assertion]
                        for old, new, cb, assertion in s.consistency
                    ],
                    "clue_proofs": [
                        {
                            "clue": cp.clue,
                            "proof": cp.proof,
                            "state_root": cp.state_root,
                            "jsns": list(cp.jsns),
                        }
                        for cp in s.clue_proofs
                    ],
                }
                for s in self.shards
            ],
            "composite_sth": self.composite_sth,
        }

    def to_bytes(self) -> bytes:
        from ..encoding import encode

        payload = encode(self._payload())
        return BUNDLE_MAGIC + _CRC.pack(crc32c(payload)) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExportBundle":
        from ..encoding import EncodingError, decode

        header = len(BUNDLE_MAGIC) + _CRC.size
        if len(data) < header or data[: len(BUNDLE_MAGIC)] != BUNDLE_MAGIC:
            raise BundleCorruptionError("not an LDBBNDL1 bundle")
        (expected,) = _CRC.unpack_from(data, len(BUNDLE_MAGIC))
        payload = data[header:]
        if crc32c(payload) != expected:
            raise BundleCorruptionError("bundle payload fails its checksum")
        try:
            obj = decode(payload)
        except EncodingError as exc:  # checksum collision territory, still typed
            raise BundleCorruptionError(f"bundle payload undecodable: {exc}") from exc
        try:
            return cls._from_payload(obj)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise BundleCorruptionError(f"bundle payload malformed: {exc}") from exc

    @classmethod
    def _from_payload(cls, obj: dict[str, Any]) -> "ExportBundle":
        if obj.get("scheme") != BUNDLE_SCHEME:
            raise ValueError(f"unsupported bundle scheme: {obj.get('scheme')!r}")
        return cls(
            ledger_uri=obj["ledger_uri"],
            fractal_height=obj["fractal_height"],
            block_size=obj["block_size"],
            num_shards=obj["num_shards"],
            created_at=obj["created_at"],
            ca_public_key=bytes(obj["ca_public_key"]),
            lsp_public_key=bytes(obj["lsp_public_key"]),
            certificates=tuple(
                BundleCertificate(
                    member_id=c["member_id"],
                    role=c["role"],
                    public_key=bytes(c["public_key"]),
                    issuer=c["issuer"],
                    signature=bytes(c["signature"]),
                )
                for c in obj["certificates"]
            ),
            shards=tuple(
                ShardSection(
                    shard_index=s["shard_index"],
                    genesis_start=s["genesis_start"],
                    entries=tuple(
                        BundleEntry(
                            jsn=e[0],
                            data=None if e[1] is None else bytes(e[1]),
                            retained_hash=bytes(e[2]),
                            occulted=bool(e[3]),
                            purged=bool(e[4]),
                        )
                        for e in s["entries"]
                    ),
                    latest_receipt=bytes(s["latest_receipt"]),
                    proofs=tuple((p[0], bytes(p[1])) for p in s["proofs"]),
                    anchors=tuple((a[0], bytes(a[1])) for a in s["anchors"]),
                    blocks=tuple(bytes(b) for b in s["blocks"]),
                    sths=tuple(bytes(h) for h in s["sths"]),
                    consistency=tuple(
                        (c[0], c[1], bytes(c[2]), bytes(c[3]))
                        for c in s["consistency"]
                    ),
                    clue_proofs=tuple(
                        ClueSection(
                            clue=cp["clue"],
                            proof=bytes(cp["proof"]),
                            state_root=bytes(cp["state_root"]),
                            jsns=tuple(cp["jsns"]),
                        )
                        for cp in s["clue_proofs"]
                    ),
                )
                for s in obj["shards"]
            ),
            composite_sth=bytes(obj["composite_sth"]),
        )

    # ----------------------------------------------------------------- I/O

    def write(self, path: str | os.PathLike[str]) -> Path:
        """Durably write the bundle (tmp → fsync → rename, §9 conventions)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        _commit_file(target, self.to_bytes())
        return target

    @classmethod
    def read(cls, path: str | os.PathLike[str]) -> "ExportBundle":
        """Load and integrity-check a bundle file.

        Raises :class:`BundleCorruptionError` on any framing or checksum
        failure — a truncated tail, a flipped bit, an alien file.
        """
        source = Path(path)
        try:
            data = source.read_bytes()
        except OSError as exc:
            raise BundleError(f"cannot read bundle {source}: {exc}") from exc
        bundle = cls.from_bytes(data)
        object.__setattr__(bundle, "source_path", source)
        return bundle

    # -------------------------------------------------------------- verify

    def verify(self, **anchors: Any):
        """Standalone offline verification; see :func:`repro.export.verifier.verify_bundle`.

        Returns the structured :class:`~repro.artifacts.VerifyResult`; never
        raises on bad evidence (corrupt *container* bytes already raised in
        :meth:`from_bytes`).
        """
        from .verifier import verify_bundle

        return verify_bundle(self, **anchors)


# --------------------------------------------------------------------- writer


def export_bundle(
    ledger: Any,
    *,
    clues: tuple[str, ...] = (),
    path: str | os.PathLike[str] | None = None,
) -> ExportBundle:
    """Export a live ledger (solo or sharded) into an :class:`ExportBundle`.

    ``ledger`` is duck-typed over the shared export surface —
    ``export_view``/``export_views``, ``get_proofs``, ``epoch_anchors``,
    ``get_sth``/``get_sth_range``/``get_consistency`` — so a
    :class:`repro.core.ledger.Ledger` and a
    :class:`repro.shard.ShardedLedger` export identically; a sharded
    deployment additionally pins its composite signed tree head.  ``clues``
    selects clue lineages to prove into the bundle.  When ``path`` is given
    the bundle is also durably written there.
    """
    if hasattr(ledger, "export_views"):
        views = ledger.export_views()
        shard_ledgers = list(ledger.shards)
    else:
        views = [ledger.export_view()]
        shard_ledgers = [ledger]
    num_shards = len(shard_ledgers)
    if not views:
        raise BundleError("nothing to export: deployment has no shards")

    base_view = views[0]
    certificates = tuple(
        BundleCertificate(
            member_id=cert.member_id,
            role=cert.role.value,
            public_key=cert.public_key.to_bytes(),
            issuer=cert.issuer,
            signature=cert.signature.to_bytes() if cert.signature else b"",
        )
        for _member, cert in sorted(base_view.certificates.items())
    )
    lsp_cert = base_view.certificates.get(base_view.lsp_member_id)
    if lsp_cert is None:
        raise BundleError("ledger view carries no LSP certificate")

    sections = []
    created_at = 0.0
    for index, (view, shard) in enumerate(zip(views, shard_ledgers)):
        jsns = [entry.jsn for entry in view.entries]
        proofs = shard.get_proofs(jsns, anchored=False)
        sths = [head.to_bytes() for head in shard.get_sth_range(0, 1 << 31)]
        fresh = shard.get_sth().to_bytes()
        if not sths or sths[-1] != fresh:
            sths.append(fresh)
        consistency = []
        decoded_heads = _decode_heads(sths)
        for old_idx in range(len(decoded_heads) - 1):
            old, new = decoded_heads[old_idx], decoded_heads[old_idx + 1]
            try:
                cbundle, assertion = shard.get_consistency(old, new)
            except (UsageError, ValueError):
                continue
            consistency.append(
                (old_idx, old_idx + 1, cbundle.to_bytes(), assertion.to_bytes())
            )
        clue_sections = []
        for clue in clues:
            if num_shards > 1 and ledger.shard_of_key(clue) != index:
                continue
            clue_jsns = shard.list_tx(clue)
            if not clue_jsns:
                continue
            clue_sections.append(
                ClueSection(
                    clue=clue,
                    proof=shard.prove_clue(clue).to_bytes(),
                    state_root=shard.state_root(),
                    jsns=tuple(clue_jsns),
                )
            )
        receipt = view.latest_receipt
        if receipt is not None:
            created_at = max(created_at, receipt.timestamp)
        sections.append(
            ShardSection(
                shard_index=index,
                genesis_start=view.genesis_start,
                entries=tuple(
                    BundleEntry(
                        jsn=entry.jsn,
                        data=entry.data,
                        retained_hash=entry.retained_hash,
                        occulted=entry.occulted,
                        purged=entry.purged,
                    )
                    for entry in view.entries
                ),
                latest_receipt=receipt.to_bytes() if receipt is not None else b"",
                proofs=tuple((jsn, proof.to_bytes()) for jsn, proof in zip(jsns, proofs)),
                anchors=tuple(shard.epoch_anchors().items()),
                blocks=tuple(block.header_bytes() for block in view.blocks),
                sths=tuple(sths),
                consistency=tuple(consistency),
                clue_proofs=tuple(clue_sections),
            )
        )

    composite_sth = b""
    if num_shards > 1:
        composite_sth = ledger.get_sth().to_bytes()

    bundle = ExportBundle(
        ledger_uri=base_view.uri,
        fractal_height=base_view.fractal_height,
        block_size=base_view.block_size,
        num_shards=num_shards,
        created_at=created_at,
        ca_public_key=base_view.ca_public_key.to_bytes(),
        lsp_public_key=lsp_cert.public_key.to_bytes(),
        certificates=certificates,
        shards=tuple(sections),
        composite_sth=composite_sth,
    )
    if path is not None:
        written = bundle.write(path)
        object.__setattr__(bundle, "source_path", written)
    return bundle


def _decode_heads(blobs: list[bytes]):
    from ..transparency.sth import SignedTreeHead

    return [SignedTreeHead.from_bytes(blob) for blob in blobs]
