#!/usr/bin/env python3
"""Copyright lineage and regulatory occult — the §IV artwork example.

An artwork is produced in 2005; royalties transfer in 2010 and 2015.  Clue
``DCI001`` tracks the artwork's whole lifecycle: lineage verification must
return *all three* records with their integrity — including the count — so a
hidden transfer is detectable.

Later, a record is found to leak unauthorized personal data, and the
regulator + DBA jointly **occult** it (§III-A3): the payload becomes
unretrievable, the retained hash keeps every proof chain intact, and the
full audit still passes (Protocol 2).

Run: python examples/copyright_notary.py
"""

from repro import (
    ClientRequest,
    DaseinVerifier,
    KeyPair,
    Ledger,
    LedgerConfig,
    MultiSignature,
    OccultMode,
    Role,
    SimClock,
    TimeLedger,
)
from repro.api import LedgerSession
from repro.core import JournalOccultedError
from repro.timeauth import TimeStampAuthority

URI = "ledger://copyright-notary"

# Simulated years on the ledger clock (seconds stand in for dates).
YEAR_2005, YEAR_2010, YEAR_2015 = 5.0, 10.0, 15.0


def main() -> None:
    clock = SimClock()
    tsa = TimeStampAuthority("ttas", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    ledger = Ledger(LedgerConfig(uri=URI, fractal_height=5, block_size=4), clock=clock)
    ledger.attach_time_ledger(tledger)

    artist = KeyPair.generate(seed="artist")
    gallery = KeyPair.generate(seed="gallery")
    collector = KeyPair.generate(seed="collector")
    dba = KeyPair.generate(seed="dba")
    regulator = KeyPair.generate(seed="ncac")  # the copyright administration
    ledger.registry.register("artist", Role.USER, artist.public)
    ledger.registry.register("gallery", Role.USER, gallery.public)
    ledger.registry.register("collector", Role.USER, collector.public)
    ledger.registry.register("dba", Role.DBA, dba.public)
    ledger.registry.register("ncac", Role.REGULATOR, regulator.public)
    keys = {"artist": artist, "gallery": gallery, "collector": collector}

    def record(who, payload, when):
        clock.advance_to(when)
        request = ClientRequest.build(
            URI, who, payload, clues=("DCI001",), nonce=payload[:4],
            client_timestamp=clock.now(),
        ).signed_by(keys[who])
        receipt = ledger.append(request)
        ledger.anchor_time()
        return receipt

    # --- The artwork's lifecycle -------------------------------------------
    r1 = record("artist", b"artwork 'Dasein' produced; registration DCI001", YEAR_2005)
    r2 = record("gallery", b"first royalty transfer: artist -> gallery, 12%", YEAR_2010)
    r3 = record("collector", b"royalty transfer: gallery -> collector, 8%; "
                             b"contact: alice@example.com +86-555-0100", YEAR_2015)
    clock.advance(2.0)
    ledger.collect_time_evidence()
    ledger.commit_block()

    # --- Lineage verification: all 3 records, in order, complete ----------
    jsns = ledger.list_tx("DCI001")
    journals = [ledger.get_journal(j) for j in jsns]
    assert len(journals) == 3
    proof = ledger.prove_clue("DCI001")
    digests = {i: j.tx_hash() for i, j in enumerate(journals)}
    assert proof.verify(digests, ledger.state_root())
    print(f"DCI001 lineage: {len(journals)} records verified "
          f"(production + {len(journals) - 1} royalty transfers)")

    # --- when: each record's credible time window --------------------------
    view = ledger.export_view()
    verifier = DaseinVerifier(view, tsa_keys={"ttas": tsa.public_key})
    for label, receipt in (("production", r1), ("royalty-1", r2), ("royalty-2", r3)):
        bound, valid = verifier.verify_when(receipt.jsn)
        print(f"  {label}: committed within ({bound.lower:.1f}, {bound.upper:.1f}) "
              f"[verified={valid}]")
        assert valid

    # --- Regulation: the 2015 record leaked personal data ------------------
    print("== regulator orders an occult of the leaking record ==")
    occult_record = ledger.prepare_occult(
        r3.jsn, OccultMode.SYNC, reason="unauthorized personal data (privacy law)"
    )
    approvals = MultiSignature(digest=occult_record.approval_digest())
    approvals.add("dba", dba.sign(occult_record.approval_digest()))
    approvals.add("ncac", regulator.sign(occult_record.approval_digest()))
    ledger.execute_occult(occult_record, approvals)

    try:
        ledger.get_journal(r3.jsn)
        raise SystemExit("occulted journal must not be retrievable")
    except JournalOccultedError:
        print(f"jsn {r3.jsn} payload is gone; retained hash "
              f"{ledger.retained_hash(r3.jsn).hex()[:12]}... remains on ledger")

    # Lineage count is intact — the transfer *happened*, its content is hidden.
    assert ledger.clue_entry_count("DCI001") == 3
    print("DCI001 lineage count still 3: the transfer's existence is provable, "
          "its content is not retrievable")

    # Existence (used-to-exist) verification via the retained hash.
    from repro.merkle.fam import FamAccumulator

    fam_proof = ledger.get_proof(r3.jsn, anchored=False)
    assert FamAccumulator.verify_full(
        ledger.retained_hash(r3.jsn), fam_proof, ledger.current_root()
    )
    print("used-to-exist verification via retained hash: OK")

    # --- The full audit still passes (Protocol 2) --------------------------
    report = LedgerSession(ledger).audit(tsa_keys={"ttas": tsa.public_key})
    print(f"Dasein-complete audit after occult: passed={report.passed}")
    assert report.passed


if __name__ == "__main__":
    main()
