#!/usr/bin/env python3
"""GCO supply chain: multi-party lineage, year-end purge, external audit.

The paper's motivating scenario (§I): a national Grain-Cotton-Oil supply
chain where banks, manufacturers, retailers, and warehouses append
manuscripts, invoices, and receipts to an auditable ledger.  This example
shows:

* per-shipment **clue lineage** — every record of a shipment retrieved and
  verified as a complete, ordered, untampered set (CM-Tree, §IV);
* a **year-end purge** of settled history behind a pseudo genesis, with a
  milestone record preserved in the survival stream (§III-A2);
* that the **Dasein-complete audit still passes** after the purge, replaying
  from the pseudo genesis (Protocol 1).

Run: python examples/supply_chain.py
"""

from repro import (
    ClientRequest,
    KeyPair,
    Ledger,
    LedgerConfig,
    MultiSignature,
    Role,
    SimClock,
    TimeLedger,
    TSAPool,
)
from repro.api import LedgerSession
from repro.timeauth import TimeStampAuthority

URI = "ledger://gco-supply-chain"
PARTIES = ("bank", "oil-manufacturer", "cotton-retailer", "grain-warehouse")


def build_world():
    clock = SimClock()
    pool = TSAPool([TimeStampAuthority(f"tsa-{i}", clock) for i in range(2)])
    tledger = TimeLedger(clock, pool, finalize_interval=1.0, admission_tolerance=2.0)
    ledger = Ledger(LedgerConfig(uri=URI, fractal_height=6, block_size=8), clock=clock)
    ledger.attach_time_ledger(tledger)
    keys = {}
    for name in PARTIES:
        keys[name] = KeyPair.generate(seed=f"gco:{name}")
        ledger.registry.register(name, Role.USER, keys[name].public)
    keys["dba"] = KeyPair.generate(seed="gco:dba")
    ledger.registry.register("dba", Role.DBA, keys["dba"].public)
    tsa_keys = {f"tsa-{i}": pool.public_key_of(f"tsa-{i}") for i in range(2)}
    return clock, ledger, keys, tsa_keys


def append(ledger, clock, keys, who, payload, clues=()):
    request = ClientRequest.build(
        URI, who, payload, clues=tuple(clues), nonce=payload[:6],
        client_timestamp=clock.now(),
    ).signed_by(keys[who])
    receipt = ledger.append(request)
    clock.advance(0.17)
    return receipt


def main() -> None:
    clock, ledger, keys, tsa_keys = build_world()

    # --- Season 1: two shipments move through the chain -------------------
    print("== season 1: appending shipment records ==")
    for shipment in ("SHIP-0001", "SHIP-0002"):
        tag = shipment.encode()
        append(ledger, clock, keys, "grain-warehouse", b"outbound manifest " + tag, (shipment,))
        append(ledger, clock, keys, "oil-manufacturer", b"processing record " + tag, (shipment,))
        append(ledger, clock, keys, "cotton-retailer", b"delivery receipt " + tag, (shipment,))
        append(ledger, clock, keys, "bank", b"settlement invoice " + tag, (shipment, "SETTLEMENTS"))
        ledger.anchor_time()
    clock.advance(2.0)
    ledger.collect_time_evidence()
    ledger.commit_block()

    # --- Lineage verification for a shipment ------------------------------
    shipment = "SHIP-0001"
    jsns = ledger.list_tx(shipment)
    journals = [ledger.get_journal(j) for j in jsns]
    print(f"{shipment}: {len(journals)} lineage records at jsns {jsns}")
    assert ledger.verify_clue(shipment, journals)
    proof = ledger.prove_clue(shipment)
    digests = {i: j.tx_hash() for i, j in enumerate(journals)}
    assert proof.verify(digests, ledger.state_root())
    print(f"{shipment}: client-side CM-Tree lineage verification OK "
          f"(count integrity: exactly {proof.entry_count} records)")

    # An auditor who is handed one record *fewer* must notice.
    incomplete = {i: j.tx_hash() for i, j in enumerate(journals[:-1])}
    assert not proof.verify(incomplete, ledger.state_root())
    print(f"{shipment}: omitting a record correctly fails verification")

    # --- Year-end purge of season 1 ---------------------------------------
    print("== year-end purge ==")
    boundary = ledger.blocks[0].end_jsn
    milestone = jsns[0]  # keep the first manifest as a business milestone
    survivors = (milestone,) if milestone < boundary else ()
    pseudo, record = ledger.prepare_purge(boundary, survivors=survivors, reason="season-1 settled")
    approvals = MultiSignature(digest=record.approval_digest())
    for member in ledger.purge_required_signers(boundary):
        keypair = keys.get(member) or ledger._lsp_keypair
        approvals.add(member, keypair.sign(record.approval_digest()))
    ledger.execute_purge(pseudo, record, approvals)
    print(f"purged jsns [0, {boundary}); pseudo genesis installed "
          f"(fam root {pseudo.fam_root.hex()[:12]}..., survivors={pseudo.survivor_jsns})")
    if survivors:
        kept = ledger.get_journal(milestone)
        print(f"milestone jsn {milestone} still retrievable from the survival "
              f"stream: {kept.payload.decode()!r}")

    # --- Season 2 continues on the purged ledger ---------------------------
    print("== season 2 ==")
    for shipment in ("SHIP-0003",):
        tag = shipment.encode()
        append(ledger, clock, keys, "grain-warehouse", b"outbound manifest " + tag, (shipment,))
        append(ledger, clock, keys, "bank", b"settlement invoice " + tag, (shipment, "SETTLEMENTS"))
        ledger.anchor_time()
    clock.advance(2.0)
    ledger.collect_time_evidence()

    # Settlements lineage spans the purge: counts include season-1 entries
    # (digests retained), payloads exist only for the surviving suffix.
    print(f"SETTLEMENTS lineage count across purge: {ledger.clue_entry_count('SETTLEMENTS')}")

    # --- External audit over the post-purge ledger (v2 session) ------------
    report = LedgerSession(ledger).audit(tsa_keys=tsa_keys)
    print(f"post-purge Dasein-complete audit: passed={report.passed} "
          f"({report.journals_replayed} journals from the pseudo genesis, "
          f"{report.blocks_verified} blocks)")
    assert report.passed

    stats = ledger.storage_stats()
    print(f"storage: {stats['journals']} journals total, "
          f"{stats['purged_prefix']} purged, {stats['fam_nodes']} fam nodes")


if __name__ == "__main__":
    main()
