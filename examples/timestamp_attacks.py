#!/usr/bin/env python3
"""Timestamp attacks (§III-B, Figure 5) demonstrated end-to-end.

Three scenes:

1. **Infinite time amplification** against one-way pegging (ProvenDB-style):
   the colluding LSP delays digest submission, so the window in which a
   journal can be tampered while keeping its eventual anchor grows without
   bound.

2. **Two-way pegging** (Protocol 3): however patient the adversary, the
   achievable malicious window is capped at ~2.Delta-tau.

3. **T-Ledger Protocol 4 in action**: a held-back submission is rejected by
   the freshness check (tau_t < tau_c + tau_Delta), and honest submissions
   get tight, offline-verifiable time windows at high throughput with only
   one TSA round per second.

Run: python examples/timestamp_attacks.py
"""

from repro.crypto.hashing import leaf_hash
from repro.timeauth import (
    SimClock,
    TimeLedger,
    TimeStampAuthority,
    run_one_way_amplification,
    run_tledger_stale_submission,
    run_two_way_window,
)


def scene_one_way() -> None:
    print("== scene 1: infinite time amplification (one-way pegging) ==")
    print(f"{'adversary delay (s)':>20} | {'malicious window (s)':>21}")
    for delay in (0.0, 600.0, 86_400.0, 604_800.0):  # up to a week
        result = run_one_way_amplification(delay)
        print(f"{delay:>20.0f} | {result.malicious_window:>21.1f}")
    print("-> the window tracks the adversary's patience: UNBOUNDED\n")


def scene_two_way() -> None:
    print("== scene 2: two-way pegging bounds the window (Protocol 3) ==")
    peg_interval = 1.0
    print(f"Delta-tau = {peg_interval}s, theoretical bound = {2 * peg_interval}s")
    print(f"{'adversary delay (s)':>20} | {'malicious window (s)':>21}")
    for delay in (0.0, 600.0, 86_400.0, 604_800.0):
        result = run_two_way_window(delay, peg_interval=peg_interval)
        assert result.bounded
        print(f"{delay:>20.0f} | {result.malicious_window:>21.3f}")
    print("-> no matter the patience, the window stays < 2.Delta-tau\n")


def scene_tledger() -> None:
    print("== scene 3: T-Ledger freshness check (Protocol 4) ==")
    for hold_back in (0.2, 0.8, 1.5, 30.0):
        accepted = run_tledger_stale_submission(hold_back, admission_tolerance=1.0)
        verdict = "accepted" if accepted else "REJECTED (stale: tau_t >= tau_c + tau_Delta)"
        print(f"  request held back {hold_back:>5.1f}s -> {verdict}")

    # Honest operation: many ledgers sharing one TSA finalization per second.
    print("\n  honest T-Ledger operation (10 ledger digests/second, one TSA round):")
    clock = SimClock()
    tsa = TimeStampAuthority("ntsc", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=1.0)
    clock.advance(1.0)
    tledger.tick()  # a baseline finalization so entries get a lower bound too
    receipts = []
    for i in range(10):
        clock.advance(0.1)
        receipts.append(
            tledger.submit(f"ledger-{i % 3}", leaf_hash(b"digest-%d" % i), clock.now())
        )
    clock.advance(1.0)
    tledger.tick()
    for receipt in receipts[:3]:
        evidence = tledger.get_evidence(receipt.seq)
        assert evidence.verify(tsa)
        bound = evidence.time_bound()
        print(f"    entry {receipt.seq}: window ({bound.lower:.1f}, {bound.upper:.1f}) "
              f"width<={bound.upper - max(bound.lower, 0):.1f}s, TSA signature OK")
    print(f"  TSA stamps issued for 10 entries: {tsa.stamps_issued} "
          f"(amortised by the T-Ledger)")


def main() -> None:
    scene_one_way()
    scene_two_way()
    scene_tledger()


if __name__ == "__main__":
    main()
