#!/usr/bin/env python3
"""Remote light client with trusted anchors — fam-aoa over a real socket.

The paper's "ubiquitous verification" client talks to an **untrusted**
centralized ledger over a network.  This demo runs a real TCP server
(:class:`repro.net.ServerThread`) and a :class:`repro.net.RemoteLedgerClient`
that never takes the server's word for anything:

1. the LSP public key is pinned at connect time (out-of-band trust root);
   every receipt's signature and request-hash echo is checked locally;
2. epoch 0 is fully verified once (the bootstrap); every sealed epoch after
   that is anchored via a single merged-leaf link proof (Rule 1: the old
   epoch's root is leaf 0 of the new epoch);
3. the live epoch is tracked via consistency proofs, so a server that
   rewrites *any* committed journal is caught on the next sync;
4. with anchors in hand, every existence verification is a short in-epoch
   path — never the full-chain walk.

Run: python examples/light_client.py
"""

from repro import KeyPair, Ledger, LedgerConfig, Role
from repro.core.errors import VerificationFailure
from repro.core.ledger import LSP_MEMBER_ID
from repro.net import RemoteLedgerClient, ServerThread

URI = "ledger://light-client-demo"


def main() -> None:
    ledger = Ledger(LedgerConfig(uri=URI, fractal_height=3, block_size=4))
    alice = KeyPair.generate(seed="alice")
    ledger.registry.register("alice", Role.USER, alice.public)

    # The pinned trust root: in a deployment this arrives out of band
    # (config file, registration response) — never from the server itself.
    lsp_key = ledger.registry.public_key(LSP_MEMBER_ID)

    with ServerThread(ledger) as served:
        host, port = served.address
        print(f"ledger served on {host}:{port}; client pins the LSP key\n")
        client = RemoteLedgerClient(
            host, port, member_id="alice", keypair=alice, expected_lsp_key=lsp_key
        )
        with client:
            # --- Grow the ledger across several fam epochs, syncing as we go
            receipts = []
            for batch in range(5):
                for i in range(8):
                    receipts.append(client.append(f"batch{batch}-item{i}".encode()))
                new_anchors = client.sync_anchors()
                print(
                    f"after batch {batch}: ledger size {ledger.size}, "
                    f"+{new_anchors} epoch anchor(s), "
                    f"{client.state.anchored_epochs} anchored epochs"
                )

            # --- O(delta) verification against the client's own anchors ----
            checked = 0
            for receipt in receipts:
                journal = client.get_journal(receipt.jsn)
                assert client.verify_journal(journal), receipt.jsn
                proof = client.get_proof(receipt.jsn, anchored=True)
                assert proof.anchored_cost <= ledger.config.fractal_height
                checked += 1
            print(
                f"verified {checked} journals over the wire, every path <= "
                f"delta = {ledger.config.fractal_height} nodes (no full-chain walks)"
            )

            # --- The anchor storage is tiny --------------------------------
            anchors = client.state.anchored_epochs
            print(
                f"client-side anchor storage: {anchors} epoch roots = "
                f"{anchors * 32} bytes (vs a bim light client's O(n) headers)"
            )

            # --- A rewriting server is caught by the consistency check -----
            print("\nsimulating a malicious server rewriting a live-epoch journal...")
            from repro.crypto.hashing import leaf_hash
            from repro.merkle.shrubs import ShrubsAccumulator

            fam = ledger._fam
            live = fam._epochs[-1]
            forged = ShrubsAccumulator()
            leaves = list(live._levels[0])
            if len(leaves) < 2:  # make sure there's a journal to rewrite
                client.append(b"bait")
                client.sync_anchors()
                live = fam._epochs[-1]
                leaves = list(live._levels[0])
            leaves[-1] = leaf_hash(b"REWRITTEN JOURNAL")
            for leaf in leaves:
                forged.append_leaf(leaf)
            fam._epochs[-1] = forged

            client.append(b"post-rewrite append")  # server keeps operating
            try:
                client.sync_anchors()
                raise SystemExit("the rewrite should have been detected!")
            except VerificationFailure as exc:
                print(f"caught: {exc}")


if __name__ == "__main__":
    main()
