#!/usr/bin/env python3
"""Light client with trusted anchors — fam-aoa in practice (§III-A1).

A :class:`LedgerClient` tracks a growing ledger with O(delta) work per epoch:

1. it fully verifies epoch 0 once (the bootstrap);
2. every sealed epoch after that is anchored via a single merged-leaf link
   proof (Rule 1: the old epoch's root is leaf 0 of the new epoch);
3. the live epoch is tracked via consistency proofs, so a server that
   rewrites *any* committed journal — even in the not-yet-sealed epoch —
   is caught on the next sync;
4. with anchors in hand, every existence verification is a short in-epoch
   path — never the full-chain walk.

Run: python examples/light_client.py
"""

from repro import KeyPair, Ledger, LedgerConfig, Role, SimClock, TimeLedger
from repro.core import LedgerClient
from repro.core.errors import VerificationFailure
from repro.timeauth import TimeStampAuthority

URI = "ledger://light-client-demo"


def main() -> None:
    clock = SimClock()
    tsa = TimeStampAuthority("tsa", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    ledger = Ledger(LedgerConfig(uri=URI, fractal_height=3, block_size=4), clock=clock)
    ledger.attach_time_ledger(tledger)

    alice = KeyPair.generate(seed="alice")
    ledger.registry.register("alice", Role.USER, alice.public)
    client = LedgerClient("alice", alice, ledger, tsa_keys={"tsa": tsa.public_key})

    # --- Grow the ledger across several fam epochs, syncing as we go -------
    receipts = []
    for batch in range(5):
        for i in range(8):
            receipts.append(client.append(f"batch{batch}-item{i}".encode()))
            clock.advance(0.1)
        new_anchors = client.sync_anchors()
        print(
            f"after batch {batch}: ledger size {ledger.size}, "
            f"+{new_anchors} epoch anchor(s), "
            f"{client.state.anchored_epochs} anchored / "
            f"{ledger._fam.num_epochs - 1} sealed epochs"
        )

    # --- O(delta) verification against the client's own anchors ------------
    checked = 0
    for receipt in receipts:
        journal = ledger.get_journal(receipt.jsn)
        assert client.verify_journal(journal), receipt.jsn
        proof = ledger.get_proof(receipt.jsn, anchored=True)
        assert proof.anchored_cost <= ledger.config.fractal_height
        checked += 1
    print(f"verified {checked} journals, every path <= delta = "
          f"{ledger.config.fractal_height} nodes (no full-chain walks)")

    # --- The anchor storage is tiny ----------------------------------------
    anchors = client.state.anchored_epochs
    print(f"client-side anchor storage: {anchors} epoch roots = {anchors * 32} bytes "
          f"(vs a bim light client's header-per-block O(n))")

    # --- A rewriting server is caught by the consistency check -------------
    print("\nsimulating a malicious server rewriting a live-epoch journal...")
    from repro.crypto.hashing import leaf_hash
    from repro.merkle.shrubs import ShrubsAccumulator

    fam = ledger._fam
    live = fam._epochs[-1]
    forged = ShrubsAccumulator()
    leaves = list(live._levels[0])
    if len(leaves) < 2:  # make sure there's a journal to rewrite
        client.append(b"bait")
        client.sync_anchors()
        live = fam._epochs[-1]
        leaves = list(live._levels[0])
    leaves[-1] = leaf_hash(b"REWRITTEN JOURNAL")
    for leaf in leaves:
        forged.append_leaf(leaf)
    fam._epochs[-1] = forged

    client.append(b"post-rewrite append")  # server keeps operating
    try:
        client.sync_anchors()
        raise SystemExit("the rewrite should have been detected!")
    except VerificationFailure as exc:
        print(f"caught: {exc}")


if __name__ == "__main__":
    main()
