#!/usr/bin/env python3
"""Quickstart: create a ledger, append, and verify what-when-who.

Walks the core LedgerDB loop of Figure 1:

1. create a ledger and register members with CA-certified keys;
2. append client-signed journals (pi_c) and receive LSP-signed receipts (pi_s);
3. anchor time to a T-Ledger backed by a TSA (pi_t);
4. verify existence (*what*), time window (*when*), and issuer (*who*)
   entirely client-side from an exported view;
5. run the full Dasein-complete audit.

Run: python examples/quickstart.py
"""

from repro import (
    DaseinVerifier,
    KeyPair,
    Ledger,
    LedgerConfig,
    Role,
    SimClock,
    TimeLedger,
    TimeStampAuthority,
)
from repro.api import LedgerSession

URI = "ledger://quickstart"


def main() -> None:
    # --- 1. Deployment: ledger + TSA + T-Ledger on a shared sim clock -----
    clock = SimClock()
    tsa = TimeStampAuthority("national-time-service", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=1.0)
    ledger = Ledger(LedgerConfig(uri=URI, fractal_height=8, block_size=4), clock=clock)
    ledger.attach_time_ledger(tledger)

    alice = KeyPair.generate(seed="alice")
    ledger.registry.register("alice", Role.USER, alice.public)
    print(f"created {ledger!r}")

    # --- 2. Append signed journals through a v2 session --------------------
    # The session binds alice's identity once; each append() builds and signs
    # the request (pi_c) and returns the LSP's receipt (pi_s).
    session = LedgerSession(ledger, client_id="alice", keypair=alice)
    receipts = []
    for i in range(10):
        receipt = session.append(
            f"notarized document #{i}".encode(), clue="DOCS"
        )
        receipts.append(receipt)
        clock.advance(0.3)
        if i % 3 == 2:
            ledger.anchor_time()  # pi_t: periodic T-Ledger anchoring

    clock.advance(2.0)  # let the T-Ledger finalize with the TSA
    ledger.collect_time_evidence()
    ledger.commit_block()
    print(f"appended {len(receipts)} journals, {len(ledger.blocks)} blocks, "
          f"{len(ledger.time_journals)} time anchors")

    # --- 3. Server-side verification (trusting the LSP) -------------------
    journal = ledger.get_journal(receipts[4].jsn)
    assert ledger.verify_journal(journal)
    print(f"server-side what-verification of jsn {journal.jsn}: OK")

    # --- 4. Client-side Dasein verification (distrusting the LSP) ---------
    view = ledger.export_view()
    verifier = DaseinVerifier(view, tsa_keys={tsa.tsa_id: tsa.public_key})
    proof = ledger.get_proof(receipts[4].jsn, anchored=False)
    report = verifier.verify_dasein(receipts[4].jsn, proof, receipts[4])
    print(
        f"client-side Dasein of jsn {report.jsn}: what={report.what} "
        f"when={report.when_valid} (window {report.when_bound.lower:.2f}s.."
        f"{report.when_bound.upper:.2f}s) who={report.who}"
    )
    assert report.dasein_complete

    # Tamper check: a forged payload must fail ('foobar' vs 'foopar', §III-A).
    import dataclasses

    forged = dataclasses.replace(journal, payload=b"notarized document #4!")
    assert not verifier.verify_what(forged, ledger.get_proof(journal.jsn, anchored=False))
    print("forged payload correctly rejected")

    # --- 5. Full Dasein-complete audit (§V) --------------------------------
    # session.audit() exports a fresh view and replays everything; workers=2
    # runs the signature checks on the parallel engine (same report).
    audit = session.audit(tsa_keys={tsa.tsa_id: tsa.public_key}, workers=2)
    print(f"audit passed={audit.passed}: "
          f"{audit.journals_replayed} journals replayed, "
          f"{audit.blocks_verified} blocks, "
          f"{audit.time_journals_verified} time anchors verified")
    assert audit.passed


if __name__ == "__main__":
    main()
