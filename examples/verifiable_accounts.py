#!/usr/bin/env python3
"""Verifiable account balances: journals + world-state + shared storage.

Combines three Figure-1/Figure-2 components beyond the basic append loop:

* transfers are journals appended through the **ledger proxy** — bulky
  attachments (e.g. contract PDFs) ride the payload path into shared
  storage while the ledger commits fixed-size references;
* the **world-state** (single-layer state accumulator) tracks each
  account's current balance, with a 32-byte root per transfer that is
  embedded into the next journal — so balances are provable against the
  ledger itself;
* a client verifies "my balance is X, as of journal J" with one state
  proof plus one existence proof — no statement replay (the §III-A2
  motivation: current state provable without historical content).

Run: python examples/verifiable_accounts.py
"""

from repro import KeyPair, Ledger, LedgerConfig, Role, SimClock
from repro.core.proxy import LedgerProxy
from repro.core.worldstate import WorldState
from repro.encoding import decode, encode

URI = "ledger://verifiable-accounts"


def main() -> None:
    clock = SimClock()
    ledger = Ledger(LedgerConfig(uri=URI, fractal_height=6, block_size=4), clock=clock)
    proxy = LedgerProxy(ledger, inline_threshold=128)
    state = WorldState()

    bank = KeyPair.generate(seed="bank")
    ledger.registry.register("bank", Role.USER, bank.public)

    balances = {"alice": 1000, "bob": 500, "carol": 0}
    for account, amount in balances.items():
        state.put(account.encode(), str(amount).encode(), jsn=0)

    def transfer(sender: str, recipient: str, amount: int, attachment: bytes = b"") -> int:
        balances[sender] -= amount
        balances[recipient] += amount
        state_jsn = ledger.size  # the journal about to be committed
        for account in (sender, recipient):
            state.put(account.encode(), str(balances[account]).encode(), jsn=state_jsn)
        payload = encode(
            {
                "op": "transfer",
                "from": sender,
                "to": recipient,
                "amount": amount,
                "state_root": state.root,  # entangles the post-state
                "attachment": attachment,
            }
        )
        receipt = proxy.append("bank", bank, payload, clues=(f"ACCT:{sender}", f"ACCT:{recipient}"))
        clock.advance(0.1)
        return receipt.jsn

    # --- A day of transfers -------------------------------------------------
    print("processing transfers...")
    transfer("alice", "bob", 200)
    transfer("bob", "carol", 150)
    jsn_big = transfer(
        "alice", "carol", 300,
        attachment=b"%PDF- signed credit agreement " + b"\x00" * 4000,  # bulky
    )
    last_jsn = transfer("carol", "alice", 50)
    ledger.commit_block()
    print(f"{ledger.size - 1} transfers committed; "
          f"shared storage holds {len(proxy.storage)} blob(s), "
          f"{proxy.storage.total_bytes():,} bytes off-ledger")

    # --- Balance verification: state proof + journal entanglement ----------
    print("\nverifying carol's balance against the ledger...")
    proof = state.prove(b"carol")
    expected = str(balances["carol"]).encode()
    assert proof.verify(state.root, value=expected)
    print(f"  state proof: carol = {expected.decode()} "
          f"(version {proof.entry.version}, last written by jsn {proof.entry.jsn})")

    # The state root is committed inside the last transfer journal, whose
    # existence the fam accumulator proves:
    journal = proxy.get_journal(last_jsn).journal
    committed_root = bytes(decode(journal.payload)["state_root"])
    assert committed_root == state.root
    assert ledger.verify_journal(journal)
    print(f"  state root {state.root.hex()[:12]}… is committed by journal "
          f"{last_jsn}, whose existence verifies against the ledger")

    # A forged balance cannot verify:
    assert not proof.verify(state.root, value=b"1000000")
    print("  forged balance correctly rejected")

    # --- The bulky attachment round-trips through shared storage -----------
    resolved = proxy.get_journal(jsn_big)
    attachment = bytes(decode(resolved.payload)["attachment"])
    assert attachment.startswith(b"%PDF-")
    print(f"\nattachment for jsn {jsn_big}: {len(attachment):,} bytes, "
          f"resolved via reference {resolved.ref.digest.hex()[:12]}… "
          "(integrity-checked read)")

    # --- Account lineage via clues ------------------------------------------
    jsns = ledger.list_tx("ACCT:alice")
    proof = ledger.prove_clue("ACCT:alice")
    digests = {i: ledger.get_journal(j).tx_hash() for i, j in enumerate(jsns)}
    assert proof.verify(digests, ledger.state_root())
    print(f"\nalice's account lineage: {len(jsns)} transfers, "
          "complete and untampered (CM-Tree verification)")


if __name__ == "__main__":
    main()
