"""The bench-regression gate itself is gated: green stays green, 3x fails.

This is the standing demonstration the CI acceptance asks for — instead of
committing an artificial slowdown and reverting it, the red path is pinned
here forever via the gate's ``--scale`` self-test hook.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench", Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _report(sign=350.0, verify=560.0, seq=2750.0, batch=1130.0) -> dict:
    return {
        "ecdsa": {"sign_fast_us": sign, "verify_fast_us": verify},
        "append": {"sequential_us_per_append": seq, "batch_us_per_append": batch},
    }


def _write(tmp_path: Path, name: str, payload: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestCompareFunction:
    def test_identical_reports_pass(self):
        _lines, warnings, failures = compare_bench.compare(_report(), _report())
        assert not warnings and not failures

    def test_speedup_never_gates(self):
        current = _report(sign=100.0, verify=100.0, seq=500.0, batch=200.0)
        _lines, warnings, failures = compare_bench.compare(current, _report())
        assert not warnings and not failures

    def test_between_warn_and_fail_warns_only(self):
        current = _report(sign=350.0 * 2.0)  # 2x: above 1.5x, below 3x
        _lines, warnings, failures = compare_bench.compare(current, _report())
        assert len(warnings) == 1 and "sign_fast_us" in warnings[0]
        assert not failures

    def test_over_3x_fails(self):
        current = _report(batch=1130.0 * 3.5)
        _lines, _warnings, failures = compare_bench.compare(current, _report())
        assert len(failures) == 1 and "batch_us_per_append" in failures[0]

    def test_missing_metric_fails_loudly(self):
        current = _report()
        del current["append"]["batch_us_per_append"]
        _lines, _warnings, failures = compare_bench.compare(current, _report())
        assert failures and "missing" in failures[0]

    def test_custom_thresholds(self):
        current = _report(sign=350.0 * 1.2)
        _lines, warnings, failures = compare_bench.compare(
            current, _report(), warn_ratio=1.1, fail_ratio=1.15
        )
        assert failures and not warnings


class TestGateCli:
    def test_exit_zero_on_healthy_run(self, tmp_path, capsys):
        current = _write(tmp_path, "current.json", _report())
        baseline = _write(tmp_path, "baseline.json", _report())
        code = compare_bench.main([str(current), "--baseline", str(baseline)])
        assert code == 0
        assert "bench gate: ok" in capsys.readouterr().out

    def test_artificial_3x_slowdown_turns_the_gate_red(self, tmp_path, capsys):
        """`--scale 3.5` is the committed proof the gate can fail."""
        current = _write(tmp_path, "current.json", _report())
        baseline = _write(tmp_path, "baseline.json", _report())
        code = compare_bench.main(
            [str(current), "--baseline", str(baseline), "--scale", "3.5"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "bench gate: FAILED" in out
        assert "::error::" in out

    def test_gate_against_committed_baseline_schema(self, tmp_path):
        """The real committed baseline carries every gated metric."""
        baseline_path = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
        baseline = json.loads(baseline_path.read_text())
        for section, metric in compare_bench.GATED_METRICS:
            assert metric in baseline[section], (section, metric)
            assert baseline[section][metric] > 0

    def test_scale_is_rejected_below_fail_threshold(self, tmp_path):
        current = _write(tmp_path, "current.json", _report())
        baseline = _write(tmp_path, "baseline.json", _report())
        code = compare_bench.main(
            [str(current), "--baseline", str(baseline), "--scale", "1.4"]
        )
        assert code == 0

    def test_missing_current_file_raises(self, tmp_path):
        baseline = _write(tmp_path, "baseline.json", _report())
        with pytest.raises(FileNotFoundError):
            compare_bench.main(
                [str(tmp_path / "nope.json"), "--baseline", str(baseline)]
            )


class TestMetricFlag:
    """--metric retargets the gate at any section.metric pair (bench_service)."""

    def test_compare_accepts_custom_metric_set(self):
        current = _report(sign=350.0 * 10)  # sign regressed 10x...
        _lines, warnings, failures = compare_bench.compare(
            current, _report(), metrics=(("append", "batch_us_per_append"),)
        )
        assert not warnings and not failures  # ...but only batch is gated

    def test_cli_metric_override(self, tmp_path):
        service = {"service": {"coalesced_us_per_append": 900.0}}
        current = _write(tmp_path, "current.json", service)
        baseline = _write(tmp_path, "baseline.json", service)
        code = compare_bench.main(
            [
                str(current),
                "--baseline",
                str(baseline),
                "--metric",
                "service.coalesced_us_per_append",
            ]
        )
        assert code == 0

    def test_cli_metric_override_red_path(self, tmp_path):
        service = {"service": {"coalesced_us_per_append": 900.0}}
        current = _write(tmp_path, "current.json", service)
        baseline = _write(tmp_path, "baseline.json", service)
        code = compare_bench.main(
            [
                str(current),
                "--baseline",
                str(baseline),
                "--metric",
                "service.coalesced_us_per_append",
                "--scale",
                "3.5",
            ]
        )
        assert code == 1

    def test_cli_rejects_malformed_metric(self, tmp_path):
        current = _write(tmp_path, "current.json", _report())
        baseline = _write(tmp_path, "baseline.json", _report())
        with pytest.raises(SystemExit):
            compare_bench.main(
                [str(current), "--baseline", str(baseline), "--metric", "nodot"]
            )

    def test_gate_against_committed_service_baseline(self):
        baseline_path = Path(__file__).resolve().parent.parent / "BENCH_service.json"
        baseline = json.loads(baseline_path.read_text())
        for metric in ("sequential_us_per_append", "coalesced_us_per_append"):
            assert baseline["service"][metric] > 0
        # The committed baseline itself proves the acceptance floor.
        assert baseline["service"]["coalesce_speedup"] >= 1.5
