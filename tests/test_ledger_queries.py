"""Operational query APIs: iterators, member/time filters, block lookup."""

from repro.core import JournalType, OccultMode


class TestIterJournals:
    def test_full_iteration(self, populated):
        deployment, _receipts = populated
        journals = list(deployment.ledger.iter_journals())
        assert len(journals) == deployment.ledger.size
        assert [j.jsn for j in journals] == list(range(deployment.ledger.size))

    def test_range_iteration(self, populated):
        deployment, _receipts = populated
        journals = list(deployment.ledger.iter_journals(3, 9))
        assert [j.jsn for j in journals] == [3, 4, 5, 6, 7, 8]

    def test_skips_occulted(self, populated):
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(5, OccultMode.SYNC, "q")
        approvals = deployment.sign_approval(["dba", "regulator"], record.approval_digest())
        deployment.ledger.execute_occult(record, approvals)
        jsns = [j.jsn for j in deployment.ledger.iter_journals()]
        assert 5 not in jsns

    def test_starts_at_pseudo_genesis_after_purge(self, populated):
        deployment, _receipts = populated
        pseudo, record = deployment.ledger.prepare_purge(8)
        signers = list(deployment.ledger.purge_required_signers(8))
        approvals = deployment.sign_approval(signers, record.approval_digest())
        deployment.ledger.execute_purge(pseudo, record, approvals)
        journals = list(deployment.ledger.iter_journals())
        assert journals[0].jsn == 8


class TestFilters:
    def test_journals_by_member(self, populated):
        deployment, _receipts = populated
        alice_jsns = deployment.ledger.journals_by_member("alice")
        assert alice_jsns
        for jsn in alice_jsns:
            assert deployment.ledger.get_journal(jsn).client_id == "alice"
        lsp_jsns = deployment.ledger.journals_by_member("__lsp__")
        types = {deployment.ledger.get_journal(j).journal_type for j in lsp_jsns}
        assert JournalType.GENESIS in types

    def test_journals_in_time_range(self, populated):
        deployment, _receipts = populated
        inside = deployment.ledger.journals_in_time_range(1.0, 2.0)
        assert inside
        for jsn in inside:
            assert 1.0 <= deployment.ledger.get_journal(jsn).timestamp < 2.0
        assert deployment.ledger.journals_in_time_range(1e9, 2e9) == []

    def test_clues_in_range(self, deployment):
        for i, clue in enumerate(("apple", "banana", "cherry")):
            deployment.append("alice", b"x%d" % i, clues=(clue,))
        scanned = deployment.ledger.clues_in_range("apple", "cherry")
        assert [name for name, _ in scanned] == ["apple", "banana"]


class TestBlockLookup:
    def test_block_of_committed(self, populated):
        deployment, _receipts = populated
        block = deployment.ledger.block_of(5)
        assert block is not None and block.contains_jsn(5)

    def test_block_of_pending(self, deployment):
        deployment.append("alice", b"x")  # block size 4: still pending
        assert deployment.ledger.block_of(1) is None
