"""tim and bim baseline accumulator models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import EMPTY_DIGEST, leaf_hash
from repro.merkle.bim import BimLedger, LightClient, merkle_path_padded, merkle_root_padded
from repro.merkle.proofs import fold_path
from repro.merkle.tim import TimAccumulator


class TestTim:
    def test_append_and_verify(self):
        tim = TimAccumulator()
        payloads = [b"tx-%d" % i for i in range(40)]
        for p in payloads:
            tim.append(p)
        root = tim.root()
        for i, p in enumerate(payloads):
            proof = tim.get_proof(i)
            assert TimAccumulator.verify(leaf_hash(p), proof, root)

    def test_root_published_per_append(self):
        tim = TimAccumulator()
        roots = set()
        for i in range(20):
            tim.append(b"t%d" % i)
            roots.add(tim.root())
        assert len(roots) == 20  # fine-grained per-transaction commitment

    def test_proof_length_grows_with_ledger(self):
        tim = TimAccumulator()
        for i in range(1024):
            tim.append_digest(leaf_hash(i.to_bytes(4, "big")))
        # The same leaf's proof gets longer as the tree grows.
        proof_small = tim.get_proof(0, at_size=16)
        proof_large = tim.get_proof(0, at_size=1024)
        assert len(proof_large.path) > len(proof_small.path)

    def test_historical_root_verification(self):
        tim = TimAccumulator()
        digests = [leaf_hash(b"d%d" % i) for i in range(33)]
        for d in digests:
            tim.append_digest(d)
        proof = tim.get_proof(5, at_size=20)
        assert proof.verify(digests[5], tim.root(at_size=20))
        assert not proof.verify(digests[5], tim.root())

    def test_anchor_cannot_shorten_paths(self):
        # The tim aoa anchor substitutes a trusted root but the Merkle path
        # stays O(log n) — the structural weakness fam removes.
        tim = TimAccumulator()
        digests = [leaf_hash(b"d%d" % i) for i in range(256)]
        for d in digests:
            tim.append_digest(d)
        anchor = tim.make_anchor(at_size=128)
        proof = tim.get_proof(5, at_size=128)
        assert tim.verify_with_anchor(digests[5], proof, anchor)
        assert len(proof.path) >= 7  # still a full path

    def test_anchor_mismatched_size_falls_back(self):
        tim = TimAccumulator()
        digests = [leaf_hash(b"d%d" % i) for i in range(64)]
        for d in digests:
            tim.append_digest(d)
        anchor = tim.make_anchor(at_size=32)
        proof = tim.get_proof(5)  # at current size
        assert tim.verify_with_anchor(digests[5], proof, anchor)


class TestPaddedMerkle:
    def test_empty_root(self):
        assert merkle_root_padded([]) == EMPTY_DIGEST

    def test_single_leaf(self):
        d = leaf_hash(b"x")
        assert merkle_root_padded([d]) == d

    def test_odd_count_duplicates_last(self):
        a, b, c = (leaf_hash(x) for x in (b"a", b"b", b"c"))
        from repro.crypto.hashing import node_hash

        expected = node_hash(node_hash(a, b), node_hash(c, c))
        assert merkle_root_padded([a, b, c]) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=39))
    def test_paths_verify_property(self, n, idx):
        if idx >= n:
            idx = idx % n
        leaves = [leaf_hash(i.to_bytes(2, "big")) for i in range(n)]
        root = merkle_root_padded(leaves)
        path = merkle_path_padded(leaves, idx)
        assert fold_path(leaves[idx], path) == root


class TestBim:
    def test_blocks_commit_at_capacity(self):
        ledger = BimLedger(block_capacity=4)
        for i in range(10):
            ledger.append(b"tx%d" % i)
        assert ledger.height == 2  # two full blocks; 2 txs pending
        assert ledger.size == 8
        ledger.commit_block()
        assert ledger.height == 3 and ledger.size == 10

    def test_header_chain_links(self):
        ledger = BimLedger(block_capacity=2)
        for i in range(6):
            ledger.append(b"tx%d" % i)
        headers = ledger.headers()
        assert headers[0].previous_hash == EMPTY_DIGEST
        for previous, current in zip(headers, headers[1:]):
            assert current.previous_hash == previous.header_hash()

    def test_spv_verification(self):
        ledger = BimLedger(block_capacity=3)
        positions = [ledger.append(b"tx%d" % i, timestamp=float(i)) for i in range(9)]
        client = LightClient()
        client.sync_headers(ledger.headers())
        for i, (height, index) in enumerate(positions):
            proof = ledger.get_proof(height, index)
            assert client.verify(b"tx%d" % i, proof)
            assert not client.verify(b"forged", proof)

    def test_light_client_rejects_broken_chain(self):
        import dataclasses

        ledger = BimLedger(block_capacity=2)
        for i in range(6):
            ledger.append(b"t%d" % i)
        headers = ledger.headers()
        bad = dataclasses.replace(headers[1], previous_hash=leaf_hash(b"forged"))
        client = LightClient()
        with pytest.raises(ValueError):
            client.sync_headers([headers[0], bad])

    def test_light_client_rejects_out_of_order_headers(self):
        ledger = BimLedger(block_capacity=2)
        for i in range(4):
            ledger.append(b"t%d" % i)
        client = LightClient()
        with pytest.raises(ValueError):
            client.sync_headers(ledger.headers()[1:])

    def test_boa_storage_grows_with_blocks(self):
        # The O(n) header cost the paper charges against bim light clients.
        ledger = BimLedger(block_capacity=1)
        for i in range(50):
            ledger.append(b"t%d" % i)
        client = LightClient()
        client.sync_headers(ledger.headers())
        assert client.storage_bytes() == 50 * 80

    def test_unverifiable_proof_for_unknown_block(self):
        ledger = BimLedger(block_capacity=2)
        ledger.append(b"a")
        ledger.append(b"b")
        client = LightClient()  # no headers synced
        proof = ledger.get_proof(0, 0)
        assert not client.verify(b"a", proof)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BimLedger(block_capacity=0)
