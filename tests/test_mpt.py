"""Merkle Patricia Trie: dict equivalence, proofs, persistence, history."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import EMPTY_DIGEST
from repro.merkle.mpt import MPT, key_to_nibbles, nibbles_to_key
from repro.storage.kv import CachedKVStore, KeyNotFoundError, MemoryKVStore


class TestNibbles:
    def test_round_trip(self):
        for key in (b"", b"\x00", b"\xff\x01\xa5", bytes(range(16))):
            assert nibbles_to_key(key_to_nibbles(key)) == key

    def test_nibble_values(self):
        assert list(key_to_nibbles(b"\xab")) == [0xA, 0xB]

    def test_odd_nibbles_rejected(self):
        with pytest.raises(ValueError):
            nibbles_to_key(b"\x01")


class TestBasics:
    def test_empty_root(self):
        assert MPT().root == EMPTY_DIGEST

    def test_put_get_single(self):
        trie = MPT()
        trie.put(b"key", b"value")
        assert trie.get(b"key") == b"value"

    def test_update_changes_root(self):
        trie = MPT()
        r1 = trie.put(b"key", b"v1")
        r2 = trie.put(b"key", b"v2")
        assert r1 != r2
        assert trie.get(b"key") == b"v2"

    def test_get_missing_raises(self):
        trie = MPT()
        trie.put(b"a", b"1")
        with pytest.raises(KeyNotFoundError):
            trie.get(b"b")
        assert trie.get_default(b"b") is None
        assert trie.get_default(b"b", b"dflt") == b"dflt"

    def test_contains(self):
        trie = MPT()
        trie.put(b"a", b"1")
        assert b"a" in trie and b"b" not in trie

    def test_prefix_keys(self):
        # One key a prefix of another exercises branch-with-value nodes.
        trie = MPT()
        trie.put(b"ab", b"short")
        trie.put(b"abcd", b"long")
        assert trie.get(b"ab") == b"short"
        assert trie.get(b"abcd") == b"long"
        trie.delete(b"ab")
        assert trie.get(b"abcd") == b"long"
        assert b"ab" not in trie

    def test_root_is_insertion_order_independent(self):
        import itertools

        pairs = [(b"abc", b"1"), (b"abd", b"2"), (b"xyz", b"3"), (b"ab", b"4")]
        roots = set()
        for perm in itertools.permutations(pairs):
            trie = MPT()
            for key, value in perm:
                trie.put(key, value)
            roots.add(trie.root)
        assert len(roots) == 1

    def test_delete_restores_previous_root(self):
        trie = MPT()
        trie.put(b"aaa", b"1")
        trie.put(b"aab", b"2")
        root_two = trie.root
        trie.put(b"zzz", b"3")
        trie.delete(b"zzz")
        assert trie.root == root_two

    def test_delete_missing_raises(self):
        trie = MPT()
        trie.put(b"a", b"1")
        with pytest.raises(KeyNotFoundError):
            trie.delete(b"b")

    def test_delete_to_empty(self):
        trie = MPT()
        trie.put(b"a", b"1")
        trie.delete(b"a")
        assert trie.root == EMPTY_DIGEST


class TestHistoricalRoots:
    def test_old_roots_stay_queryable(self):
        trie = MPT()
        roots = {}
        for i in range(20):
            trie.put(b"k%02d" % i, b"v%02d" % i)
            roots[i] = trie.root
        # Every historical version still answers for exactly its contents.
        assert trie.get_at(roots[5], b"k05") == b"v05"
        assert trie.get_at(roots[5], b"k06") is None
        assert trie.get_at(roots[19], b"k06") == b"v06"

    def test_functional_put_preserves_source(self):
        trie = MPT()
        trie.put(b"a", b"1")
        old_root = trie.root
        new_root = trie.put_at(old_root, b"b", b"2")
        assert trie.get_at(old_root, b"b") is None
        assert trie.get_at(new_root, b"b") == b"2"
        assert trie.get_at(new_root, b"a") == b"1"


class TestProofs:
    def test_membership_proof(self):
        trie = MPT()
        for i in range(50):
            trie.put(b"key-%02d" % i, b"val-%02d" % i)
        for i in (0, 7, 49):
            proof = trie.prove(b"key-%02d" % i)
            assert proof.value == b"val-%02d" % i
            assert proof.verify(trie.root)

    def test_non_membership_proof(self):
        trie = MPT()
        for i in range(20):
            trie.put(b"key-%02d" % i, b"v")
        proof = trie.prove(b"missing-key")
        assert proof.value is None
        assert proof.verify(trie.root)

    def test_proof_rejects_wrong_root(self):
        trie = MPT()
        trie.put(b"a", b"1")
        proof = trie.prove(b"a")
        other = MPT()
        other.put(b"a", b"2")
        assert not proof.verify(other.root)

    def test_proof_rejects_value_substitution(self):
        import dataclasses

        trie = MPT()
        trie.put(b"a", b"real")
        trie.put(b"b", b"other")
        proof = trie.prove(b"a")
        forged = dataclasses.replace(proof, value=b"fake")
        assert not forged.verify(trie.root)

    def test_proof_rejects_truncated_path(self):
        import dataclasses

        trie = MPT()
        for i in range(30):
            trie.put(b"k%02d" % i, b"v")
        proof = trie.prove(b"k07")
        if len(proof.nodes) > 1:
            truncated = dataclasses.replace(proof, nodes=proof.nodes[:-1])
            assert not truncated.verify(trie.root)

    def test_proof_at_historical_root(self):
        trie = MPT()
        trie.put(b"a", b"1")
        old_root = trie.root
        trie.put(b"b", b"2")
        proof = trie.prove(b"a", root=old_root)
        assert proof.verify(old_root)

    def test_empty_trie_non_membership(self):
        trie = MPT()
        proof = trie.prove(b"anything")
        assert proof.value is None and proof.verify(EMPTY_DIGEST)


class TestAgainstDict:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=6), st.binary(max_size=8)),
            max_size=60,
        ),
        st.binary(min_size=1, max_size=6),
    )
    def test_model_equivalence(self, operations, probe):
        trie = MPT()
        model: dict[bytes, bytes] = {}
        for key, value in operations:
            trie.put(key, value)
            model[key] = value
        assert sorted(trie.items()) == sorted(model.items())
        assert trie.get_default(probe) == model.get(probe)
        proof = trie.prove(probe)
        assert proof.value == model.get(probe)
        assert proof.verify(trie.root)

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=5), st.binary(max_size=6), min_size=1, max_size=40
        ),
        st.data(),
    )
    def test_delete_equivalence(self, contents, data):
        trie = MPT()
        for key, value in contents.items():
            trie.put(key, value)
        keys = sorted(contents)
        to_delete = data.draw(st.lists(st.sampled_from(keys), unique=True, max_size=len(keys)))
        for key in to_delete:
            trie.delete(key)
            del contents[key]
            assert sorted(trie.items()) == sorted(contents.items())


class TestStores:
    def test_works_over_cached_store(self):
        trie = MPT(store=CachedKVStore(MemoryKVStore(), capacity=8))
        for i in range(100):
            trie.put(b"key-%03d" % i, b"v%03d" % i)
        for i in range(100):
            assert trie.get(b"key-%03d" % i) == b"v%03d" % i
        assert trie.prove(b"key-050").verify(trie.root)
