"""Clocks, TSA, pegging protocols, T-Ledger, and the attack scenarios."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import leaf_hash
from repro.timeauth import (
    PublicChainNotary,
    OneWayPegger,
    SimClock,
    SkewedClock,
    StaleRequestError,
    TimeLedger,
    TimeStampAuthority,
    TSAPool,
    TSAUnavailableError,
    TwoWayPegger,
    run_one_way_amplification,
    run_tledger_stale_submission,
    run_two_way_window,
)
from repro.timeauth.pegging import TimeBound


class TestClocks:
    def test_sim_clock_advances(self):
        clock = SimClock(10.0)
        assert clock.now() == 10.0
        clock.advance(5.0)
        assert clock.now() == 15.0

    def test_sim_clock_rejects_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_is_monotone(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)  # no-op
        assert clock.now() == 10.0
        clock.advance_to(20.0)
        assert clock.now() == 20.0

    def test_skewed_clock(self):
        base = SimClock(100.0)
        skewed = SkewedClock(base, offset=-3.5)
        assert skewed.now() == 96.5
        base.advance(1.0)
        assert skewed.now() == 97.5


class TestTSA:
    def test_token_verifies(self):
        clock = SimClock(42.0)
        tsa = TimeStampAuthority("ntsc", clock)
        token = tsa.stamp(leaf_hash(b"digest"))
        assert token.timestamp == 42.0
        assert token.verify(tsa.public_key)

    def test_token_rejects_other_key(self):
        clock = SimClock()
        tsa1 = TimeStampAuthority("a", clock)
        tsa2 = TimeStampAuthority("b", clock)
        token = tsa1.stamp(leaf_hash(b"d"))
        assert not token.verify(tsa2.public_key)

    def test_tampered_timestamp_detected(self):
        import dataclasses

        clock = SimClock(5.0)
        tsa = TimeStampAuthority("a", clock)
        token = tsa.stamp(leaf_hash(b"d"))
        forged = dataclasses.replace(token, timestamp=1.0)  # backdate attempt
        assert not forged.verify(tsa.public_key)

    def test_unavailable_tsa_raises(self):
        tsa = TimeStampAuthority("a", SimClock())
        tsa.available = False
        with pytest.raises(TSAUnavailableError):
            tsa.stamp(leaf_hash(b"d"))

    def test_pool_round_robin_and_failover(self):
        clock = SimClock()
        members = [TimeStampAuthority(f"t{i}", clock) for i in range(3)]
        pool = TSAPool(members)
        ids = {pool.stamp(leaf_hash(b"%d" % i)).tsa_id for i in range(3)}
        assert ids == {"t0", "t1", "t2"}  # rotation spreads load
        members[0].available = False
        members[1].available = False
        token = pool.stamp(leaf_hash(b"x"))
        assert token.tsa_id == "t2"
        members[2].available = False
        with pytest.raises(TSAUnavailableError):
            pool.stamp(leaf_hash(b"y"))

    def test_pool_verify_dispatches_by_id(self):
        clock = SimClock()
        pool = TSAPool([TimeStampAuthority("t0", clock), TimeStampAuthority("t1", clock)])
        token = pool.stamp(leaf_hash(b"z"))
        assert pool.verify(token)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            TSAPool([])


class TestOneWayPegging:
    def test_evidence_appears_after_block(self):
        clock = SimClock()
        notary = PublicChainNotary(clock, block_interval=100.0)
        pegger = OneWayPegger(notary)
        digest = leaf_hash(b"d")
        pegger.peg(digest)
        assert pegger.time_bound_for(digest) is None  # not yet mined
        clock.advance(100.0)
        bound = pegger.time_bound_for(digest)
        assert bound is not None and bound.upper == 100.0

    def test_lower_bound_is_unknowable(self):
        # The structural weakness: one-way pegging cannot lower-bound time.
        clock = SimClock()
        notary = PublicChainNotary(clock, block_interval=10.0)
        pegger = OneWayPegger(notary)
        digest = leaf_hash(b"d")
        pegger.peg(digest)
        clock.advance(10.0)
        assert pegger.time_bound_for(digest).lower == float("-inf")

    def test_blocks_mine_on_schedule(self):
        clock = SimClock()
        notary = PublicChainNotary(clock, block_interval=10.0)
        clock.advance(35.0)
        notary.tick()
        assert notary.height == 3


class TestTwoWayPegging:
    def test_anchor_callback_invoked(self):
        clock = SimClock()
        tsa = TimeStampAuthority("t", clock)
        anchored = []
        pegger = TwoWayPegger(tsa, anchor_callback=anchored.append)
        token = pegger.peg(leaf_hash(b"root"))
        assert anchored == [token]
        assert token.verify(tsa.public_key)

    def test_bracket_bounds(self):
        clock = SimClock()
        tsa = TimeStampAuthority("t", clock)
        pegger = TwoWayPegger(tsa, anchor_callback=lambda t: None)
        for advance in (10.0, 10.0, 10.0):
            pegger.peg(leaf_hash(b"r"))
            clock.advance(advance)
        bound = TwoWayPegger.bracket(pegger.tokens, anchored_at=15.0)
        assert bound.lower == 10.0 and bound.upper == 20.0


class TestTimeLedger:
    def make(self, finalize=1.0, tolerance=1.0):
        clock = SimClock()
        tsa = TimeStampAuthority("t", clock)
        return clock, tsa, TimeLedger(clock, tsa, finalize, tolerance)

    def test_submit_and_evidence(self):
        clock, tsa, tledger = self.make()
        clock.advance(0.25)
        receipt = tledger.submit("ledger-A", leaf_hash(b"root"), clock.now())
        clock.advance(1.0)
        evidence = tledger.get_evidence(receipt.seq)
        assert evidence.verify(tsa)
        assert evidence.verify({"t": tsa.public_key})
        bound = evidence.time_bound()
        assert bound.upper >= 0.25

    def test_stale_submission_rejected(self):
        clock, _tsa, tledger = self.make(tolerance=0.5)
        stamped_at = clock.now()
        clock.advance(2.0)  # adversary sat on the request
        with pytest.raises(StaleRequestError):
            tledger.submit("ledger-A", leaf_hash(b"r"), stamped_at)
        assert tledger.rejected_count == 1

    def test_future_timestamp_rejected(self):
        clock, _tsa, tledger = self.make(tolerance=0.5)
        with pytest.raises(StaleRequestError):
            tledger.submit("ledger-A", leaf_hash(b"r"), clock.now() + 100.0)

    def test_finalizations_run_on_schedule(self):
        clock, _tsa, tledger = self.make(finalize=1.0)
        clock.advance(3.5)
        assert tledger.tick() == 3
        assert len(tledger.finalizations) == 3

    def test_evidence_needs_covering_finalization(self):
        clock, _tsa, tledger = self.make()
        receipt = tledger.submit("l", leaf_hash(b"r"), clock.now())
        with pytest.raises(LookupError):
            tledger.get_evidence(receipt.seq)

    def test_evidence_bounds_tighten_with_interval(self):
        for interval in (2.0, 0.5):
            clock = SimClock()
            tsa = TimeStampAuthority("t", clock)
            tledger = TimeLedger(clock, tsa, interval, admission_tolerance=5.0)
            clock.advance(interval)
            tledger.tick()
            clock.advance(interval / 4)
            receipt = tledger.submit("l", leaf_hash(b"r"), clock.now())
            clock.advance(interval)
            evidence = tledger.get_evidence(receipt.seq)
            assert evidence.time_bound().width <= 2 * interval + 1e-9

    def test_tampered_evidence_fails(self):
        import dataclasses

        clock, tsa, tledger = self.make()
        clock.advance(0.2)
        receipt = tledger.submit("l", leaf_hash(b"r"), clock.now())
        clock.advance(1.0)
        evidence = tledger.get_evidence(receipt.seq)
        forged_entry = dataclasses.replace(evidence.entry, digest=leaf_hash(b"other"))
        forged = dataclasses.replace(evidence, entry=forged_entry)
        assert not forged.verify(tsa)

    def test_higher_tps_amortises_tsa_stamps(self):
        clock, tsa, tledger = self.make()
        for i in range(10):  # 10 submissions within one interval
            clock.advance(0.05)
            tledger.submit("l", leaf_hash(b"%d" % i), clock.now())
        clock.advance(1.0)
        tledger.tick()
        covering = [f for f in tledger.finalizations if f.covered_size >= 10]
        assert covering  # one TSA signature covers all ten entries
        assert tsa.stamps_issued <= 2


class TestAttacks:
    def test_one_way_window_grows_unbounded(self):
        windows = [
            run_one_way_amplification(delay).malicious_window
            for delay in (10.0, 1000.0, 100000.0)
        ]
        assert windows[0] < windows[1] < windows[2]
        assert windows[2] > 100000.0

    def test_two_way_window_is_bounded(self):
        for delay in (0.1, 10.0, 1e6):
            result = run_two_way_window(delay, peg_interval=1.0)
            assert result.bounded
            assert result.malicious_window <= 2.0 + 1e-9

    def test_two_way_window_approaches_bound(self):
        result = run_two_way_window(1e9, peg_interval=1.0)
        assert result.malicious_window > 1.5  # adversary gets close to 2Δτ

    def test_tledger_rejects_held_requests(self):
        assert run_tledger_stale_submission(hold_back=0.1)
        assert not run_tledger_stale_submission(hold_back=3.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.01, max_value=1e6))
    def test_two_way_bound_property(self, delay):
        result = run_two_way_window(delay, peg_interval=1.0)
        assert result.malicious_window <= result.theoretical_bound + 1e-9


class TestTimeBound:
    def test_contains(self):
        bound = TimeBound(1.0, 3.0)
        assert bound.contains(2.0) and bound.contains(1.0)
        assert not bound.contains(3.5)
        assert bound.width == 2.0
