"""cSL index and the member registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cluesl import ClueSkipList
from repro.core.errors import AuthenticationError, AuthorizationError
from repro.core.members import MemberRegistry
from repro.crypto import KeyPair, Role


class TestClueSkipList:
    def test_insert_and_get(self):
        csl = ClueSkipList()
        csl.insert("clue-a", 1)
        csl.insert("clue-a", 5)
        csl.insert("clue-b", 3)
        assert csl.get("clue-a") == [1, 5]
        assert csl.get("clue-b") == [3]
        assert csl.get("ghost") == []

    def test_count_and_contains(self):
        csl = ClueSkipList()
        csl.insert("a", 1)
        csl.insert("a", 2)
        assert csl.count("a") == 2
        assert csl.count("b") == 0
        assert "a" in csl and "b" not in csl

    def test_jsns_must_increase_per_clue(self):
        csl = ClueSkipList()
        csl.insert("a", 5)
        with pytest.raises(ValueError):
            csl.insert("a", 5)
        with pytest.raises(ValueError):
            csl.insert("a", 3)

    def test_ordered_clue_iteration(self):
        csl = ClueSkipList()
        for clue in ("mango", "apple", "zebra", "kiwi"):
            csl.insert(clue, 1)
        assert list(csl.clues()) == ["apple", "kiwi", "mango", "zebra"]

    def test_range_scan(self):
        csl = ClueSkipList()
        for i, clue in enumerate(("a1", "a2", "b1", "b2", "c1")):
            csl.insert(clue, i)
        scanned = dict(csl.range("a2", "c1"))
        assert set(scanned) == {"a2", "b1", "b2"}

    def test_sizes(self):
        csl = ClueSkipList()
        for i in range(10):
            csl.insert(f"clue-{i % 3}", i)
        assert len(csl) == 10
        assert csl.num_clues() == 3

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.integers(min_value=1, max_value=20),
            min_size=1,
            max_size=20,
        )
    )
    def test_matches_dict_model(self, spec):
        csl = ClueSkipList()
        model = {}
        jsn = 0
        for clue, count in sorted(spec.items()):
            for _ in range(count):
                csl.insert(clue, jsn)
                model.setdefault(clue, []).append(jsn)
                jsn += 1
        for clue, jsns in model.items():
            assert csl.get(clue) == jsns
        assert list(csl.clues()) == sorted(model)


class TestMemberRegistry:
    def test_register_and_lookup(self):
        registry = MemberRegistry()
        keypair = KeyPair.generate(seed="m")
        cert = registry.register("alice", Role.USER, keypair.public)
        assert registry.certificate("alice") == cert
        assert registry.public_key("alice") == keypair.public
        assert registry.role("alice") is Role.USER

    def test_duplicate_registration_rejected(self):
        registry = MemberRegistry()
        keypair = KeyPair.generate(seed="m")
        registry.register("alice", Role.USER, keypair.public)
        with pytest.raises(AuthenticationError):
            registry.register("alice", Role.DBA, keypair.public)

    def test_unknown_member(self):
        with pytest.raises(AuthenticationError):
            MemberRegistry().certificate("ghost")

    def test_require_role(self):
        registry = MemberRegistry()
        registry.register("dba", Role.DBA, KeyPair.generate(seed="d").public)
        registry.require_role("dba", Role.DBA)
        with pytest.raises(AuthorizationError):
            registry.require_role("dba", Role.REGULATOR)

    def test_members_with_role(self):
        registry = MemberRegistry()
        for name, role in (("u1", Role.USER), ("u2", Role.USER), ("d", Role.DBA)):
            registry.register(name, role, KeyPair.generate(seed=name).public)
        assert registry.members_with_role(Role.USER) == ["u1", "u2"]
        assert registry.members_with_role(Role.DBA) == ["d"]
        assert registry.members_with_role(Role.REGULATOR) == []

    def test_validate_foreign_certificate(self):
        from repro.crypto import CertificateAuthority

        registry = MemberRegistry()
        foreign_ca = CertificateAuthority("evil-ca")
        cert = foreign_ca.issue("mallory", Role.DBA, KeyPair.generate(seed="e").public)
        with pytest.raises(AuthenticationError):
            registry.validate_certificate(cert)

    def test_export_snapshot(self):
        registry = MemberRegistry()
        registry.register("alice", Role.USER, KeyPair.generate(seed="a").public)
        snapshot = registry.export()
        assert set(snapshot) == {"alice"}
        # Mutating the snapshot must not affect the registry.
        snapshot["bob"] = None
        assert registry.all_members() == ["alice"]
