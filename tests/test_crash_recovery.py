"""Crash-recovery properties of the durable ledger (fault-injection driven).

The contract under test (DESIGN.md §9): for *every* crash point inside a
``Ledger.append_batch`` against a durable :class:`FileStream` — any
write/flush/fsync boundary, any surviving prefix of a torn write — reopening
the stream and running :meth:`Ledger.recover` yields **exactly** the
pre-batch or the post-batch ledger state (atomicity: never a third state),
with fam root, CM-Tree state root, and cSL index matching values re-derived
on an independent in-memory ledger.  Separately, any single flipped bit in a
closed stream file must surface as :class:`StreamCorruptionError` — never as
data.

Everything here is deterministic (seeded keys, RFC 6979 signatures, a
``SimClock`` that is never advanced), so the faulty run and the in-memory
twin produce byte-identical journals.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ClientRequest, Ledger, LedgerConfig
from repro.core.members import MemberRegistry
from repro.crypto import KeyPair, Role
from repro.storage import FileStream, MemoryStream, StreamCorruptionError
from repro.storage.faults import FaultPlan, FaultyStream, InjectedCrash, flip_bit
from repro.timeauth import SimClock

# The CI crash-safety job (HYPOTHESIS_PROFILE=ci) sweeps more examples than
# a local run; these counts feed the @settings below explicitly because an
# explicit max_examples would otherwise shadow the profile.
_CI = os.environ.get("HYPOTHESIS_PROFILE") == "ci"
TORN_PREFIX_EXAMPLES = 150 if _CI else 24
BIT_FLIP_EXAMPLES = 300 if _CI else 64

URI = "ledger://crash"
CONFIG = LedgerConfig(uri=URI, fractal_height=4, block_size=4)
LSP = KeyPair.generate(seed="crash-lsp")
USER = KeyPair.generate(seed="crash-user")
N_PRE = 6  # pre-batch appends (plus genesis: crosses one block boundary)
N_BATCH = 5  # batch size (crosses another block boundary)


def _requests(start: int, count: int) -> list[ClientRequest]:
    out = []
    for i in range(start, start + count):
        out.append(
            ClientRequest.build(
                URI,
                "user",
                b"crash-payload-%04d" % i,
                clues=("CRASH", "k%d" % (i % 2)) if i % 2 == 0 else ("CRASH",),
                nonce=i.to_bytes(4, "big"),
                client_timestamp=0.0,
            ).signed_by(USER)
        )
    return out


PRE_REQUESTS = _requests(0, N_PRE)
BATCH_REQUESTS = _requests(100, N_BATCH)


def _fresh_registry() -> MemberRegistry:
    registry = MemberRegistry()
    registry.register("user", Role.USER, USER.public)
    return registry


def _build_ledger(stream) -> Ledger:
    return Ledger(
        CONFIG,
        clock=SimClock(),
        registry=_fresh_registry(),
        lsp_keypair=LSP,
        journal_stream=stream,
    )


def _state(ledger: Ledger) -> tuple:
    """Everything atomicity promises: size + re-derivable roots + cSL view."""
    return (
        ledger.size,
        ledger.current_root(),
        ledger.state_root(),
        tuple(ledger.list_tx("CRASH")),
    )


def _expected_states() -> tuple[tuple, tuple]:
    """Pre- and post-batch states re-derived on an independent twin ledger."""
    twin = _build_ledger(MemoryStream())
    for request in PRE_REQUESTS:
        twin.append(request)
    pre = _state(twin)
    twin.append_batch(BATCH_REQUESTS)
    post = _state(twin)
    return pre, post


PRE_STATE, POST_STATE = _expected_states()


def _crash_batch_and_recover(tmp_dir: str, crash_op: int, partial: int | None) -> tuple:
    """Build pre-state, crash the batch at (crash_op, partial), recover.

    Returns ``(recovered_state, open_report)`` of the restarted process.
    """
    path = os.path.join(tmp_dir, f"crash-{crash_op}-{partial}.log")
    plan = FaultPlan()
    stream = FaultyStream(path, plan)
    ledger = _build_ledger(stream)
    for request in PRE_REQUESTS:
        ledger.append(request)
    plan.arm(crash_op, partial)
    with pytest.raises(InjectedCrash):
        ledger.append_batch(BATCH_REQUESTS)
    stream.abandon()
    with FileStream(path) as reopened:
        report = reopened.open_report
        recovered = Ledger.recover(
            CONFIG, reopened, _fresh_registry(), LSP, clock=SimClock()
        )
        state = _state(recovered)
        # The roots must also verify internally, not just match the twin.
        for jsn in range(recovered.size):
            assert recovered.verify_journal(recovered.get_journal(jsn)), jsn
    return state, report


def _trace_batch_ops(tmp_dir: str):
    """Dry-run the batch to enumerate its I/O operations (the fault sites)."""
    plan = FaultPlan()
    stream = FaultyStream(os.path.join(tmp_dir, "trace.log"), plan)
    ledger = _build_ledger(stream)
    for request in PRE_REQUESTS:
        ledger.append(request)
    plan.reset()
    ledger.append_batch(BATCH_REQUESTS)
    points = plan.crash_points()
    stream.close()
    return points


class TestBatchCrashAtomicity:
    """Pre-batch or post-batch — never a third state."""

    def test_twin_states_differ(self):
        assert PRE_STATE != POST_STATE  # the property below must discriminate

    def test_every_io_boundary(self):
        """Crash at every traced write/flush/fsync op, empty and full tears."""
        with tempfile.TemporaryDirectory() as tmp:
            points = _trace_batch_ops(tmp)
            assert points, "batch issued no I/O?"
            kinds = {point.kind for point in points}
            assert kinds == {"write", "flush", "fsync"}
            for point in points:
                for partial in {0, point.size}:
                    state, _report = _crash_batch_and_recover(
                        tmp, point.op_index, partial
                    )
                    assert state in (PRE_STATE, POST_STATE), (point, partial)

    def test_nothing_persisted_recovers_pre(self):
        with tempfile.TemporaryDirectory() as tmp:
            state, report = _crash_batch_and_recover(tmp, crash_op=0, partial=0)
            assert state == PRE_STATE
            assert report.clean  # nothing of the batch hit the disk

    def test_fsync_boundary_recovers_post(self):
        """Data fully written, crash inside fsync: the commit is on disk."""
        with tempfile.TemporaryDirectory() as tmp:
            points = _trace_batch_ops(tmp)
            fsync_op = next(p.op_index for p in points if p.kind == "fsync")
            state, report = _crash_batch_and_recover(tmp, fsync_op, None)
            assert state == POST_STATE
            assert report.clean

    def test_torn_write_boundaries(self):
        """Record-aligned and header-straddling tears of the batch write."""
        with tempfile.TemporaryDirectory() as tmp:
            points = _trace_batch_ops(tmp)
            write = next(p for p in points if p.kind == "write")
            interesting = {0, 1, 12, 13, 14, write.size - 1, write.size}
            # Every record boundary of the batch, give or take a byte.
            edge = 0
            for request in BATCH_REQUESTS:
                # 13-byte header + journal serialization; sizes vary per
                # journal, so derive boundaries from the total proportionally
                # conservative sweep below instead of exact offsets.
                edge += write.size // N_BATCH
                interesting.update({edge - 1, edge, edge + 1})
            for partial in sorted(p for p in interesting if 0 <= p <= write.size):
                state, _report = _crash_batch_and_recover(tmp, write.op_index, partial)
                if partial == write.size:
                    # All bytes down, only the fsync ack was lost.
                    assert state == POST_STATE, partial
                else:
                    # The commit epilogue lives in the batch's final record:
                    # any shorter prefix must roll back the whole batch.
                    assert state == PRE_STATE, partial

    @settings(deadline=None, max_examples=TORN_PREFIX_EXAMPLES)
    @given(data=st.data())
    def test_torn_write_any_prefix(self, data):
        """Property: an arbitrary surviving prefix is pre- xor post-batch."""
        with tempfile.TemporaryDirectory() as tmp:
            points = _trace_batch_ops(tmp)
            write = next(p for p in points if p.kind == "write")
            partial = data.draw(st.integers(min_value=0, max_value=write.size))
            state, _report = _crash_batch_and_recover(tmp, write.op_index, partial)
            expected = POST_STATE if partial == write.size else PRE_STATE
            assert state == expected, partial

    def test_crash_during_single_append(self):
        """The degenerate batch: one journal, same all-or-nothing contract."""
        single = _requests(500, 1)
        twin = _build_ledger(MemoryStream())
        for request in PRE_REQUESTS:
            twin.append(request)
        pre = _state(twin)
        twin.append(single[0])
        post = _state(twin)
        with tempfile.TemporaryDirectory() as tmp:
            for crash_op, partial in ((0, 0), (0, 20), (1, None), (2, None)):
                path = os.path.join(tmp, f"single-{crash_op}-{partial}.log")
                plan = FaultPlan()
                stream = FaultyStream(path, plan)
                ledger = _build_ledger(stream)
                for request in PRE_REQUESTS:
                    ledger.append(request)
                plan.arm(crash_op, partial)
                with pytest.raises(InjectedCrash):
                    ledger.append(single[0])
                stream.abandon()
                with FileStream(path) as reopened:
                    recovered = Ledger.recover(
                        CONFIG, reopened, _fresh_registry(), LSP, clock=SimClock()
                    )
                    assert _state(recovered) in (pre, post), (crash_op, partial)


class TestBitFlipDetection:
    """A flipped bit is corruption, wherever it lands — never data."""

    @staticmethod
    def _build_committed_file(tmp_dir: str, name: str = "flip.log") -> str:
        path = os.path.join(tmp_dir, name)
        stream = FileStream(path, durable=True)
        ledger = _build_ledger(stream)
        for request in PRE_REQUESTS:
            ledger.append(request)
        ledger.append_batch(BATCH_REQUESTS)
        stream.close()
        return path

    @staticmethod
    def _assert_flip_detected(path: str, bit: int) -> None:
        flip_bit(path, bit)
        try:
            with pytest.raises(StreamCorruptionError):
                with FileStream(path) as stream:
                    # Open-time scan should already raise; a full read sweep
                    # backstops it so detection is never deferred past here.
                    for offset in range(len(stream)):
                        if not stream.is_erased(offset):
                            stream.read(offset)
        finally:
            flip_bit(path, bit)  # restore for the next example

    def test_superblock_flip(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = self._build_committed_file(tmp)
            self._assert_flip_detected(path, bit=3)

    def test_every_byte_of_one_record(self):
        """Exhaustive over one mid-stream record: header and payload bytes."""
        with tempfile.TemporaryDirectory() as tmp:
            path = self._build_committed_file(tmp)
            with FileStream(path) as stream:
                position = stream._positions[2]
                extent = 13 + stream._lengths[2]
            for byte_index in range(position, position + extent):
                self._assert_flip_detected(path, byte_index * 8 + byte_index % 8)

    @settings(deadline=None, max_examples=BIT_FLIP_EXAMPLES)
    @given(data=st.data())
    def test_any_single_bit_flip_is_detected(self, data):
        """Property: no single-bit flip anywhere in the file goes unnoticed."""
        with tempfile.TemporaryDirectory() as tmp:
            path = self._build_committed_file(tmp)
            bit = data.draw(
                st.integers(min_value=0, max_value=os.path.getsize(path) * 8 - 1)
            )
            self._assert_flip_detected(path, bit)

    def test_flip_under_ledger_recovery(self):
        """Recovery refuses a corrupted stream instead of rebuilding on it."""
        with tempfile.TemporaryDirectory() as tmp:
            path = self._build_committed_file(tmp)
            flip_bit(path, 2048)
            with pytest.raises(StreamCorruptionError):
                with FileStream(path) as reopened:
                    Ledger.recover(
                        CONFIG, reopened, _fresh_registry(), LSP, clock=SimClock()
                    )
