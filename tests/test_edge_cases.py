"""Edge cases and error paths across the public API surface."""

import dataclasses

import pytest

from repro.core import DaseinVerifier, JournalNotFoundError, dasein_audit
from repro.core.occult import verify_occult_approvals
from repro.crypto.multisig import MultiSignatureError


class TestLedgerViewEdges:
    def test_entry_out_of_range(self, populated):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        with pytest.raises(JournalNotFoundError):
            view.entry(-1)
        with pytest.raises(JournalNotFoundError):
            view.entry(10_000)

    def test_fresh_ledger_exports_and_audits(self, deployment):
        # Genesis-only ledger: still auditable.
        view = deployment.ledger.export_view()
        assert len(view.entries) == 1
        report = dasein_audit(view, tsa_keys=deployment.tsa_keys)
        assert report.passed


class TestVerifierEdges:
    def test_when_without_any_time_journals(self, deployment):
        deployment.append("alice", b"x")
        deployment.ledger.commit_block()
        view = deployment.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
        bound, valid = verifier.verify_when(1)
        assert bound is None and not valid

    def test_journal_at_for_mutated_entry(self, populated):
        deployment, _receipts = populated
        from repro.core import OccultMode

        record = deployment.ledger.prepare_occult(3, OccultMode.SYNC, "edge")
        approvals = deployment.sign_approval(["dba", "regulator"], record.approval_digest())
        deployment.ledger.execute_occult(record, approvals)
        view = deployment.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
        assert verifier.journal_at(3) is None

    def test_verify_who_unsigned_journal(self, populated):
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
        journal = verifier.journal_at(receipts[0].jsn)
        unsigned = dataclasses.replace(journal, client_signature=None)
        assert not verifier.verify_who(unsigned)


class TestOccultApprovalHelper:
    def test_verify_occult_approvals_helper(self, populated):
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(3, reason="helper")
        digest = record.approval_digest()
        approvals = deployment.sign_approval(["dba", "regulator"], digest)
        required = deployment.ledger.occult_required_signers()
        verify_occult_approvals(record, approvals, required)  # must not raise

    def test_helper_rejects_wrong_record(self, populated):
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(3, reason="helper")
        other = deployment.ledger.prepare_occult(4, reason="other")
        approvals = deployment.sign_approval(
            ["dba", "regulator"], other.approval_digest()
        )
        with pytest.raises(MultiSignatureError, match="different occult record"):
            verify_occult_approvals(record, approvals, deployment.ledger.occult_required_signers())


class TestAuditEdges:
    def test_audit_without_tsa_keys_fails_when(self, populated):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        report = dasein_audit(view)  # auditor knows no TSA keys
        assert not report.passed
        assert any(step.name == "time-journals" for step in report.failures())

    def test_audit_report_failures_helper(self, populated):
        deployment, _receipts = populated
        report = dasein_audit(deployment.ledger.export_view(), tsa_keys=deployment.tsa_keys)
        assert report.failures() == []

    def test_audit_with_foreign_certificate(self, populated):
        deployment, _receipts = populated
        from repro.crypto import CertificateAuthority, KeyPair, Role

        view = deployment.ledger.export_view()
        foreign = CertificateAuthority("foreign-ca")
        bad_cert = foreign.issue("intruder", Role.USER, KeyPair.generate(seed="i").public)
        view.certificates["intruder"] = bad_cert
        report = dasein_audit(view, tsa_keys=deployment.tsa_keys)
        assert not report.passed
        assert report.failures()[0].name == "certificates"


class TestReceiptLookups:
    def test_receipt_for_unknown_jsn(self, populated):
        deployment, _receipts = populated
        assert deployment.ledger.receipt_for(99_999) is None

    def test_receipts_kept_per_jsn(self, populated):
        deployment, receipts = populated
        for receipt in receipts:
            assert deployment.ledger.receipt_for(receipt.jsn) == receipt
