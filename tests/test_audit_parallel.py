"""Parallel audit engine: byte-identical reports, deterministic failures,
and crash-safe checkpoint resume.

The contract under test is the tentpole invariant: for any worker count,
chunk size, and scheduling, ``dasein_audit`` produces an ``AuditReport``
whose ``canonical()`` bytes equal the sequential engine's — for passing
*and* failing ledgers.  Checkpoint crash tests reuse the fault-injection
harness from :mod:`repro.storage.faults`.
"""

import dataclasses

import pytest

from repro.audit import CheckpointStore, dasein_audit
from repro.core.journal import Journal
from repro.crypto import KeyPair
from repro.storage.faults import FaultPlan, FaultyFile, InjectedCrash, flip_byte

# The grid deliberately includes chunk sizes that split the workload into
# many small chunks (worst case for merge ordering) and a chunk size larger
# than the ledger (single-chunk degenerate case).
GRID = [(1, 3), (2, 5), (4, 8), (4, 256), (3, 1)]


def _audit(deployment, view=None, **kwargs):
    view = view if view is not None else deployment.ledger.export_view()
    kwargs.setdefault("pool", "thread")  # deterministic + cheap under pytest
    return dasein_audit(view, tsa_keys=deployment.tsa_keys, **kwargs)


def _forge_signature(view, jsn, seed="mallory"):
    """Replace jsn's client signature with a stranger's (digest kept valid,
    so the *signature* check is what must fail — the parallelised path)."""
    entry = view.entry(jsn)
    journal = Journal.from_bytes(entry.data)
    mallory = KeyPair.generate(seed=seed)
    forged = dataclasses.replace(
        journal, client_signature=mallory.sign(journal.request_hash)
    )
    view.entries[jsn - view.genesis_start] = dataclasses.replace(
        entry, data=forged.to_bytes(), retained_hash=forged.tx_hash()
    )


class TestByteIdenticalReports:
    def test_honest_ledger_all_worker_counts(self, populated):
        deployment, _receipts = populated
        baseline = _audit(deployment)
        assert baseline.passed
        for workers, chunk_size in GRID:
            report = _audit(deployment, workers=workers, chunk_size=chunk_size)
            assert report.canonical() == baseline.canonical(), (workers, chunk_size)

    def test_tampered_ledger_all_worker_counts(self, populated):
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        _forge_signature(view, receipts[10].jsn)
        baseline = _audit(deployment, view=view)
        assert not baseline.passed
        assert any(
            f"jsn {receipts[10].jsn}" in step.detail for step in baseline.failures()
        )
        for workers, chunk_size in GRID:
            report = _audit(
                deployment, view=view, workers=workers, chunk_size=chunk_size
            )
            assert report.canonical() == baseline.canonical(), (workers, chunk_size)

    def test_process_pool_matches_sequential(self, populated):
        # One fork-pool run: same bytes as inline, through real processes
        # (falls back to threads automatically where fork is unavailable).
        deployment, _receipts = populated
        baseline = _audit(deployment)
        report = _audit(deployment, workers=2, chunk_size=8, pool="auto")
        assert report.canonical() == baseline.canonical()

    def test_collect_all_failures_matches(self, populated):
        # early_terminate=False exercises the non-short-circuit merge.
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        _forge_signature(view, receipts[4].jsn)
        baseline = _audit(deployment, view=view, early_terminate=False)
        report = _audit(
            deployment, view=view, early_terminate=False, workers=4, chunk_size=2
        )
        assert report.canonical() == baseline.canonical()


class TestDeterministicFirstFailure:
    def test_earliest_tampered_jsn_wins_regardless_of_scheduling(self, populated):
        """Two forged journals in different chunks: the failure must always
        name the earlier jsn, even when a later chunk finishes first."""
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        early, late = receipts[3].jsn, receipts[16].jsn
        _forge_signature(view, late, seed="mallory-late")
        _forge_signature(view, early, seed="mallory-early")
        baseline = _audit(deployment, view=view)
        details = " ".join(step.detail for step in baseline.failures())
        assert f"jsn {early}" in details
        assert f"jsn {late}" not in details  # early termination at the first
        for workers, chunk_size in GRID:
            report = _audit(
                deployment, view=view, workers=workers, chunk_size=chunk_size
            )
            assert report.canonical() == baseline.canonical(), (workers, chunk_size)

    def test_counters_stop_at_first_failure(self, populated):
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        target = receipts[8].jsn
        _forge_signature(view, target)
        for workers in (0, 4):
            report = _audit(deployment, view=view, workers=workers, chunk_size=3)
            assert report.journals_replayed == target - view.genesis_start
            assert not report.passed


class TestCheckpointResume:
    def test_resume_after_injected_crash(self, populated, tmp_path):
        """Kill the audit mid-save (power-loss model); the previous durable
        checkpoint survives and a resumed audit reproduces the baseline
        report byte for byte."""
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        baseline = _audit(deployment, view=view)

        path = tmp_path / "audit.ckpt"
        plan = FaultPlan()
        faulty = CheckpointStore(path, file_factory=lambda raw: FaultyFile(raw, plan))
        # A save is write+flush+fsync = 3 ops; op 5 is the *second* save's
        # fsync — its os.replace never runs, so slot 1 must survive intact.
        plan.arm(crash_op=5)
        with pytest.raises(InjectedCrash):
            _audit(
                deployment,
                view=view,
                workers=2,
                chunk_size=4,
                checkpoint=faulty,
                checkpoint_every=1,
            )

        survivor = CheckpointStore(path).load()
        assert survivor is not None
        assert view.genesis_start < survivor.next_jsn < view.genesis_start + len(
            view.entries
        )

        resumed = _audit(
            deployment,
            view=view,
            workers=2,
            chunk_size=4,
            checkpoint=CheckpointStore(path),
            resume=True,
        )
        assert resumed.canonical() == baseline.canonical()

    def test_torn_checkpoint_write_keeps_old_slot(self, populated, tmp_path):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        path = tmp_path / "audit.ckpt"
        plan = FaultPlan()
        faulty = CheckpointStore(path, file_factory=lambda raw: FaultyFile(raw, plan))
        # Crash inside the second save's *write* with a torn prefix: the tmp
        # file is garbage but the rename never happened.
        plan.arm(crash_op=3, partial_bytes=11)
        with pytest.raises(InjectedCrash):
            _audit(
                deployment,
                view=view,
                checkpoint=faulty,
                checkpoint_every=1,
            )
        first = CheckpointStore(path).load()
        assert first is not None  # slot holds the first, fully-durable save
        resumed = _audit(
            deployment, view=view, checkpoint=CheckpointStore(path), resume=True
        )
        assert resumed.canonical() == _audit(deployment, view=view).canonical()

    def test_corrupt_checkpoint_falls_back_to_full_audit(self, populated, tmp_path):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        path = tmp_path / "audit.ckpt"
        baseline = _audit(deployment, view=view, checkpoint=CheckpointStore(path))
        assert path.exists()
        flip_byte(path, 40)  # bit rot inside the envelope
        assert CheckpointStore(path).load() is None
        report = _audit(
            deployment, view=view, checkpoint=CheckpointStore(path), resume=True
        )
        assert report.canonical() == baseline.canonical()

    def test_resume_skips_already_verified_prefix(self, populated, tmp_path):
        """A checkpoint from a completed run fast-forwards the whole fold;
        tampering *below* the checkpoint is (by design) not re-checked,
        tampering above it still fails."""
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        path = tmp_path / "audit.ckpt"
        _audit(deployment, view=view, checkpoint=CheckpointStore(path))
        checkpoint = CheckpointStore(path).load()
        assert checkpoint is not None

        resumed = _audit(
            deployment, view=view, checkpoint=CheckpointStore(path), resume=True
        )
        assert resumed.passed
        # Counters carry over from the checkpoint rather than re-replaying.
        assert resumed.journals_replayed == checkpoint.journals_replayed

    def test_session_audit_resume_roundtrip(self, populated, tmp_path):
        from repro.api import LedgerSession

        deployment, _receipts = populated
        session = LedgerSession(deployment.ledger)
        path = tmp_path / "session.ckpt"
        first = session.audit(tsa_keys=deployment.tsa_keys, checkpoint=path)
        again = session.audit(
            tsa_keys=deployment.tsa_keys, checkpoint=path, resume=True
        )
        assert first.passed and again.passed
        assert again.canonical() == first.canonical()
