"""Domain-separated hashing primitives."""

import hashlib

import pytest

from repro.crypto.hashing import (
    DIGEST_SIZE,
    EMPTY_DIGEST,
    block_hash,
    chain_hash,
    clue_key_hash,
    hexdigest,
    journal_hash,
    leaf_hash,
    node_hash,
    receipt_hash,
    sha3_256,
    sha256,
)


def test_digest_sizes():
    for fn in (leaf_hash, journal_hash, block_hash, receipt_hash):
        assert len(fn(b"data")) == DIGEST_SIZE
    assert len(node_hash(EMPTY_DIGEST, EMPTY_DIGEST)) == DIGEST_SIZE


def test_sha256_matches_stdlib():
    assert sha256(b"abc") == hashlib.sha256(b"abc").digest()
    assert sha3_256(b"abc") == hashlib.sha3_256(b"abc").digest()


def test_domain_separation_between_contexts():
    data = b"same input"
    digests = {
        leaf_hash(data),
        journal_hash(data),
        block_hash(data),
        receipt_hash(data),
        sha256(data),
    }
    assert len(digests) == 5


def test_leaf_node_second_preimage_resistance_structure():
    # A leaf carrying the concatenation of two digests must not hash to the
    # interior node over those digests (the RFC 6962 attack).
    left, right = leaf_hash(b"l"), leaf_hash(b"r")
    assert leaf_hash(left + right) != node_hash(left, right)


def test_node_hash_is_order_sensitive():
    a, b = leaf_hash(b"a"), leaf_hash(b"b")
    assert node_hash(a, b) != node_hash(b, a)


def test_node_hash_rejects_bad_lengths():
    with pytest.raises(ValueError):
        node_hash(b"short", EMPTY_DIGEST)


def test_clue_key_hash_uses_sha3():
    assert clue_key_hash("DCI001") == hashlib.sha3_256(b"DCI001").digest()


def test_chain_hash_links_both_sides():
    a, b = leaf_hash(b"a"), leaf_hash(b"b")
    assert chain_hash(a, b) != chain_hash(b, a)


def test_hexdigest():
    assert hexdigest(EMPTY_DIGEST) == "00" * 32
