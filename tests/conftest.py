"""Shared fixtures: a populated ledger deployment with members and time notary."""

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core import ClientRequest, Ledger, LedgerConfig
from repro.crypto import KeyPair, Role
from repro.timeauth import SimClock, TimeLedger, TimeStampAuthority

# Hypothesis profiles: local runs keep the library defaults (100 examples);
# the CI crash-safety job exports HYPOTHESIS_PROFILE=ci for a deeper sweep
# (and pins --hypothesis-seed, so a red build is reproducible bit-for-bit).
hypothesis_settings.register_profile("ci", max_examples=200, deadline=None)
if os.environ.get("HYPOTHESIS_PROFILE"):
    hypothesis_settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

LEDGER_URI = "ledger://test"


class Deployment:
    """A ledger plus everything around it, for one test."""

    def __init__(self, fractal_height=3, block_size=4, finalize_interval=1.0):
        self.clock = SimClock()
        self.tsa = TimeStampAuthority("tsa-main", self.clock)
        self.tledger = TimeLedger(
            self.clock, self.tsa, finalize_interval=finalize_interval, admission_tolerance=1.0
        )
        self.ledger = Ledger(
            LedgerConfig(uri=LEDGER_URI, fractal_height=fractal_height, block_size=block_size),
            clock=self.clock,
        )
        self.ledger.attach_time_ledger(self.tledger)
        self.keys = {}
        for name, role in (
            ("alice", Role.USER),
            ("bob", Role.USER),
            ("dba", Role.DBA),
            ("regulator", Role.REGULATOR),
            ("auditor", Role.AUDITOR),
        ):
            keypair = KeyPair.generate(seed=f"fixture:{name}")
            self.keys[name] = keypair
            self.ledger.registry.register(name, role, keypair.public)

    @property
    def tsa_keys(self):
        return {self.tsa.tsa_id: self.tsa.public_key}

    def request(self, client, payload, clues=(), journal_type=None):
        kwargs = {}
        if journal_type is not None:
            kwargs["journal_type"] = journal_type
        request = ClientRequest.build(
            LEDGER_URI,
            client,
            payload,
            clues=tuple(clues),
            nonce=payload[:8],
            client_timestamp=self.clock.now(),
            **kwargs,
        )
        return request.signed_by(self.keys[client])

    def append(self, client, payload, clues=()):
        return self.ledger.append(self.request(client, payload, clues))

    def populate(self, count=20, anchor_every=5, clue="CLUE-A"):
        """Appends from alternating users; periodic time anchors."""
        receipts = []
        for i in range(count):
            client = "alice" if i % 2 == 0 else "bob"
            clues = (clue,) if i % 3 == 0 else ()
            receipts.append(self.append(client, b"payload-%04d" % i, clues))
            self.clock.advance(0.25)
            if anchor_every and i % anchor_every == anchor_every - 1:
                self.ledger.anchor_time()
        self.clock.advance(2.0)
        self.ledger.collect_time_evidence()
        self.ledger.commit_block()
        return receipts

    def lsp_key(self):
        return self.ledger._lsp_keypair

    def sign_approval(self, names, digest):
        from repro.crypto import MultiSignature

        ms = MultiSignature(digest=digest)
        for name in names:
            keypair = self.lsp_key() if name == "__lsp__" else self.keys[name]
            ms.add(name, keypair.sign(digest))
        return ms


@pytest.fixture()
def deployment():
    return Deployment()


@pytest.fixture()
def populated():
    deployment = Deployment()
    receipts = deployment.populate()
    return deployment, receipts
