"""Rebuild-from-truth: byte-identical reconstruction from bundles and raw
streams, typed refusal on tampered sources (DESIGN.md §17)."""

from pathlib import Path

import pytest

from repro.api import LedgerSession
from repro.core import Ledger, LedgerConfig
from repro.core.ledger import JOURNAL_FILE
from repro.crypto import KeyPair, Role
from repro.export.bundle import export_bundle
from repro.export.rebuild import (
    RebuildError,
    RebuildReport,
    rebuild_from_bundle,
    rebuild_from_stream,
)
from repro.storage.faults import flip_byte
from repro.timeauth import SimClock, TimeStampAuthority

URI = "ledger://rebuild-test"


def build_deployment(journals=18, shards=1, data_dir=None):
    clock = SimClock()
    tsa = TimeStampAuthority("rebuild-tsa", clock)
    kwargs = {}
    if data_dir is not None:
        kwargs = {"node_store": "paged", "data_dir": str(data_dir)}
    config = LedgerConfig(
        uri=URI, fractal_height=3, block_size=4, shards=shards, **kwargs
    )
    if shards > 1:
        from repro.shard import ShardedLedger

        ledger = ShardedLedger(config, clock=clock)
    else:
        ledger = Ledger(config, clock=clock)
    ledger.attach_tsa(tsa)
    user = KeyPair.generate(seed="rebuild-user")
    ledger.registry.register("rebuild-user", Role.USER, user.public)
    session = LedgerSession(ledger, client_id="rebuild-user", keypair=user)
    for index in range(journals):
        session.append(
            b"rebuild record %04d" % index, clues=(f"RB-{index % (3 * shards)}",)
        )
        clock.advance(0.25)
        if index % 6 == 5:
            ledger.anchor_time()
    ledger.anchor_time()
    ledger.commit_block()
    return ledger


# --------------------------------------------------------------- from bundle


def test_solo_rebuild_is_byte_identical():
    source = build_deployment()
    bundle = export_bundle(source)
    rebuilt, report = rebuild_from_bundle(bundle)

    assert report.ok, report.divergences
    assert report.source == "bundle"
    assert not report.divergences
    assert rebuilt.current_root() == source.current_root()
    assert dict(rebuilt.epoch_anchors().items()) == dict(
        source.epoch_anchors().items()
    )
    jsns = [0, 3, source.size - 1]
    for ours, theirs in zip(
        rebuilt.get_proofs(jsns, anchored=False),
        source.get_proofs(jsns, anchored=False),
    ):
        assert ours.to_bytes() == theirs.to_bytes()
    assert rebuilt.get_sth().root == source.get_sth().root
    for name in ("recover", "certificates", "root[0]", "anchors[0]", "sths[0]"):
        assert name in report.checks


def test_sharded_rebuild_reproduces_the_composite_root():
    source = build_deployment(journals=30, shards=3)
    bundle = export_bundle(source)
    rebuilt, report = rebuild_from_bundle(bundle)

    assert report.ok, report.divergences
    assert report.num_shards == 3
    assert rebuilt.composite_root() == source.composite_root()
    for ours, theirs in zip(rebuilt.shards, source.shards):
        assert ours.current_root() == theirs.current_root()
    assert "composite" in report.checks


def test_rebuild_cross_checks_the_live_instance():
    source = build_deployment()
    bundle = export_bundle(source)
    _rebuilt, report = rebuild_from_bundle(bundle, live=source)
    assert report.ok
    assert "live" in report.checks


def test_rebuild_accepts_pinned_heads_from_the_source():
    source = build_deployment()
    bundle = export_bundle(source)
    _rebuilt, report = rebuild_from_bundle(bundle, pinned_heads=[source.get_sth()])
    assert report.ok
    assert "pinned-heads" in report.checks


def test_alien_pinned_head_diverges():
    source = build_deployment()
    stranger = build_deployment(journals=7)
    bundle = export_bundle(source)
    _rebuilt, report = rebuild_from_bundle(bundle, pinned_heads=[stranger.get_sth()])
    assert not report.ok
    assert any(d.kind == "sth" for d in report.divergences)


def test_wrong_lsp_keypair_is_a_divergence_not_a_crash():
    source = build_deployment()
    bundle = export_bundle(source)
    _rebuilt, report = rebuild_from_bundle(
        bundle, lsp_keypair=KeyPair.generate(seed="not-the-lsp")
    )
    assert not report.ok
    assert any(d.kind == "lsp-key" for d in report.divergences)


def test_tampered_bundle_entry_never_rebuilds_clean():
    import dataclasses

    source = build_deployment()
    bundle = export_bundle(source)
    section = bundle.shards[0]
    entry = section.entries[2]
    entries = list(section.entries)
    entries[2] = dataclasses.replace(
        entry, data=entry.data[:-1] + bytes([entry.data[-1] ^ 0x20])
    )
    forged = dataclasses.replace(
        bundle, shards=(dataclasses.replace(section, entries=tuple(entries)),)
    )
    try:
        _rebuilt, report = rebuild_from_bundle(forged)
    except RebuildError:
        return  # typed refusal — acceptable
    assert not report.ok  # or it rebuilds but every root check diverges


# --------------------------------------------------------------- from stream


def test_stream_rebuild_matches_the_source(tmp_path):
    source = build_deployment(data_dir=tmp_path)
    root = source.current_root()
    source.close()

    rebuilt, report = rebuild_from_stream(tmp_path)
    try:
        assert report.ok
        assert report.source == "stream"
        assert rebuilt.current_root() == root
    finally:
        rebuilt.close(checkpoint=False)


def test_sharded_stream_rebuild_matches_the_source(tmp_path):
    source = build_deployment(journals=24, shards=2, data_dir=tmp_path)
    composite = source.composite_root()
    source.close()

    rebuilt, report = rebuild_from_stream(tmp_path)
    try:
        assert report.ok
        assert report.num_shards == 2
        assert rebuilt.composite_root() == composite
    finally:
        rebuilt.close(checkpoint=False)


def test_snapshot_reopened_source_exports_an_equivalent_bundle(tmp_path):
    """checkpoint → close → open → export must carry the same truth as the
    original process (the bundle is backend- and lifecycle-agnostic)."""
    source = build_deployment(data_dir=tmp_path)
    root = source.current_root()
    source.checkpoint()
    source.close()

    from repro.core import MemberRegistry

    registry = MemberRegistry()
    registry.register(
        "rebuild-user", Role.USER, KeyPair.generate(seed="rebuild-user").public
    )
    reopened = Ledger.open(
        str(tmp_path), registry, KeyPair.generate(seed=f"lsp:{URI}")
    )
    try:
        assert reopened.current_root() == root
        bundle = export_bundle(reopened)
        rebuilt, report = rebuild_from_bundle(bundle)
        assert report.ok, report.divergences
        assert rebuilt.current_root() == root
    finally:
        reopened.close(checkpoint=False)


def test_tampered_interior_stream_byte_refuses_to_rebuild(tmp_path):
    source = build_deployment(data_dir=tmp_path)
    source.close()

    stream_file = tmp_path / JOURNAL_FILE
    flip_byte(stream_file, stream_file.stat().st_size // 2)
    with pytest.raises(RebuildError):
        rebuild_from_stream(tmp_path)


def test_missing_data_dir_is_typed(tmp_path):
    with pytest.raises(RebuildError):
        rebuild_from_stream(tmp_path / "nowhere")


# -------------------------------------------------------------- the report


def test_report_round_trips_through_bytes():
    source = build_deployment()
    bundle = export_bundle(source)
    _rebuilt, report = rebuild_from_bundle(bundle)
    assert RebuildReport.from_bytes(report.to_bytes()) == report
    assert report.verify()


def test_report_with_divergences_round_trips():
    source = build_deployment()
    bundle = export_bundle(source)
    _rebuilt, report = rebuild_from_bundle(
        bundle, lsp_keypair=KeyPair.generate(seed="not-the-lsp")
    )
    assert report.divergences
    assert RebuildReport.from_bytes(report.to_bytes()) == report
    assert report.verify()
    assert not bool(report)


def test_report_is_an_artifact():
    from repro.artifacts import is_artifact

    source = build_deployment()
    _rebuilt, report = rebuild_from_bundle(export_bundle(source))
    assert is_artifact(report)
