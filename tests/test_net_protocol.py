"""Wire-protocol fuzz: framing must round-trip or raise ProtocolError.

The server's read loop trusts :mod:`repro.net.protocol` to be total over
arbitrary peer bytes: every input either yields well-formed messages or
raises a typed :class:`ProtocolError` — never a hang, never a stray
exception type that would crash the connection handler's error mapping.
Hypothesis drives both directions: structured messages through
encode/decode (under every stream chunking), and adversarial byte soup
(truncated, oversized, garbage, zero-length) through the decoder.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding import encode
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    decode_message,
    encode_frame,
    request,
    response_error,
    response_ok,
)

# Values the canonical encoding supports (tuples come back as lists, NaN
# breaks equality — both excluded so round-trip can assert ==).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.binary(max_size=64),
    st.text(max_size=32),
    st.floats(allow_nan=False),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
_messages = st.one_of(
    st.builds(
        lambda rid, op, fields: request(rid, op, **fields),
        st.integers(min_value=0, max_value=2**62),
        st.text(min_size=1, max_size=16),
        st.dictionaries(
            st.text(min_size=1, max_size=8).filter(lambda k: k not in ("id", "op", "ok")),
            _values,
            max_size=4,
        ),
    ),
    st.builds(
        response_ok,
        st.integers(min_value=0, max_value=2**62),
        st.dictionaries(st.text(max_size=8), _values, max_size=4),
    ),
    st.builds(
        response_error,
        st.integers(min_value=0, max_value=2**62),
        st.text(max_size=16),
        st.text(max_size=32),
    ),
)


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(message=_messages)
    def test_encode_decode_identity(self, message):
        frame = encode_frame(message)
        (length,) = struct.unpack_from(">I", frame)
        assert length == len(frame) - 4
        assert decode_message(frame[4:]) == message

    @settings(max_examples=60, deadline=None)
    @given(
        messages=st.lists(_messages, min_size=1, max_size=5),
        data=st.data(),
    )
    def test_decoder_is_chunking_invariant(self, messages, data):
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        out = []
        position = 0
        while position < len(stream):
            step = data.draw(st.integers(min_value=1, max_value=len(stream) - position))
            out.extend(decoder.feed(stream[position : position + step]))
            position += step
        assert out == messages
        assert decoder.pending_bytes == 0


class TestMalformedInput:
    @settings(max_examples=120, deadline=None)
    @given(garbage=st.binary(min_size=4, max_size=256))
    def test_arbitrary_bytes_never_escape_protocolerror(self, garbage):
        """Any byte soup either decodes to messages or raises ProtocolError."""
        decoder = FrameDecoder(max_bytes=1024)
        try:
            decoder.feed(garbage)
        except ProtocolError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(message=_messages)
    def test_truncated_payload_is_held_not_decoded(self, message):
        """A partial frame yields nothing and stays buffered — no guessing."""
        frame = encode_frame(message)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [message]

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(struct.pack(">I", 0))

    def test_oversized_length_prefix_rejected_before_payload(self):
        """The hostile length alone must trip the cap — no allocation wait."""
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_oversized_message_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1, "ok": True, "result": {"blob": b"x" * 2048}},
                         max_bytes=1024)

    @pytest.mark.parametrize(
        "payload_value",
        [
            b"not a dict at all",
            [1, 2, 3],
            {"op": "ping"},                      # no id
            {"id": True, "op": "ping"},          # bool id
            {"id": 1},                           # neither op nor ok
            {"id": 1, "op": "ping", "ok": True}, # both op and ok
            {"id": 1, "op": 7},                  # non-str op
            {"id": 1, "ok": 1},                  # non-bool ok
        ],
    )
    def test_shape_violations_are_typed(self, payload_value):
        with pytest.raises(ProtocolError):
            decode_message(encode(payload_value))

    def test_undecodable_payload_is_typed(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\xff\xfe\xfd")

    def test_decoder_poisons_after_error(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(struct.pack(">I", 0))
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame({"id": 1, "op": "ping"}))
