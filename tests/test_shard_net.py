"""Remote verification over a sharded deployment (DESIGN.md §15).

The load-bearing contract: each of the N listeners speaks the ordinary
single-ledger protocol, so the *existing* RemoteLedgerClient appends to a
shard and verifies its receipts, proofs, and anchors unchanged — and the
``shard_info`` op lets any client fold its shard's verified live root into
the deployment's one composite root.
"""

from __future__ import annotations

import pytest

from repro import ClientRequest, KeyPair, Ledger, LedgerConfig, Role, SimClock
from repro.core.errors import VerificationFailure
from repro.merkle.proofs import MembershipProof
from repro.net import RemoteLedgerClient, ServerThread
from repro.service import ServiceConfig
from repro.shard import ShardedLedger, ShardedServerThread, shard_of_key

URI = "ledger://shard-net-test"
CLIENTS = ("alice", "bob", "carol", "dan")


def make_sharded(shards: int = 3) -> tuple[ShardedLedger, dict[str, KeyPair]]:
    ledger = ShardedLedger(
        LedgerConfig(uri=URI, fractal_height=4, block_size=4, shards=shards),
        clock=SimClock(),
    )
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"shard-net:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    return ledger, keys


def make_request(keys, client: str, tag: str, clues=()) -> ClientRequest:
    return ClientRequest.build(
        URI,
        client,
        f"{client}:{tag}".encode(),
        clues=clues,
        nonce=tag.encode(),
        client_timestamp=1.0,
    ).signed_by(keys[client])


def client_for(served: ShardedServerThread, shard_index: int, keys, member=None):
    host, port = served.addresses[shard_index]
    return RemoteLedgerClient(
        host,
        port,
        member_id=member,
        keypair=keys[member] if member else None,
        expected_lsp_key=served.ledger.registry.public_key("__lsp__"),
    )


class TestShardedServerThread:
    def test_one_listener_per_shard(self):
        ledger, _keys = make_sharded(3)
        with ShardedServerThread(ledger) as served:
            assert served.num_shards == 3
            assert len(served.addresses) == 3
            assert len(set(served.addresses)) == 3  # distinct ports
            assert served.uris() == [
                f"ledger://{host}:{port}" for host, port in served.addresses
            ]
            key = "some-routing-clue"
            assert (
                served.address_for(key)
                == served.addresses[shard_of_key(key, 3)]
            )

    def test_existing_client_verifies_per_shard_unchanged(self):
        """Receipts and proofs from a shard listener verify through the
        stock RemoteLedgerClient exactly as against an unsharded server."""
        ledger, keys = make_sharded(3)
        with ShardedServerThread(
            ledger, service_config=ServiceConfig(max_batch=4)
        ) as served:
            clue = "wire-clue"
            shard_index = ledger.shard_of_key(clue)
            client = client_for(served, shard_index, keys)
            try:
                receipts = [
                    client.append(request=make_request(keys, "alice", f"r{i}", (clue,)))
                    for i in range(6)
                ]
                for receipt in receipts:
                    assert receipt.verify(client.lsp_public_key)
                client.sync_anchors()  # local verification needs anchors
                jsns = [receipt.jsn for receipt in receipts]
                for jsn in jsns:
                    journal = client.get_journal(jsn)
                    assert client.verify_journal(journal)
            finally:
                client.close()
            # The appends really landed on their routing shard.
            assert ledger.list_tx(clue) != []
            assert all(
                gsn % 3 == shard_index for gsn in ledger.list_tx(clue)
            )

    def test_composite_root_agrees_across_all_listeners(self):
        ledger, keys = make_sharded(3)
        for i in range(12):
            ledger.append(make_request(keys, "bob", f"pre{i}", (f"clue-{i}",)))
        with ShardedServerThread(ledger) as served:
            infos = []
            for shard_index in range(3):
                client = client_for(served, shard_index, keys)
                try:
                    info = client.shard_info()
                finally:
                    client.close()
                assert info["shard_index"] == shard_index
                assert info["num_shards"] == 3
                link = info["link"]
                assert isinstance(link, MembershipProof)
                assert link.verify(info["shard_root"], info["composite_root"])
                infos.append(info)
            # One deployment, one composite commitment — no equivocation
            # between listeners over a quiesced ledger.
            assert len({info["composite_root"] for info in infos}) == 1
            assert infos[0]["composite_root"] == ledger.composite_root()
            assert [info["shard_root"] for info in infos] == ledger.shard_roots()

    def test_verify_shard_link_binds_to_clients_verified_root(self):
        ledger, keys = make_sharded(2)
        with ShardedServerThread(ledger) as served:
            clue = "linked-clue"
            shard_index = ledger.shard_of_key(clue)
            client = client_for(served, shard_index, keys)
            try:
                for i in range(5):
                    client.append(request=make_request(keys, "carol", f"l{i}", (clue,)))
                client.sync_anchors()
                info = client.verify_shard_link()
                assert info["shard_root"] == client.state.live_root
                assert info["composite_root"] == ledger.composite_root()
                # Cross-check: a client on the *other* shard folds its own
                # verified root into the same composite commitment.
                other = client_for(served, 1 - shard_index, keys)
                try:
                    other.sync_anchors()
                    other_info = other.verify_shard_link()
                finally:
                    other.close()
                assert other_info["composite_root"] == info["composite_root"]
                assert other_info["shard_root"] != info["shard_root"]
            finally:
                client.close()

    def test_verify_shard_link_rejects_forged_link(self, monkeypatch):
        ledger, keys = make_sharded(2)
        with ShardedServerThread(ledger) as served:
            client = client_for(served, 0, keys)
            try:
                client.append(request=make_request(keys, "dan", "x", ()))
                client.sync_anchors()
                genuine = client.shard_info()
                forged = dict(genuine)
                forged["shard_index"] = 1  # link no longer matches its slot
                monkeypatch.setattr(client, "shard_info", lambda: forged)
                with pytest.raises(VerificationFailure):
                    client.verify_shard_link()
            finally:
                client.close()

    def test_drain_close_settles_inflight(self):
        ledger, keys = make_sharded(2)
        served = ShardedServerThread(ledger)
        client = client_for(served, 0, keys)
        try:
            client.append(request=make_request(keys, "alice", "settle", ()))
        finally:
            client.close()
        served.close()  # drain=True: no pending work may be dropped
        assert served.service.closed


class TestUnshardedShardInfo:
    def test_plain_server_answers_degenerate_shard_map(self):
        """An unsharded server is a 1-shard deployment: shard_info answers
        with a 1-leaf map whose composite root IS the live root, so clients
        probe any listener without knowing the topology in advance."""
        ledger = Ledger(
            LedgerConfig(uri=URI, fractal_height=4, block_size=4), clock=SimClock()
        )
        keypair = KeyPair.generate(seed="shard-net:alice")
        ledger.registry.register("alice", Role.USER, keypair.public)
        keys = {"alice": keypair}
        with ServerThread(ledger) as served:
            host, port = served.address
            client = RemoteLedgerClient(
                host,
                port,
                expected_lsp_key=ledger.registry.public_key("__lsp__"),
            )
            try:
                client.append(request=make_request(keys, "alice", "solo", ()))
                client.sync_anchors()
                info = client.verify_shard_link()
                assert info["num_shards"] == 1
                assert info["shard_index"] == 0
                assert info["composite_root"] == info["shard_root"]
                assert info["shard_root"] == client.state.live_root
            finally:
                client.close()
