"""Wire round-trips for every proof type (client-side verification inputs)."""

from repro.crypto.hashing import leaf_hash
from repro.merkle.cmtree import ClueProof, CMTree
from repro.merkle.consistency import ConsistencyProof, prove_consistency
from repro.merkle.fam import FamAccumulator, FamProof
from repro.merkle.proofs import BatchProof, MembershipProof
from repro.merkle.shrubs import ShrubsAccumulator


def test_membership_proof_round_trip():
    acc = ShrubsAccumulator()
    digests = [leaf_hash(b"%d" % i) for i in range(23)]
    acc.extend(digests)
    proof = acc.prove(9)
    restored = MembershipProof.from_bytes(proof.to_bytes())
    assert restored == proof
    assert restored.verify(digests[9], acc.root())


def test_batch_proof_round_trip():
    acc = ShrubsAccumulator()
    digests = [leaf_hash(b"%d" % i) for i in range(31)]
    acc.extend(digests)
    proof = acc.prove_batch([3, 4, 17])
    restored = BatchProof.from_bytes(proof.to_bytes())
    assert restored == proof
    assert ShrubsAccumulator.verify_batch(
        {i: digests[i] for i in (3, 4, 17)}, restored, acc.root()
    )


def test_fam_proof_round_trip():
    fam = FamAccumulator(3)
    digests = [leaf_hash(b"j%d" % i) for i in range(40)]
    for digest in digests:
        fam.append(digest)
    proof = fam.get_proof(5, anchored=False)
    restored = FamProof.from_bytes(proof.to_bytes())
    assert restored == proof
    assert FamAccumulator.verify_full(digests[5], restored, fam.current_root())


def test_clue_proof_round_trip():
    tree = CMTree()
    digests = [leaf_hash(b"e%d" % i) for i in range(9)]
    for digest in digests:
        tree.add("DCI001", digest)
    proof = tree.prove_clue("DCI001", 2, 7)
    restored = ClueProof.from_bytes(proof.to_bytes())
    assert restored == proof
    leaf_map = {v: digests[v] for v in range(2, 7)}
    assert restored.verify(leaf_map, tree.root)


def test_consistency_proof_round_trip():
    acc = ShrubsAccumulator()
    for i in range(50):
        acc.append_leaf(leaf_hash(b"%d" % i))
    proof = prove_consistency(acc, 13, 50)
    restored = ConsistencyProof.from_bytes(proof.to_bytes())
    assert restored == proof
    assert restored.verify(acc.root(13), acc.root(50))


def test_mutated_wire_bytes_fail_safely():
    """Flipping any byte of a serialized proof must never verify."""
    acc = ShrubsAccumulator()
    digests = [leaf_hash(b"%d" % i) for i in range(16)]
    acc.extend(digests)
    proof = acc.prove(7)
    wire = bytearray(proof.to_bytes())
    for position in range(0, len(wire), max(len(wire) // 24, 1)):
        mutated = bytearray(wire)
        mutated[position] ^= 0x01
        try:
            restored = MembershipProof.from_bytes(bytes(mutated))
        except Exception:
            continue  # malformed wire rejected at decode: fine
        assert not restored.verify(digests[7], acc.root()) or restored == proof
