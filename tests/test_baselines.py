"""Comparator simulators: QLDB, Fabric, ProvenDB — behaviour and shapes."""

import pytest

from repro.baselines import FabricNetwork, ProvenDBSimulator, QLDBSimulator
from repro.timeauth import SimClock


class TestQLDB:
    def test_insert_retrieve_round_trip(self):
        qldb = QLDBSimulator()
        qldb.insert("docs", "k1", b"hello")
        result = qldb.retrieve("docs", "k1")
        assert result.value.data == b"hello"

    def test_versions_accumulate(self):
        qldb = QLDBSimulator()
        for i in range(5):
            qldb.insert("docs", "k", b"v%d" % i)
        assert qldb.retrieve("docs", "k").value.version == 4
        assert qldb.retrieve("docs", "k", version=2).value.data == b"v2"

    def test_get_revision_produces_valid_proof(self):
        qldb = QLDBSimulator()
        for i in range(20):
            qldb.insert("docs", "k%d" % (i % 4), b"data-%d" % i)
        result = qldb.get_revision("docs", "k1", 0)
        revision, proof = result.value
        assert proof.verify(
            __import__("repro.crypto.hashing", fromlist=["leaf_hash"]).leaf_hash(
                qldb._revision_bytes[revision.sequence]
            ),
            qldb.ledger_digest(),
        )

    def test_verify_latency_dominated_by_service(self):
        qldb = QLDBSimulator()
        qldb.insert("docs", "k", b"x" * 32768)
        verify = qldb.get_revision("docs", "k", 0)
        insert = qldb.insert("docs", "k2", b"x" * 32768)
        # Table II shape: verify >> insert (1.56 s vs 65 ms).
        assert verify.latency_ms > 10 * insert.latency_ms
        assert 1000 < verify.latency_ms < 3000

    def test_lineage_scales_linearly(self):
        qldb = QLDBSimulator()
        for i in range(100):
            qldb.insert("docs", "lineage-key", b"v%d" % i)
        for i in range(5):
            qldb.insert("docs", "short-key", b"v%d" % i)
        long_result = qldb.verify_lineage("docs", "lineage-key")
        short_result = qldb.verify_lineage("docs", "short-key")
        ratio = long_result.latency_ms / short_result.latency_ms
        assert 15 < ratio < 25  # ~100/5 = 20x, as in Table II (155.9/7.79)

    def test_missing_keys_raise(self):
        qldb = QLDBSimulator()
        with pytest.raises(KeyError):
            qldb.retrieve("docs", "ghost")
        with pytest.raises(KeyError):
            qldb.get_revision("docs", "ghost", 0)
        with pytest.raises(KeyError):
            qldb.verify_lineage("docs", "ghost")


class TestFabric:
    def test_invoke_commits_state(self):
        fabric = FabricNetwork()
        fabric.invoke("asset", b"v1")
        fabric.invoke("asset", b"v2")
        assert fabric.get_state("asset").value.value == b"v2"
        assert fabric.tx_count == 2

    def test_commit_latency_dominated_by_ordering(self):
        fabric = FabricNetwork()
        result = fabric.invoke("a", b"v")
        assert result.latency_ms > 1000  # the ~1.2 s batching cost
        assert result.breakdown["consensus_batch"] > 0.8 * result.latency_ms

    def test_endorsements_are_real_signatures(self):
        fabric = FabricNetwork(endorsers=3)
        entry = fabric.invoke("a", b"v").value
        assert len(entry.endorsements) == 3
        keys = {pid: kp.public for pid, kp in fabric._endorsers}
        for endorsement in entry.endorsements:
            assert keys[endorsement.peer_id].verify(endorsement.digest, endorsement.signature)

    def test_read_latency_flat_in_history_length(self):
        fabric = FabricNetwork()
        for i in range(100):
            fabric.invoke("long", b"v%d" % i)
        fabric.invoke("short", b"v")
        long_read = fabric.verify_history("long")
        short_read = fabric.verify_history("short")
        # "nearly a single random I/O for the entire clue": far sub-linear.
        assert long_read.latency_ms < short_read.latency_ms * 2

    def test_throughput_magnitude_and_decline(self):
        fabric = FabricNetwork()
        small = fabric.estimate_write_tps(2**5)
        large = fabric.estimate_write_tps(2**30)
        assert 2000 < small < 3000  # paper: 2386
        assert 1700 < large < small  # paper: 1978
        assert (small - large) / small < 0.25

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            FabricNetwork().get_state("ghost")


class TestProvenDB:
    def test_versions_and_existence_verification(self):
        clock = SimClock()
        prov = ProvenDBSimulator(clock)
        for i in range(4):
            prov.insert("doc", b"v%d" % i)
        assert prov.latest("doc").version == 3
        assert len(prov.history("doc")) == 4
        for version in range(4):
            assert prov.verify_version("doc", version)
        assert not prov.verify_version("doc", 9)
        assert not prov.verify_version("ghost", 0)

    def test_honest_pegging_produces_evidence(self):
        clock = SimClock()
        prov = ProvenDBSimulator(clock, peg_interval=60.0)
        prov.insert("doc", b"data")
        clock.advance(60.0 + 600.0)  # peg due + notary block mined
        prov.tick()
        bound = prov.time_bound_for_root(prov._accumulator.root())
        assert bound is not None
        assert bound.lower == float("-inf")  # one-way: no lower bound

    def test_malicious_delay_amplifies_anchor_gap(self):
        def gap_with_delay(delay):
            clock = SimClock()
            prov = ProvenDBSimulator(clock, peg_interval=60.0, malicious_delay=delay)
            record = prov.insert("doc", b"data")
            clock.advance(60.0 + delay + 1200.0)
            prov.tick()
            return prov.effective_anchor_delay(record)

        honest = gap_with_delay(0.0)
        delayed = gap_with_delay(5000.0)
        assert honest is not None and delayed is not None
        assert delayed > honest + 4000.0  # amplification grows with the delay
