"""Ledger recovery: rebuilding every derived structure from the journal stream."""

import pytest

from repro.core import (
    ClientRequest,
    JournalOccultedError,
    Ledger,
    LedgerConfig,
    OccultMode,
    dasein_audit,
)
from repro.core.errors import LedgerError, RecoveryError
from repro.core.ledger import LSP_MEMBER_ID
from repro.core.members import MemberRegistry
from repro.crypto import KeyPair, MultiSignature, Role
from repro.storage import FileStream, MemoryStream
from repro.timeauth import SimClock, TimeLedger, TimeStampAuthority

URI = "ledger://recovery"


def build_original(journal_stream, clock, tledger, with_occult=True):
    registry = MemberRegistry()
    lsp = KeyPair.generate(seed="recovery-lsp")
    config = LedgerConfig(uri=URI, fractal_height=3, block_size=4)
    ledger = Ledger(
        config, clock=clock, registry=registry, lsp_keypair=lsp, journal_stream=journal_stream
    )
    ledger.attach_time_ledger(tledger)
    user = KeyPair.generate(seed="recovery-user")
    dba = KeyPair.generate(seed="recovery-dba")
    regulator = KeyPair.generate(seed="recovery-reg")
    ledger.registry.register("user", Role.USER, user.public)
    ledger.registry.register("dba", Role.DBA, dba.public)
    ledger.registry.register("reg", Role.REGULATOR, regulator.public)
    for i in range(14):
        request = ClientRequest.build(
            URI, "user", b"record-%03d" % i,
            clues=("RCLUE",) if i % 3 == 0 else (),
            nonce=bytes([i]), client_timestamp=clock.now(),
        ).signed_by(user)
        ledger.append(request)
        clock.advance(0.2)
        if i % 5 == 4:
            ledger.anchor_time()
    clock.advance(2.0)
    ledger.collect_time_evidence()
    if with_occult:
        record = ledger.prepare_occult(4, OccultMode.SYNC, reason="test")
        approvals = MultiSignature(digest=record.approval_digest())
        approvals.add("dba", dba.sign(record.approval_digest()))
        approvals.add("reg", regulator.sign(record.approval_digest()))
        ledger.execute_occult(record, approvals)
    return ledger, registry, lsp, user


@pytest.fixture()
def world():
    clock = SimClock()
    tsa = TimeStampAuthority("rec-tsa", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    return clock, tsa, tledger


class TestRecovery:
    def test_recovered_state_matches_original(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(
            original.config, stream, registry, lsp, clock=clock
        )
        assert recovered.size == original.size
        assert recovered.current_root() == original.current_root()
        assert recovered.state_root() == original.state_root()
        assert recovered.time_journals == original.time_journals
        assert recovered.list_tx("RCLUE") == original.list_tx("RCLUE")
        assert recovered.is_occulted(4)

    def test_recovered_journals_verify(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(original.config, stream, registry, lsp, clock=clock)
        for jsn in range(recovered.size):
            if recovered.is_occulted(jsn):
                with pytest.raises(JournalOccultedError):
                    recovered.get_journal(jsn)
                continue
            journal = recovered.get_journal(jsn)
            assert recovered.verify_journal(journal), jsn

    def test_recovered_ledger_audits(self, world):
        clock, tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(original.config, stream, registry, lsp, clock=clock)
        recovered.attach_time_ledger(tledger)
        assert recovered.refresh_time_evidence() == len(recovered.time_journals)
        # Occult approvals were off-stream: re-attach from operational records
        # (a real deployment persists them; here the original still has them).
        recovered._occult_records = original._occult_records
        report = dasein_audit(
            recovered.export_view(), tsa_keys={"rec-tsa": tsa.public_key}
        )
        assert report.passed, report.failures()

    def test_recovered_ledger_accepts_new_appends(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(original.config, stream, registry, lsp, clock=clock)
        request = ClientRequest.build(
            URI, "user", b"post-recovery", nonce=b"pr", client_timestamp=clock.now()
        ).signed_by(user)
        receipt = recovered.append(request)
        journal = recovered.get_journal(receipt.jsn)
        assert recovered.verify_journal(journal)

    def test_recovery_from_file_stream(self, world, tmp_path):
        """Full durability loop: build over a file, reopen, recover."""
        clock, _tsa, tledger = world
        path = tmp_path / "journal.stream"
        stream = FileStream(path)
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        expected_root = original.current_root()
        stream.close()
        with FileStream(path) as reopened:
            # PKI state lives outside the stream: rebuild the member set.
            registry2 = MemberRegistry()
            for member in ("user", "dba", "reg"):
                cert = registry.certificate(member)
                registry2.register(member, cert.role, cert.public_key)
            recovered = Ledger.recover(original.config, reopened, registry2, lsp, clock=clock)
            assert recovered.current_root() == expected_root

    def test_fresh_receipt_issued(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(original.config, stream, registry, lsp, clock=clock)
        receipt = recovered.latest_receipt
        assert receipt is not None
        assert receipt.ledger_root == recovered.current_root()
        assert receipt.verify(lsp.public)

    def test_empty_stream_rejected(self, world):
        clock, _tsa, _tledger = world
        with pytest.raises(LedgerError, match="empty"):
            Ledger.recover(
                LedgerConfig(uri=URI), MemoryStream(), MemberRegistry(),
                KeyPair.generate(seed="x"), clock=clock,
            )

    def test_empty_stream_raises_recovery_error(self, world):
        clock, _tsa, _tledger = world
        with pytest.raises(RecoveryError):
            Ledger.recover(
                LedgerConfig(uri=URI), MemoryStream(), MemberRegistry(),
                KeyPair.generate(seed="x"), clock=clock,
            )

    def test_purged_stream_rejected(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, user = build_original(stream, clock, tledger, with_occult=False)
        original.commit_block()
        boundary = original.blocks[0].end_jsn
        pseudo, record = original.prepare_purge(boundary)
        approvals = MultiSignature(digest=record.approval_digest())
        keys = {
            "user": user,
            "dba": KeyPair.generate(seed="recovery-dba"),  # deterministic fixture key
            LSP_MEMBER_ID: lsp,
        }
        for member in original.purge_required_signers(boundary):
            approvals.add(member, keys[member].sign(record.approval_digest()))
        original.execute_purge(pseudo, record, approvals)
        with pytest.raises(LedgerError, match="purged"):
            Ledger.recover(original.config, stream, MemberRegistry(), lsp, clock=clock)


class TestFileStreamBatchMutationRecovery:
    """Recovery after ``append_batch`` interleaved with physical erasures
    (occult SYNC/ASYNC, purge) on a durable ``FileStream`` — the group-commit
    write path and the in-place erase path exercising one on-disk file."""

    URI = "ledger://batch-recovery"

    def _build(self, path, clock, with_occults=True):
        registry = MemberRegistry()
        lsp = KeyPair.generate(seed="batchrec-lsp")
        keys = {
            "user": KeyPair.generate(seed="batchrec-user"),
            "dba": KeyPair.generate(seed="batchrec-dba"),
            "reg": KeyPair.generate(seed="batchrec-reg"),
        }
        config = LedgerConfig(uri=self.URI, fractal_height=4, block_size=4)
        stream = FileStream(path, durable=True)
        ledger = Ledger(
            config, clock=clock, registry=registry,
            lsp_keypair=lsp, journal_stream=stream,
        )
        ledger.registry.register("user", Role.USER, keys["user"].public)
        ledger.registry.register("dba", Role.DBA, keys["dba"].public)
        ledger.registry.register("reg", Role.REGULATOR, keys["reg"].public)

        def batch(start, count):
            return [
                ClientRequest.build(
                    self.URI, "user", b"batch-%03d" % i,
                    clues=("BCLUE",) if i % 2 == 0 else (),
                    nonce=i.to_bytes(4, "big"), client_timestamp=clock.now(),
                ).signed_by(keys["user"])
                for i in range(start, start + count)
            ]

        ledger.append_batch(batch(0, 7))
        if with_occults:
            # One synchronous erase and one deferred to reorganize(): both
            # rewrite record headers in place between the two batch writes.
            for target, mode in ((2, OccultMode.SYNC), (5, OccultMode.ASYNC)):
                record = ledger.prepare_occult(target, mode, reason="erasure-mix")
                approvals = MultiSignature(digest=record.approval_digest())
                approvals.add("dba", keys["dba"].sign(record.approval_digest()))
                approvals.add("reg", keys["reg"].sign(record.approval_digest()))
                ledger.execute_occult(record, approvals)
            assert ledger.pending_erasures == 1
            ledger.reorganize()
        ledger.append_batch(batch(100, 6))
        return ledger, stream, registry, lsp, keys

    @staticmethod
    def _reregister(registry):
        fresh = MemberRegistry()
        for member in ("user", "dba", "reg"):
            cert = registry.certificate(member)
            fresh.register(member, cert.role, cert.public_key)
        return fresh

    def test_batch_and_occult_interleaving_recovers(self, tmp_path):
        clock = SimClock()
        path = tmp_path / "batch.stream"
        ledger, stream, registry, lsp, _keys = self._build(path, clock)
        expected = (
            ledger.size,
            ledger.current_root(),
            ledger.state_root(),
            ledger.list_tx("BCLUE"),
        )
        stream.close()
        with FileStream(path) as reopened:
            assert reopened.open_report.clean
            recovered = Ledger.recover(
                ledger.config, reopened, self._reregister(registry), lsp, clock=clock
            )
            assert (
                recovered.size,
                recovered.current_root(),
                recovered.state_root(),
                recovered.list_tx("BCLUE"),
            ) == expected
            for jsn in (2, 5):  # the two occult targets
                assert recovered.is_occulted(jsn)
                with pytest.raises(JournalOccultedError):
                    recovered.get_journal(jsn)
            for jsn in range(recovered.size):
                if recovered.is_occulted(jsn):
                    continue
                assert recovered.verify_journal(recovered.get_journal(jsn)), jsn

    def test_recovered_batch_ledger_accepts_new_batches(self, tmp_path):
        clock = SimClock()
        path = tmp_path / "batch.stream"
        ledger, stream, registry, lsp, keys = self._build(path, clock)
        stream.close()
        with FileStream(path) as reopened:
            recovered = Ledger.recover(
                ledger.config, reopened, self._reregister(registry), lsp, clock=clock
            )
            follow_up = [
                ClientRequest.build(
                    self.URI, "user", b"post-recovery-%d" % i,
                    nonce=(1000 + i).to_bytes(4, "big"),
                    client_timestamp=clock.now(),
                ).signed_by(keys["user"])
                for i in range(3)
            ]
            receipts = recovered.append_batch(follow_up)
            for receipt in receipts:
                journal = recovered.get_journal(receipt.jsn)
                assert recovered.verify_journal(journal)

    def test_purged_file_stream_raises_recovery_error(self, tmp_path):
        clock = SimClock()
        path = tmp_path / "purged.stream"
        ledger, stream, registry, lsp, keys = self._build(
            path, clock, with_occults=False
        )
        pseudo, record = ledger.prepare_purge(4)
        approvals = MultiSignature(digest=record.approval_digest())
        signer_keys = {"user": keys["user"], "dba": keys["dba"], LSP_MEMBER_ID: lsp}
        for member in ledger.purge_required_signers(4):
            approvals.add(member, signer_keys[member].sign(record.approval_digest()))
        ledger.execute_purge(pseudo, record, approvals)
        stream.close()
        with FileStream(path) as reopened:
            with pytest.raises(RecoveryError, match="purged"):
                Ledger.recover(
                    ledger.config, reopened, self._reregister(registry), lsp,
                    clock=clock,
                )
