"""Ledger recovery: rebuilding every derived structure from the journal stream."""

import pytest

from repro.core import (
    ClientRequest,
    JournalOccultedError,
    Ledger,
    LedgerConfig,
    OccultMode,
    dasein_audit,
)
from repro.core.errors import LedgerError
from repro.core.ledger import LSP_MEMBER_ID
from repro.core.members import MemberRegistry
from repro.crypto import KeyPair, MultiSignature, Role
from repro.storage import FileStream, MemoryStream
from repro.timeauth import SimClock, TimeLedger, TimeStampAuthority

URI = "ledger://recovery"


def build_original(journal_stream, clock, tledger, with_occult=True):
    registry = MemberRegistry()
    lsp = KeyPair.generate(seed="recovery-lsp")
    config = LedgerConfig(uri=URI, fractal_height=3, block_size=4)
    ledger = Ledger(config, clock=clock, registry=registry, lsp_keypair=lsp, journal_stream=journal_stream)
    ledger.attach_time_ledger(tledger)
    user = KeyPair.generate(seed="recovery-user")
    dba = KeyPair.generate(seed="recovery-dba")
    regulator = KeyPair.generate(seed="recovery-reg")
    ledger.registry.register("user", Role.USER, user.public)
    ledger.registry.register("dba", Role.DBA, dba.public)
    ledger.registry.register("reg", Role.REGULATOR, regulator.public)
    for i in range(14):
        request = ClientRequest.build(
            URI, "user", b"record-%03d" % i,
            clues=("RCLUE",) if i % 3 == 0 else (),
            nonce=bytes([i]), client_timestamp=clock.now(),
        ).signed_by(user)
        ledger.append(request)
        clock.advance(0.2)
        if i % 5 == 4:
            ledger.anchor_time()
    clock.advance(2.0)
    ledger.collect_time_evidence()
    if with_occult:
        record = ledger.prepare_occult(4, OccultMode.SYNC, reason="test")
        approvals = MultiSignature(digest=record.approval_digest())
        approvals.add("dba", dba.sign(record.approval_digest()))
        approvals.add("reg", regulator.sign(record.approval_digest()))
        ledger.execute_occult(record, approvals)
    return ledger, registry, lsp, user


@pytest.fixture()
def world():
    clock = SimClock()
    tsa = TimeStampAuthority("rec-tsa", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    return clock, tsa, tledger


class TestRecovery:
    def test_recovered_state_matches_original(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(
            original.config, stream, registry, lsp, clock=clock
        )
        assert recovered.size == original.size
        assert recovered.current_root() == original.current_root()
        assert recovered.state_root() == original.state_root()
        assert recovered.time_journals == original.time_journals
        assert recovered.list_tx("RCLUE") == original.list_tx("RCLUE")
        assert recovered.is_occulted(4)

    def test_recovered_journals_verify(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(original.config, stream, registry, lsp, clock=clock)
        for jsn in range(recovered.size):
            if recovered.is_occulted(jsn):
                with pytest.raises(JournalOccultedError):
                    recovered.get_journal(jsn)
                continue
            journal = recovered.get_journal(jsn)
            assert recovered.verify_journal(journal), jsn

    def test_recovered_ledger_audits(self, world):
        clock, tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(original.config, stream, registry, lsp, clock=clock)
        recovered.attach_time_ledger(tledger)
        assert recovered.refresh_time_evidence() == len(recovered.time_journals)
        # Occult approvals were off-stream: re-attach from operational records
        # (a real deployment persists them; here the original still has them).
        recovered._occult_records = original._occult_records
        report = dasein_audit(
            recovered.export_view(), tsa_keys={"rec-tsa": tsa.public_key}
        )
        assert report.passed, report.failures()

    def test_recovered_ledger_accepts_new_appends(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(original.config, stream, registry, lsp, clock=clock)
        request = ClientRequest.build(
            URI, "user", b"post-recovery", nonce=b"pr", client_timestamp=clock.now()
        ).signed_by(user)
        receipt = recovered.append(request)
        journal = recovered.get_journal(receipt.jsn)
        assert recovered.verify_journal(journal)

    def test_recovery_from_file_stream(self, world, tmp_path):
        """Full durability loop: build over a file, reopen, recover."""
        clock, _tsa, tledger = world
        path = tmp_path / "journal.stream"
        stream = FileStream(path)
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        expected_root = original.current_root()
        stream.close()
        with FileStream(path) as reopened:
            # PKI state lives outside the stream: rebuild the member set.
            registry2 = MemberRegistry()
            for member in ("user", "dba", "reg"):
                cert = registry.certificate(member)
                registry2.register(member, cert.role, cert.public_key)
            recovered = Ledger.recover(original.config, reopened, registry2, lsp, clock=clock)
            assert recovered.current_root() == expected_root

    def test_fresh_receipt_issued(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, _user = build_original(stream, clock, tledger)
        recovered = Ledger.recover(original.config, stream, registry, lsp, clock=clock)
        receipt = recovered.latest_receipt
        assert receipt is not None
        assert receipt.ledger_root == recovered.current_root()
        assert receipt.verify(lsp.public)

    def test_empty_stream_rejected(self, world):
        clock, _tsa, _tledger = world
        with pytest.raises(LedgerError, match="empty"):
            Ledger.recover(
                LedgerConfig(uri=URI), MemoryStream(), MemberRegistry(),
                KeyPair.generate(seed="x"), clock=clock,
            )

    def test_purged_stream_rejected(self, world):
        clock, _tsa, tledger = world
        stream = MemoryStream()
        original, registry, lsp, user = build_original(stream, clock, tledger, with_occult=False)
        original.commit_block()
        boundary = original.blocks[0].end_jsn
        pseudo, record = original.prepare_purge(boundary)
        approvals = MultiSignature(digest=record.approval_digest())
        keys = {
            "user": user,
            "dba": KeyPair.generate(seed="recovery-dba"),  # deterministic fixture key
            LSP_MEMBER_ID: lsp,
        }
        for member in original.purge_required_signers(boundary):
            approvals.add(member, keys[member].sign(record.approval_digest()))
        original.execute_purge(pseudo, record, approvals)
        with pytest.raises(LedgerError, match="purged"):
            Ledger.recover(original.config, stream, MemberRegistry(), lsp, clock=clock)
