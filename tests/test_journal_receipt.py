"""Journal and receipt models: serialization, digests, signatures."""

import dataclasses

from repro.core import ClientRequest, Journal, JournalType, Receipt
from repro.crypto import KeyPair
from repro.crypto.hashing import EMPTY_DIGEST


def make_request(**overrides):
    base = dict(
        ledger_uri="ledger://x",
        client_id="alice",
        payload=b"data",
        clues=("c1", "c2"),
        nonce=b"n",
        client_timestamp=1.5,
    )
    base.update(overrides)
    return ClientRequest.build(**base)


def make_journal(request=None, jsn=7):
    request = request or make_request()
    return Journal(
        jsn=jsn,
        journal_type=request.journal_type,
        client_id=request.client_id,
        payload=request.payload,
        clues=request.clues,
        timestamp=2.0,
        nonce=request.nonce,
        request_hash=request.request_hash(),
        client_signature=None,
    )


class TestClientRequest:
    def test_request_hash_covers_payload(self):
        assert make_request().request_hash() != make_request(payload=b"other").request_hash()

    def test_request_hash_covers_metadata(self):
        base = make_request()
        assert base.request_hash() != make_request(client_id="bob").request_hash()
        assert base.request_hash() != make_request(clues=("c1",)).request_hash()
        assert base.request_hash() != make_request(nonce=b"m").request_hash()

    def test_signing(self):
        keypair = KeyPair.generate(seed="a")
        signed = make_request().signed_by(keypair)
        assert keypair.public.verify(signed.request_hash(), signed.signature)

    def test_signature_excluded_from_request_hash(self):
        keypair = KeyPair.generate(seed="a")
        request = make_request()
        assert request.request_hash() == request.signed_by(keypair).request_hash()


class TestJournal:
    def test_serialization_round_trip(self):
        keypair = KeyPair.generate(seed="a")
        request = make_request().signed_by(keypair)
        journal = dataclasses.replace(make_journal(request), client_signature=request.signature)
        restored = Journal.from_bytes(journal.to_bytes())
        assert restored == journal
        assert restored.tx_hash() == journal.tx_hash()

    def test_tx_hash_covers_every_field(self):
        journal = make_journal()
        variants = [
            dataclasses.replace(journal, jsn=8),
            dataclasses.replace(journal, payload=b"tampered"),
            dataclasses.replace(journal, client_id="mallory"),
            dataclasses.replace(journal, clues=("c1",)),
            dataclasses.replace(journal, timestamp=99.0),
            dataclasses.replace(journal, journal_type=JournalType.TIME),
        ]
        hashes = {journal.tx_hash()} | {v.tx_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_journal_types_enumerated(self):
        assert {t.value for t in JournalType} == {"genesis", "normal", "time", "purge", "occult"}


class TestReceipt:
    def make_receipt(self):
        return Receipt(
            ledger_uri="ledger://x",
            jsn=3,
            request_hash=EMPTY_DIGEST,
            tx_hash=EMPTY_DIGEST,
            block_hash=EMPTY_DIGEST,
            block_height=0,
            ledger_root=EMPTY_DIGEST,
            timestamp=1.0,
        )

    def test_sign_verify(self):
        lsp = KeyPair.generate(seed="lsp")
        receipt = self.make_receipt().signed_by(lsp)
        assert receipt.verify(lsp.public)

    def test_unsigned_receipt_fails(self):
        lsp = KeyPair.generate(seed="lsp")
        assert not self.make_receipt().verify(lsp.public)

    def test_tampered_field_fails(self):
        lsp = KeyPair.generate(seed="lsp")
        receipt = self.make_receipt().signed_by(lsp)
        for change in (
            {"jsn": 4},
            {"tx_hash": b"\x01" * 32},
            {"ledger_root": b"\x02" * 32},
            {"timestamp": 2.0},
        ):
            forged = dataclasses.replace(receipt, **change)
            assert not forged.verify(lsp.public)

    def test_serialization_round_trip(self):
        lsp = KeyPair.generate(seed="lsp")
        receipt = self.make_receipt().signed_by(lsp)
        restored = Receipt.from_bytes(receipt.to_bytes())
        assert restored == receipt
        assert restored.verify(lsp.public)
