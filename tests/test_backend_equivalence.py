"""Memory vs paged node-store equivalence, snapshot reopen, §9 fault recovery.

The paged backend is pure placement: every trusted artifact — fam roots,
CM-Tree roots, proofs, audit reports — must be byte-identical to the
in-memory backend, including after an injected crash and reopen.  Reopening
from a checkpoint must cost O(delta-since-snapshot) stream reads, and any
damage to derived state (snapshot or pages) must degrade to the always-safe
full replay, never to wrong answers.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ClientRequest,
    Ledger,
    LedgerConfig,
    OccultMode,
    dasein_audit,
)
from repro.core.errors import SnapshotError, UsageError
from repro.core.ledger import LSP_MEMBER_ID
from repro.core.members import MemberRegistry
from repro.crypto import KeyPair, MultiSignature, Role
from repro.storage.faults import (
    FaultPlan,
    FaultyPagedStore,
    InjectedCrash,
    flip_byte,
)
from repro.storage.pagestore import PageCorruptionError
from repro.storage.stream import FileStream
from repro.timeauth import SimClock

URI = "ledger://equiv"

CLUES = ["A", "B", "C", "D"]


def make_world():
    registry = MemberRegistry()
    lsp = KeyPair.generate(seed="equiv-lsp")
    keys = {
        "user": KeyPair.generate(seed="equiv-user"),
        "dba": KeyPair.generate(seed="equiv-dba"),
        "reg": KeyPair.generate(seed="equiv-reg"),
    }
    registry.register("user", Role.USER, keys["user"].public)
    registry.register("dba", Role.DBA, keys["dba"].public)
    registry.register("reg", Role.REGULATOR, keys["reg"].public)
    return registry, lsp, keys


def reregister(registry):
    fresh = MemberRegistry()
    for member in ("user", "dba", "reg"):
        cert = registry.certificate(member)
        fresh.register(member, cert.role, cert.public_key)
    return fresh


def drive(ledger, clock, keys, ops):
    """Apply one scripted workload: (clues, commit_after) per append."""
    for i, (clues, commit_after) in enumerate(ops):
        request = ClientRequest.build(
            ledger.config.uri, "user", b"equiv-%04d" % i,
            clues=tuple(clues), nonce=i.to_bytes(4, "big"),
            client_timestamp=clock.now(),
        ).signed_by(keys["user"])
        ledger.append(request)
        clock.advance(0.25)
        if commit_after:
            ledger.commit_block()
    ledger.commit_block()


def fingerprint(ledger):
    """Every byte-comparable trusted artifact of a ledger."""
    proofs = [ledger.get_proof(jsn).to_bytes() for jsn in range(ledger.size)]
    unanchored = [
        ledger.get_proof(jsn, anchored=False).to_bytes() for jsn in range(ledger.size)
    ]
    clue_proofs = {
        clue: ledger.prove_clue(clue).to_bytes()
        for clue in CLUES
        if ledger.clue_entry_count(clue)
    }
    return {
        "size": ledger.size,
        "journal_root": ledger.current_root(),
        "state_root": ledger.state_root(),
        "proofs": proofs,
        "unanchored": unanchored,
        "clue_proofs": clue_proofs,
        "block_hashes": [block.hash() for block in ledger.blocks],
    }


def paged_config(data_dir, **kwargs):
    return LedgerConfig(
        uri=URI, fractal_height=3, block_size=4,
        node_store="paged", cache_pages=4, data_dir=str(data_dir), **kwargs
    )


workloads = st.lists(
    st.tuples(
        st.lists(st.sampled_from(CLUES), max_size=2, unique=True),
        st.booleans(),
    ),
    min_size=1,
    max_size=24,
)


class TestBackendEquivalence:
    @given(ops=workloads)
    @settings(max_examples=25, deadline=None)
    def test_roots_proofs_identical_for_any_workload(self, ops):
        registry_m, lsp, keys = make_world()
        clock_m = SimClock()
        memory = Ledger(
            LedgerConfig(uri=URI, fractal_height=3, block_size=4),
            clock=clock_m, registry=registry_m, lsp_keypair=lsp,
        )
        drive(memory, clock_m, keys, ops)
        with tempfile.TemporaryDirectory(prefix="equiv-") as tmp:
            registry_p, lsp_p, keys_p = make_world()
            clock_p = SimClock()
            paged = Ledger(
                paged_config(tmp), clock=clock_p,
                registry=registry_p, lsp_keypair=lsp_p,
            )
            drive(paged, clock_p, keys_p, ops)
            assert fingerprint(paged) == fingerprint(memory)
            paged.close(checkpoint=False)

    def test_audit_reports_byte_identical(self, tmp_path):
        ops = [((CLUES[i % 3],), i % 5 == 4) for i in range(22)]
        registry_m, lsp, keys = make_world()
        clock_m = SimClock()
        memory = Ledger(
            LedgerConfig(uri=URI, fractal_height=3, block_size=4),
            clock=clock_m, registry=registry_m, lsp_keypair=lsp,
        )
        drive(memory, clock_m, keys, ops)
        registry_p, lsp_p, keys_p = make_world()
        clock_p = SimClock()
        paged = Ledger(
            paged_config(tmp_path), clock=clock_p,
            registry=registry_p, lsp_keypair=lsp_p,
        )
        drive(paged, clock_p, keys_p, ops)
        report_m = dasein_audit(memory.export_view(), tsa_keys={})
        report_p = dasein_audit(paged.export_view(), tsa_keys={})
        assert report_m.passed, report_m.failures()
        assert report_p.canonical() == report_m.canonical()
        paged.close(checkpoint=False)

    def test_occult_equivalence(self, tmp_path):
        ops = [((CLUES[i % 2],), False) for i in range(10)]

        def build(config, registry, lsp, keys):
            clock = SimClock()
            ledger = Ledger(config, clock=clock, registry=registry, lsp_keypair=lsp)
            drive(ledger, clock, keys, ops)
            record = ledger.prepare_occult(3, OccultMode.SYNC, reason="equiv")
            approvals = MultiSignature(digest=record.approval_digest())
            approvals.add("dba", keys["dba"].sign(record.approval_digest()))
            approvals.add("reg", keys["reg"].sign(record.approval_digest()))
            ledger.execute_occult(record, approvals)
            ledger.commit_block()
            return ledger

        registry_m, lsp, keys = make_world()
        memory = build(
            LedgerConfig(uri=URI, fractal_height=3, block_size=4),
            registry_m, lsp, keys,
        )
        registry_p, lsp_p, keys_p = make_world()
        paged = build(paged_config(tmp_path), registry_p, lsp_p, keys_p)
        assert fingerprint(paged) == fingerprint(memory)
        assert paged.is_occulted(3) and memory.is_occulted(3)
        paged.close(checkpoint=False)


class TestSnapshotReopen:
    def _build(self, tmp_path, appends=30):
        registry, lsp, keys = make_world()
        clock = SimClock()
        ledger = Ledger(
            paged_config(tmp_path), clock=clock, registry=registry, lsp_keypair=lsp
        )
        drive(ledger, clock, keys, [((CLUES[i % 4],), False) for i in range(appends)])
        return ledger, registry, lsp, keys, clock

    def test_snapshot_restore_matches_original(self, tmp_path):
        ledger, registry, lsp, keys, clock = self._build(tmp_path)
        ledger.checkpoint()
        # Post-snapshot delta, including an occult of a pre-snapshot target.
        drive(ledger, clock, keys, [((CLUES[i % 2],), False) for i in range(9)])
        record = ledger.prepare_occult(5, OccultMode.SYNC, reason="delta")
        approvals = MultiSignature(digest=record.approval_digest())
        approvals.add("dba", keys["dba"].sign(record.approval_digest()))
        approvals.add("reg", keys["reg"].sign(record.approval_digest()))
        ledger.execute_occult(record, approvals)
        ledger.commit_block()
        expected = fingerprint(ledger)
        ledger.close(checkpoint=False)

        reopened = Ledger.open(str(tmp_path), reregister(registry), lsp, clock=SimClock())
        got = fingerprint(reopened)
        # Delta-replayed blocks are re-stamped by the recovery clock (exactly
        # like Ledger.recover); every other artifact is byte-identical.
        assert {k: v for k, v in got.items() if k != "block_hashes"} == {
            k: v for k, v in expected.items() if k != "block_hashes"
        }
        assert reopened.is_occulted(5)
        assert reopened.latest_receipt.verify(lsp.public)
        reopened.close(checkpoint=False)

    def test_snapshot_taken_at_close_makes_blocks_identical(self, tmp_path):
        ledger, registry, lsp, _keys, _clock = self._build(tmp_path)
        expected = fingerprint(ledger)
        ledger.close()  # checkpoints: snapshot covers the whole stream
        reopened = Ledger.open(str(tmp_path), reregister(registry), lsp, clock=SimClock())
        assert fingerprint(reopened) == expected  # blocks included
        reopened.close(checkpoint=False)

    def test_reopen_reads_only_the_delta(self, tmp_path):
        class CountingStream(FileStream):
            def __init__(self, path):
                self.record_reads = 0
                super().__init__(path, durable=True)

            def read(self, offset):
                self.record_reads += 1
                return super().read(offset)

        ledger, registry, lsp, keys, clock = self._build(tmp_path, appends=40)
        ledger.checkpoint()
        delta = 6
        drive(ledger, clock, keys, [((), False) for _ in range(delta)])
        total = ledger.size
        ledger.close(checkpoint=False)

        stream = CountingStream(tmp_path / "journal.stream")
        reopened = Ledger.open(
            str(tmp_path), reregister(registry), lsp,
            clock=SimClock(), journal_stream=stream,
        )
        assert reopened.size == total
        # Two replay passes over the suffix only — not O(ledger size).
        assert stream.record_reads <= 2 * delta + 2
        assert stream.record_reads < total
        reopened.close(checkpoint=False)

    def test_corrupt_snapshot_falls_back_to_full_replay(self, tmp_path):
        ledger, registry, lsp, _keys, _clock = self._build(tmp_path)
        expected_root = ledger.current_root()
        ledger.close()
        flip_byte(tmp_path / "snapshot.ckpt", 40)
        reopened = Ledger.open(str(tmp_path), reregister(registry), lsp, clock=SimClock())
        assert reopened.current_root() == expected_root
        reopened.close(checkpoint=False)

    def test_foreign_snapshot_rejected(self, tmp_path, monkeypatch):
        ledger, registry, lsp, _keys, _clock = self._build(tmp_path)
        expected_root = ledger.current_root()
        ledger.close()
        # Swap in a snapshot from a different ledger uri.
        from repro.core import snapshot as snapshot_mod

        state = snapshot_mod.load_snapshot(tmp_path / "snapshot.ckpt")
        state["uri"] = "ledger://someone-else"
        snapshot_mod.write_snapshot(tmp_path / "snapshot.ckpt", state)
        reopened = Ledger.open(str(tmp_path), reregister(registry), lsp, clock=SimClock())
        assert reopened.current_root() == expected_root  # full replay won
        reopened.close(checkpoint=False)

    def test_checkpoint_requires_data_dir(self):
        registry, lsp, _keys = make_world()
        ledger = Ledger(
            LedgerConfig(uri=URI, fractal_height=3, block_size=4),
            clock=SimClock(), registry=registry, lsp_keypair=lsp,
        )
        with pytest.raises(UsageError):
            ledger.checkpoint()

    def test_create_refuses_existing_data_dir(self, tmp_path):
        ledger, registry, lsp, _keys, _clock = self._build(tmp_path, appends=4)
        ledger.close()
        with pytest.raises(UsageError, match="existing"):
            Ledger(paged_config(tmp_path), clock=SimClock(),
                   registry=reregister(registry), lsp_keypair=lsp)


class TestCrashRecovery:
    """§9 applied to the node-store path: a crash mid page-flush must never
    lose committed state, and the reopened paged ledger must be byte-identical
    to a pure-memory recovery of the same journal stream."""

    def _crashed_ledger(self, tmp_path, crash_op=2, checkpoint_first=False):
        registry, lsp, keys = make_world()
        clock = SimClock()
        plan = FaultPlan()
        store = FaultyPagedStore(Path(tmp_path) / "nodes", plan)
        ledger = Ledger(
            paged_config(tmp_path), clock=clock, registry=registry,
            lsp_keypair=lsp, node_store=store,
        )
        drive(ledger, clock, keys, [((CLUES[i % 4],), False) for i in range(20)])
        if checkpoint_first:
            ledger.checkpoint()
        plan.reset()
        crashed = False
        for i in range(20, 40):
            request = ClientRequest.build(
                URI, "user", b"equiv-%04d" % i,
                clues=(CLUES[i % 4],), nonce=i.to_bytes(4, "big"),
                client_timestamp=clock.now(),
            ).signed_by(keys["user"])
            if not crashed and len(plan.crash_points()) > crash_op:
                plan.arm(crash_op)
            try:
                ledger.append(request)
            except InjectedCrash:
                crashed = True
                break
            clock.advance(0.25)
        assert crashed, "workload never reached the armed crash point"
        return registry, lsp

    def test_crash_then_reopen_equals_memory_recovery(self, tmp_path):
        registry, lsp = self._crashed_ledger(tmp_path)
        # No snapshot -> both sides take the full-replay path.
        stream = FileStream(tmp_path / "journal.stream", durable=True)
        comparator = Ledger.recover(
            LedgerConfig(uri=URI, fractal_height=3, block_size=4),
            stream, reregister(registry), lsp, clock=SimClock(),
        )
        expected = fingerprint(comparator)
        report_m = dasein_audit(comparator.export_view(), tsa_keys={})
        stream.close()

        reopened = Ledger.open(str(tmp_path), reregister(registry), lsp, clock=SimClock())
        assert fingerprint(reopened) == expected
        report_p = dasein_audit(reopened.export_view(), tsa_keys={})
        assert report_p.passed, report_p.failures()
        assert report_p.canonical() == report_m.canonical()
        reopened.close(checkpoint=False)

    def test_crash_after_checkpoint_recovers_via_snapshot(self, tmp_path):
        registry, lsp = self._crashed_ledger(tmp_path, checkpoint_first=True)
        stream = FileStream(tmp_path / "journal.stream", durable=True)
        comparator = Ledger.recover(
            LedgerConfig(uri=URI, fractal_height=3, block_size=4),
            stream, reregister(registry), lsp, clock=SimClock(),
        )
        expected = fingerprint(comparator)
        stream.close()

        reopened = Ledger.open(str(tmp_path), reregister(registry), lsp, clock=SimClock())
        got = fingerprint(reopened)
        # Snapshot-restored blocks keep their original timestamps; roots and
        # proofs must still be byte-identical to the memory recovery.
        assert {k: v for k, v in got.items() if k != "block_hashes"} == {
            k: v for k, v in expected.items() if k != "block_hashes"
        }
        reopened.close(checkpoint=False)

    def test_page_index_rot_triggers_rebuild(self, tmp_path):
        registry, lsp, keys = make_world()
        clock = SimClock()
        ledger = Ledger(
            paged_config(tmp_path), clock=clock, registry=registry, lsp_keypair=lsp
        )
        drive(ledger, clock, keys, [((CLUES[i % 4],), False) for i in range(24)])
        expected_root = ledger.current_root()
        expected_clue = ledger.prove_clue("A").to_bytes()
        ledger.close()
        victim = sorted((tmp_path / "nodes").glob("page-*.pg"))[0]
        flip_byte(victim, 33)  # index section: detected at open
        reopened = Ledger.open(str(tmp_path), reregister(registry), lsp, clock=SimClock())
        assert reopened.current_root() == expected_root
        assert reopened.prove_clue("A").to_bytes() == expected_clue
        reopened.close(checkpoint=False)

    def test_page_blob_rot_detected_then_force_rebuild(self, tmp_path):
        registry, lsp, keys = make_world()
        clock = SimClock()
        ledger = Ledger(
            paged_config(tmp_path), clock=clock, registry=registry, lsp_keypair=lsp
        )
        drive(ledger, clock, keys, [((CLUES[i % 4],), False) for i in range(24)])
        expected_root = ledger.current_root()
        expected_clue = ledger.prove_clue("A").to_bytes()
        ledger.close()
        for page in (tmp_path / "nodes").glob("page-*.pg"):
            flip_byte(page, page.stat().st_size - 1)  # blob rot: lazy check
        reopened = Ledger.open(str(tmp_path), reregister(registry), lsp, clock=SimClock())
        with pytest.raises(PageCorruptionError):
            for clue in CLUES:
                reopened.prove_clue(clue)
        reopened.close(checkpoint=False)
        rebuilt = Ledger.open(
            str(tmp_path), reregister(registry), lsp,
            clock=SimClock(), force_rebuild=True,
        )
        assert rebuilt.current_root() == expected_root
        assert rebuilt.prove_clue("A").to_bytes() == expected_clue
        rebuilt.close(checkpoint=False)
