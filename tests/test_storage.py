"""Streams (memory + file) and KV stores."""

import os
import struct

import pytest
from hypothesis import given, strategies as st

from repro.storage import (
    CachedKVStore,
    FileStream,
    KeyNotFoundError,
    MemoryKVStore,
    MemoryStream,
    RecordErasedError,
    StreamCorruptionError,
    StreamError,
    crc32c,
)
from repro.storage.stream import _HEADER, _MAGIC


class TestMemoryStream:
    def test_append_read_round_trip(self):
        stream = MemoryStream()
        offsets = [stream.append(b"rec-%d" % i) for i in range(5)]
        assert offsets == [0, 1, 2, 3, 4]
        for i in offsets:
            assert stream.read(i) == b"rec-%d" % i

    def test_out_of_range_read(self):
        stream = MemoryStream()
        with pytest.raises(StreamError):
            stream.read(0)
        stream.append(b"x")
        with pytest.raises(StreamError):
            stream.read(1)
        with pytest.raises(StreamError):
            stream.read(-1)

    def test_erase_keeps_offsets_stable(self):
        stream = MemoryStream()
        for i in range(4):
            stream.append(b"r%d" % i)
        stream.erase(1)
        assert stream.is_erased(1)
        with pytest.raises(RecordErasedError):
            stream.read(1)
        assert stream.read(2) == b"r2"
        assert len(stream) == 4

    def test_erase_is_idempotent(self):
        stream = MemoryStream()
        stream.append(b"x")
        stream.erase(0)
        stream.erase(0)
        assert stream.is_erased(0)

    def test_iter_records_skips_erased(self):
        stream = MemoryStream()
        for i in range(6):
            stream.append(b"%d" % i)
        stream.erase(2)
        stream.erase(4)
        live = dict(stream.iter_records())
        assert set(live) == {0, 1, 3, 5}
        ranged = dict(stream.iter_records(1, 4))
        assert set(ranged) == {1, 3}


class TestFileStream:
    def test_round_trip_and_reopen(self, tmp_path):
        path = tmp_path / "journal.stream"
        with FileStream(path) as stream:
            for i in range(10):
                stream.append(b"record-%d" % i * (i + 1))
            stream.erase(3)
        with FileStream(path) as reopened:
            assert len(reopened) == 10
            assert reopened.read(0) == b"record-0"
            assert reopened.read(9) == b"record-9" * 10
            assert reopened.is_erased(3)
            with pytest.raises(RecordErasedError):
                reopened.read(3)

    def test_erase_overwrites_payload_bytes(self, tmp_path):
        path = tmp_path / "s"
        with FileStream(path) as stream:
            stream.append(b"SENSITIVE-PERSONAL-DATA")
            stream.erase(0)
        raw = path.read_bytes()
        assert b"SENSITIVE" not in raw  # physically gone, not just flagged

    def test_empty_record(self, tmp_path):
        with FileStream(tmp_path / "s") as stream:
            stream.append(b"")
            assert stream.read(0) == b""

    @given(st.lists(st.binary(max_size=200), min_size=1, max_size=30))
    def test_matches_memory_stream(self, records):
        import tempfile, os

        memory = MemoryStream()
        fd, path = tempfile.mkstemp()
        os.close(fd)
        os.unlink(path)
        try:
            with FileStream(path) as disk:
                for record in records:
                    assert memory.append(record) == disk.append(record)
                for offset in range(len(records)):
                    assert memory.read(offset) == disk.read(offset)
        finally:
            if os.path.exists(path):
                os.unlink(path)


class TestCrc32c:
    def test_known_vectors(self):
        # RFC 3720 appendix B.4 test patterns.
        assert crc32c(b"") == 0x00000000
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(b"\x00" * 32) == 0x8A9136AA
        assert crc32c(b"\xff" * 32) == 0x62A8AB43

    def test_chaining_matches_one_shot(self):
        data = bytes(range(256))
        assert crc32c(data[100:], crc32c(data[:100])) == crc32c(data)


class TestFileStreamCrashConsistency:
    """The §9 contract: torn tails roll back, corruption is refused."""

    @staticmethod
    def _build(path, records=(b"alpha", b"bravo", b"charlie")):
        with FileStream(path, durable=True) as stream:
            for record in records:
                stream.append(record)
        return os.path.getsize(path)

    def test_open_report_clean_on_healthy_file(self, tmp_path):
        path = tmp_path / "s"
        self._build(path)
        with FileStream(path) as stream:
            assert stream.open_report.clean
            assert stream.open_report.records == 3

    def test_truncated_header_rolls_back_not_struct_error(self, tmp_path):
        """Regression: a header cut short used to escape as struct.error."""
        path = tmp_path / "s"
        size = self._build(path)
        os.truncate(path, size - len(b"charlie") - 2)  # mid-header of rec 2
        with FileStream(path) as stream:
            assert len(stream) == 2
            assert stream.read(1) == b"bravo"
            report = stream.open_report
            assert not report.clean
            assert "torn record header" in report.truncation_reason

    def test_truncated_payload_rolls_back(self, tmp_path):
        path = tmp_path / "s"
        size = self._build(path)
        os.truncate(path, size - 3)
        with FileStream(path) as stream:
            assert len(stream) == 2
            assert "torn record payload" in stream.open_report.truncation_reason
        # The rollback is durable: a second open sees a clean file.
        with FileStream(path) as stream:
            assert stream.open_report.clean

    def test_truncation_under_open_stream_raises_not_struct_error(self, tmp_path):
        """Regression: reads off a shrunk file used to raise struct.error."""
        path = tmp_path / "s"
        with FileStream(path) as stream:
            stream.append(b"first")
            stream.append(b"second-record")
            os.truncate(path, os.path.getsize(path) - 8)
            with pytest.raises(StreamCorruptionError):
                stream.read(1)

    def test_bad_magic_refused(self, tmp_path):
        path = tmp_path / "s"
        self._build(path)
        with open(path, "r+b") as handle:
            handle.write(b"NOTMAGIC")
        with pytest.raises(StreamCorruptionError, match="superblock"):
            FileStream(path)

    def test_flipped_payload_byte_refused(self, tmp_path):
        path = tmp_path / "s"
        size = self._build(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 1)
            original = handle.read(1)[0]
            handle.seek(size - 1)
            handle.write(bytes([original ^ 0x10]))
        with pytest.raises(StreamCorruptionError, match="payload checksum"):
            FileStream(path)

    def test_flipped_length_cannot_fake_torn_tail(self, tmp_path):
        """A corrupted length field must fail the header CRC, not silently
        truncate the committed records behind it."""
        path = tmp_path / "s"
        self._build(path)
        with FileStream(path) as stream:
            position = stream._positions[0]
        with open(path, "r+b") as handle:
            handle.seek(position)
            original = handle.read(1)[0]
            handle.seek(position)
            handle.write(bytes([original ^ 0x80]))  # length += 2**31
        with pytest.raises(StreamCorruptionError, match="header checksum"):
            FileStream(path)

    def test_unknown_flag_bits_refused(self, tmp_path):
        """Even a header whose CRC validates is refused on unknown flags
        (format-version safety: future bits must not be misread as today's)."""
        path = tmp_path / "s"
        self._build(path)
        with FileStream(path) as stream:
            position = stream._positions[1]
            length = stream._lengths[1]
        with open(path, "r+b") as handle:
            handle.seek(position + _HEADER.size)
            payload = handle.read(length)
            flags = 0x04 | 0x02
            pcrc = crc32c(payload)
            hcrc = crc32c(struct.pack(">IBI", length, flags, pcrc))
            handle.seek(position)
            handle.write(_HEADER.pack(length, flags, pcrc, hcrc))
        with pytest.raises(StreamCorruptionError, match="unknown flag"):
            FileStream(path)

    def test_uncommitted_suffix_rolls_back(self, tmp_path):
        """Records after the last commit epilogue vanish on reopen: the
        group-commit batch is all-or-nothing."""
        path = tmp_path / "s"
        self._build(path, records=(b"keep-me",))
        # Forge a batch whose final (committing) record never made it: two
        # intact records, neither carrying the COMMIT flag.
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            for payload in (b"uncommitted-1", b"uncommitted-2"):
                pcrc = crc32c(payload)
                hcrc = crc32c(struct.pack(">IBI", len(payload), 0, pcrc))
                handle.write(_HEADER.pack(len(payload), 0, pcrc, hcrc) + payload)
        with FileStream(path) as stream:
            assert len(stream) == 1
            assert stream.read(0) == b"keep-me"
            report = stream.open_report
            assert report.truncated_records == 2
            assert "uncommitted batch tail" in report.truncation_reason

    def test_interrupted_erase_is_completed_on_open(self, tmp_path):
        """Erase writes its header before scrubbing; a crash between the two
        recovers as an erased record whose payload open() re-zeroes."""
        path = tmp_path / "s"
        self._build(path, records=(b"SENSITIVE-BYTES", b"tail"))
        with FileStream(path) as stream:
            position = stream._positions[0]
            length = stream._lengths[0]
        with open(path, "r+b") as handle:  # the erase header, payload intact
            flags = 0x01 | 0x02  # ERASED | COMMIT
            hcrc = crc32c(struct.pack(">IBI", length, flags, 0))
            handle.seek(position)
            handle.write(_HEADER.pack(length, flags, 0, hcrc))
        with FileStream(path) as stream:
            assert stream.open_report.scrubbed_records == (0,)
            assert stream.is_erased(0)
            assert stream.read(1) == b"tail"
        assert b"SENSITIVE" not in (tmp_path / "s").read_bytes()

    def test_fresh_file_gets_superblock(self, tmp_path):
        with FileStream(tmp_path / "s") as stream:
            assert len(stream) == 0
        assert (tmp_path / "s").read_bytes() == _MAGIC

    def test_crash_before_superblock_durable_recreates_it(self, tmp_path):
        path = tmp_path / "s"
        path.write_bytes(_MAGIC[:3])  # torn superblock write
        with FileStream(path) as stream:
            assert len(stream) == 0
            stream.append(b"first")
        with FileStream(path) as stream:
            assert stream.read(0) == b"first"


class TestKVStores:
    def test_memory_kv_basics(self):
        kv = MemoryKVStore()
        kv.put(b"k", b"v")
        assert kv.get(b"k") == b"v"
        assert b"k" in kv and len(kv) == 1
        kv.put(b"k", b"v2")
        assert kv.get(b"k") == b"v2"
        kv.delete(b"k")
        assert b"k" not in kv
        with pytest.raises(KeyNotFoundError):
            kv.get(b"k")
        with pytest.raises(KeyNotFoundError):
            kv.delete(b"k")

    def test_cached_kv_write_through_and_hits(self):
        backend = MemoryKVStore()
        cached = CachedKVStore(backend, capacity=2)
        cached.put(b"a", b"1")
        assert backend.get(b"a") == b"1"  # write-through
        assert cached.get(b"a") == b"1"
        assert cached.cache_hits == 1 and cached.backend_reads == 0

    def test_cached_kv_eviction(self):
        backend = MemoryKVStore()
        cached = CachedKVStore(backend, capacity=2)
        for key in (b"a", b"b", b"c"):
            cached.put(key, key)
        assert cached.get(b"a") == b"a"  # evicted -> backend read
        assert cached.backend_reads == 1

    def test_cached_kv_delete(self):
        cached = CachedKVStore(MemoryKVStore(), capacity=4)
        cached.put(b"a", b"1")
        cached.delete(b"a")
        assert b"a" not in cached

    def test_cache_capacity_validation(self):
        with pytest.raises(ValueError):
            CachedKVStore(MemoryKVStore(), capacity=0)

    def test_contains_counts_hits_and_promotes(self):
        # Regression: __contains__ used to probe the cache dict directly,
        # bypassing hit/miss accounting and LRU promotion, so `key in store`
        # skewed hit rates and could evict the wrong entry.
        cached = CachedKVStore(MemoryKVStore(), capacity=2)
        cached.put(b"a", b"1")
        cached.put(b"b", b"2")
        assert b"a" in cached
        assert cached.cache_hits == 1
        # The probe promoted "a", so inserting "c" must evict "b" instead.
        cached.put(b"c", b"3")
        cached.get(b"a")
        assert cached.backend_reads == 0
        cached.get(b"b")
        assert cached.backend_reads == 1
        # Backend-only membership costs (and counts) a backend round trip.
        reads = cached.backend_reads
        cached._cache.pop(b"b", None)  # force the backend path
        assert b"b" in cached
        assert cached.backend_reads == reads + 1
        assert b"missing" not in cached
        stats = cached.stats()
        assert stats["cache_hits"] == cached.cache_hits
        assert stats["backend_reads"] == cached.backend_reads
