"""Streams (memory + file) and KV stores."""

import pytest
from hypothesis import given, strategies as st

from repro.storage import (
    CachedKVStore,
    FileStream,
    KeyNotFoundError,
    MemoryKVStore,
    MemoryStream,
    RecordErasedError,
    StreamError,
)


class TestMemoryStream:
    def test_append_read_round_trip(self):
        stream = MemoryStream()
        offsets = [stream.append(b"rec-%d" % i) for i in range(5)]
        assert offsets == [0, 1, 2, 3, 4]
        for i in offsets:
            assert stream.read(i) == b"rec-%d" % i

    def test_out_of_range_read(self):
        stream = MemoryStream()
        with pytest.raises(StreamError):
            stream.read(0)
        stream.append(b"x")
        with pytest.raises(StreamError):
            stream.read(1)
        with pytest.raises(StreamError):
            stream.read(-1)

    def test_erase_keeps_offsets_stable(self):
        stream = MemoryStream()
        for i in range(4):
            stream.append(b"r%d" % i)
        stream.erase(1)
        assert stream.is_erased(1)
        with pytest.raises(RecordErasedError):
            stream.read(1)
        assert stream.read(2) == b"r2"
        assert len(stream) == 4

    def test_erase_is_idempotent(self):
        stream = MemoryStream()
        stream.append(b"x")
        stream.erase(0)
        stream.erase(0)
        assert stream.is_erased(0)

    def test_iter_records_skips_erased(self):
        stream = MemoryStream()
        for i in range(6):
            stream.append(b"%d" % i)
        stream.erase(2)
        stream.erase(4)
        live = dict(stream.iter_records())
        assert set(live) == {0, 1, 3, 5}
        ranged = dict(stream.iter_records(1, 4))
        assert set(ranged) == {1, 3}


class TestFileStream:
    def test_round_trip_and_reopen(self, tmp_path):
        path = tmp_path / "journal.stream"
        with FileStream(path) as stream:
            for i in range(10):
                stream.append(b"record-%d" % i * (i + 1))
            stream.erase(3)
        with FileStream(path) as reopened:
            assert len(reopened) == 10
            assert reopened.read(0) == b"record-0"
            assert reopened.read(9) == b"record-9" * 10
            assert reopened.is_erased(3)
            with pytest.raises(RecordErasedError):
                reopened.read(3)

    def test_erase_overwrites_payload_bytes(self, tmp_path):
        path = tmp_path / "s"
        with FileStream(path) as stream:
            stream.append(b"SENSITIVE-PERSONAL-DATA")
            stream.erase(0)
        raw = path.read_bytes()
        assert b"SENSITIVE" not in raw  # physically gone, not just flagged

    def test_empty_record(self, tmp_path):
        with FileStream(tmp_path / "s") as stream:
            stream.append(b"")
            assert stream.read(0) == b""

    @given(st.lists(st.binary(max_size=200), min_size=1, max_size=30))
    def test_matches_memory_stream(self, records):
        import tempfile, os

        memory = MemoryStream()
        fd, path = tempfile.mkstemp()
        os.close(fd)
        os.unlink(path)
        try:
            with FileStream(path) as disk:
                for record in records:
                    assert memory.append(record) == disk.append(record)
                for offset in range(len(records)):
                    assert memory.read(offset) == disk.read(offset)
        finally:
            if os.path.exists(path):
                os.unlink(path)


class TestKVStores:
    def test_memory_kv_basics(self):
        kv = MemoryKVStore()
        kv.put(b"k", b"v")
        assert kv.get(b"k") == b"v"
        assert b"k" in kv and len(kv) == 1
        kv.put(b"k", b"v2")
        assert kv.get(b"k") == b"v2"
        kv.delete(b"k")
        assert b"k" not in kv
        with pytest.raises(KeyNotFoundError):
            kv.get(b"k")
        with pytest.raises(KeyNotFoundError):
            kv.delete(b"k")

    def test_cached_kv_write_through_and_hits(self):
        backend = MemoryKVStore()
        cached = CachedKVStore(backend, capacity=2)
        cached.put(b"a", b"1")
        assert backend.get(b"a") == b"1"  # write-through
        assert cached.get(b"a") == b"1"
        assert cached.cache_hits == 1 and cached.backend_reads == 0

    def test_cached_kv_eviction(self):
        backend = MemoryKVStore()
        cached = CachedKVStore(backend, capacity=2)
        for key in (b"a", b"b", b"c"):
            cached.put(key, key)
        assert cached.get(b"a") == b"a"  # evicted -> backend read
        assert cached.backend_reads == 1

    def test_cached_kv_delete(self):
        cached = CachedKVStore(MemoryKVStore(), capacity=4)
        cached.put(b"a", b"1")
        cached.delete(b"a")
        assert b"a" not in cached

    def test_cache_capacity_validation(self):
        with pytest.raises(ValueError):
            CachedKVStore(MemoryKVStore(), capacity=0)
