"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_demo_succeeds(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Dasein-complete=True" in out
    assert "passed=True" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "LedgerDB" in out and "Factom" in out


def test_attack(capsys):
    assert main(["attack"]) == 0
    out = capsys.readouterr().out
    assert "one-way" in out and "two-way" in out


def test_bench_selected(capsys):
    assert main(["bench", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out


def test_bench_unknown_experiment(capsys):
    assert main(["bench", "nonsense"]) == 2


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_audit_passes(capsys):
    assert main(["audit", "--journals", "24"]) == 0
    out = capsys.readouterr().out
    assert "[ok ]" in out and "passed=True" in out


def test_audit_parallel_json(capsys):
    import json

    assert main(["audit", "--journals", "24", "--workers", "2", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["passed"] is True
    assert report["journals_replayed"] > 0


def test_audit_checkpoint_then_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "cli.ckpt")
    assert main(["audit", "--journals", "24", "--checkpoint", ckpt]) == 0
    first = capsys.readouterr().out
    assert main(["audit", "--journals", "24", "--resume", ckpt]) == 0
    second = capsys.readouterr().out
    assert "passed=True" in first and "passed=True" in second
