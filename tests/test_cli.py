"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_demo_succeeds(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Dasein-complete=True" in out
    assert "passed=True" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "LedgerDB" in out and "Factom" in out


def test_attack(capsys):
    assert main(["attack"]) == 0
    out = capsys.readouterr().out
    assert "one-way" in out and "two-way" in out


def test_bench_selected(capsys):
    assert main(["bench", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out


def test_bench_unknown_experiment(capsys):
    assert main(["bench", "nonsense"]) == 2


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
