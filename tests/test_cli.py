"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_demo_succeeds(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Dasein-complete=True" in out
    assert "passed=True" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "LedgerDB" in out and "Factom" in out


def test_attack(capsys):
    assert main(["attack"]) == 0
    out = capsys.readouterr().out
    assert "one-way" in out and "two-way" in out


def test_bench_selected(capsys):
    assert main(["bench", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out


def test_bench_unknown_experiment(capsys):
    assert main(["bench", "nonsense"]) == 2


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_audit_passes(capsys):
    assert main(["audit", "--journals", "24"]) == 0
    out = capsys.readouterr().out
    assert "[ok ]" in out and "passed=True" in out


def test_audit_parallel_json(capsys):
    import json

    assert main(["audit", "--journals", "24", "--workers", "2", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["passed"] is True
    assert report["journals_replayed"] > 0


def test_audit_checkpoint_then_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "cli.ckpt")
    assert main(["audit", "--journals", "24", "--checkpoint", ckpt]) == 0
    first = capsys.readouterr().out
    assert main(["audit", "--journals", "24", "--resume", ckpt]) == 0
    second = capsys.readouterr().out
    assert "passed=True" in first and "passed=True" in second


def test_stats_includes_node_store_and_kv_cache(capsys):
    import json

    assert main(["stats", "--journals", "12", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["node_store"]["backend"] == "paged"
    assert snapshot["node_store"]["backend_reads"] > 0
    assert 0.0 <= snapshot["node_store"]["cache_hit_rate"] <= 1.0
    assert snapshot["kv_cache"]["cache_hits"] > 0
    assert 0.0 <= snapshot["kv_cache"]["hit_rate"] <= 1.0


def test_stats_table_renders_new_sections(capsys):
    assert main(["stats", "--journals", "12"]) == 0
    out = capsys.readouterr().out
    assert "node store" in out and "kv cache" in out
    assert "cache_hit_rate" in out


def _make_paged_ledger(tmp_path):
    from repro.core import ClientRequest, Ledger, LedgerConfig
    from repro.core.members import MemberRegistry
    from repro.crypto import KeyPair, Role
    from repro.timeauth import SimClock

    registry = MemberRegistry()
    lsp = KeyPair.generate(seed="cli-lsp")
    user = KeyPair.generate(seed="cli-user")
    registry.register("user", Role.USER, user.public)
    clock = SimClock()
    ledger = Ledger(
        LedgerConfig(
            uri="ledger://cli", fractal_height=3, block_size=4,
            node_store="paged", data_dir=str(tmp_path),
        ),
        clock=clock, registry=registry, lsp_keypair=lsp,
    )
    for i in range(20):
        # Re-put churn: overwrite-heavy trie updates leave shadowed entries.
        request = ClientRequest.build(
            "ledger://cli", "user", b"cli-%04d" % i, clues=("C",),
            nonce=i.to_bytes(4, "big"), client_timestamp=clock.now(),
        ).signed_by(user)
        ledger.append(request)
        clock.advance(0.5)
    ledger.commit_block()
    return ledger, registry, lsp


def test_compact_command_preserves_reopen(tmp_path, capsys):
    import json

    from repro.core import Ledger

    ledger, registry, lsp, = _make_paged_ledger(tmp_path)
    root = ledger.current_root()
    ledger.close()  # checkpoints, so compact can use the snapshot's live set
    assert main(["compact", str(tmp_path), "--json"]) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["pages_after"] <= result["pages_before"]
    assert result["entries_after"] <= result["entries_before"]
    from repro.timeauth import SimClock

    fresh = MemberRegistry_rebuild(registry)
    reopened = Ledger.open(str(tmp_path), fresh, lsp, clock=SimClock())
    assert reopened.current_root() == root
    reopened.close(checkpoint=False)


def MemberRegistry_rebuild(registry):
    from repro.core.members import MemberRegistry

    fresh = MemberRegistry()
    cert = registry.certificate("user")
    fresh.register("user", cert.role, cert.public_key)
    return fresh


def test_compact_rejects_missing_store(tmp_path, capsys):
    assert main(["compact", str(tmp_path / "nope")]) == 1
    assert "no paged node store" in capsys.readouterr().err


def test_audit_sharded(capsys):
    assert main(["audit", "--journals", "24", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "shard-0" in out and "shard-1" in out
    assert "passed=True" in out and "shards=2" in out


def test_audit_sharded_json(capsys):
    import json

    assert main(
        ["audit", "--journals", "24", "--shards", "2", "--json"]
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["passed"] is True
    assert report["num_shards"] == 2
    assert len(report["shards"]) == 2


def test_compact_sharded_data_dir(tmp_path, capsys):
    """A sharded data_dir holds per-shard stores; compact reports each."""
    import json

    from repro.core import ClientRequest, LedgerConfig
    from repro.crypto import KeyPair, Role
    from repro.shard import ShardedLedger

    user = KeyPair.generate(seed="cli-shard-user")
    ledger = ShardedLedger(
        LedgerConfig(
            uri="ledger://cli-sharded", fractal_height=3, block_size=4,
            shards=2, node_store="paged", data_dir=str(tmp_path),
        )
    )
    ledger.registry.register("user", Role.USER, user.public)
    for i in range(16):
        ledger.append(
            ClientRequest.build(
                "ledger://cli-sharded", "user", b"cli-%04d" % i,
                clues=(f"C{i}",), nonce=i.to_bytes(4, "big"),
                client_timestamp=1.0 + i,
            ).signed_by(user)
        )
    ledger.close()
    assert main(["compact", str(tmp_path), "--json"]) == 0
    result = json.loads(capsys.readouterr().out)
    assert len(result) == 2
    for name, report in result.items():
        assert "shard-" in name
        assert report["pages_after"] <= report["pages_before"]


# --------------------------------------------- export / verify-bundle / rebuild


def test_export_verify_rebuild_chain(tmp_path, capsys):
    """The carry-it-away flow: export → standalone verify → rebuild."""
    import json

    bundle = tmp_path / "demo.bundle"
    data = tmp_path / "demo-ledger"
    assert main([
        "export", "--demo", "--journals", "20", "--data-dir", str(data),
        "--out", str(bundle), "--clue", "EXPORT", "--json",
    ]) == 0
    exported = json.loads(capsys.readouterr().out)
    assert exported["ledger_uri"] == "ledger://export-demo"
    assert exported["journals"] >= 20
    assert bundle.exists()

    assert main(["verify-bundle", str(bundle), "--json"]) == 0
    verdict = json.loads(capsys.readouterr().out)
    assert verdict["ok"] is True
    assert verdict["what"] is True
    assert verdict["when"] is None  # no out-of-band TSA keys on the CLI

    assert main(["rebuild", "--bundle", str(bundle), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert report["divergences"] == []

    assert main(["rebuild", "--data-dir", str(data), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert report["source"] == "stream"


def test_export_sharded_demo(tmp_path, capsys):
    import json

    bundle = tmp_path / "sharded.bundle"
    assert main([
        "export", "--demo", "--journals", "24", "--shards", "2",
        "--out", str(bundle), "--json",
    ]) == 0
    exported = json.loads(capsys.readouterr().out)
    assert exported["shards"] == 2
    assert main(["verify-bundle", str(bundle)]) == 0
    assert main(["rebuild", "--bundle", str(bundle)]) == 0


def test_verify_bundle_rejects_corruption(tmp_path, capsys):
    bundle = tmp_path / "rot.bundle"
    assert main(["export", "--demo", "--out", str(bundle)]) == 0
    capsys.readouterr()
    blob = bytearray(bundle.read_bytes())
    blob[len(blob) // 2] ^= 0x10
    bundle.write_bytes(bytes(blob))
    assert main(["verify-bundle", str(bundle)]) == 2
    err = capsys.readouterr().err
    assert "BundleCorruptionError" in err


def test_rebuild_requires_exactly_one_source(tmp_path, capsys):
    assert main(["rebuild"]) == 2
    assert main([
        "rebuild", "--bundle", str(tmp_path / "b"), "--data-dir", str(tmp_path),
    ]) == 2


def test_rebuild_missing_data_dir_is_typed(tmp_path, capsys):
    assert main(["rebuild", "--data-dir", str(tmp_path / "nowhere")]) == 2
    assert "RebuildError" in capsys.readouterr().err
