"""bAMT baseline: batched accumulated Merkle tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import leaf_hash
from repro.merkle.bamt import BamtAccumulator


class TestBamt:
    def test_append_and_verify_sealed(self):
        bamt = BamtAccumulator(batch_size=4)
        payloads = [b"tx-%d" % i for i in range(16)]  # exactly 4 batches
        for payload in payloads:
            bamt.append(payload)
        root = bamt.root()
        for sequence, payload in enumerate(payloads):
            proof = bamt.get_proof(sequence)
            assert not proof.pending
            assert bamt.verify(leaf_hash(payload), proof, root), sequence

    def test_pending_batch_verification(self):
        bamt = BamtAccumulator(batch_size=8)
        for i in range(10):  # one sealed batch + 2 pending
            bamt.append(b"tx-%d" % i)
        root = bamt.root()
        proof = bamt.get_proof(9)
        assert proof.pending
        assert bamt.verify(leaf_hash(b"tx-9"), proof, root)
        sealed = bamt.get_proof(3)
        assert bamt.verify(leaf_hash(b"tx-3"), sealed, root)

    def test_tamper_fails(self):
        bamt = BamtAccumulator(batch_size=4)
        for i in range(12):
            bamt.append(b"tx-%d" % i)
        proof = bamt.get_proof(5)
        assert not bamt.verify(leaf_hash(b"forged"), proof, bamt.root())

    def test_wrong_root_fails(self):
        bamt = BamtAccumulator(batch_size=4)
        for i in range(12):
            bamt.append(b"tx-%d" % i)
        proof = bamt.get_proof(5)
        assert not bamt.verify(leaf_hash(b"tx-5"), proof, leaf_hash(b"zz"))

    def test_seal_batch_boundary(self):
        bamt = BamtAccumulator(batch_size=100)
        for i in range(5):
            bamt.append(b"tx-%d" % i)
        bamt.seal_batch()
        proof = bamt.get_proof(2)
        assert not proof.pending
        assert bamt.verify(leaf_hash(b"tx-2"), proof, bamt.root())

    def test_proof_depth_grows_with_ledger(self):
        # The structural weakness fam fixes: bAMT paths keep growing.
        small = BamtAccumulator(batch_size=8)
        large = BamtAccumulator(batch_size=8)
        for i in range(16):
            small.append(b"t%d" % i)
        for i in range(1024):
            large.append(b"t%d" % i)
        assert large.get_proof(0).path_nodes > small.get_proof(0).path_nodes

    def test_bounds(self):
        with pytest.raises(ValueError):
            BamtAccumulator(batch_size=0)
        bamt = BamtAccumulator()
        with pytest.raises(IndexError):
            bamt.get_proof(0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=80))
    def test_all_positions_verify_property(self, batch_size, count):
        bamt = BamtAccumulator(batch_size=batch_size)
        digests = [leaf_hash(i.to_bytes(3, "big")) for i in range(count)]
        for digest in digests:
            bamt.append_digest(digest)
        root = bamt.root()
        for sequence in range(0, count, max(count // 8, 1)):
            proof = bamt.get_proof(sequence)
            assert bamt.verify(digests[sequence], proof, root), (batch_size, count, sequence)
