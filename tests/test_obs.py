"""Observability layer: metrics substrate, spans, and ledger wiring."""

import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import HISTOGRAM_BUCKETS, Histogram, MetricsRegistry, NullRegistry
from repro.obs.tracing import NULL_SPAN, Span


@pytest.fixture()
def live_obs():
    """Enable observability for one test, restoring the prior state after."""
    was_enabled = obs.is_enabled()
    registry = obs.enable()
    registry.reset()
    yield registry
    registry.reset()
    if not was_enabled:
        obs.disable()


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0, "buckets": {},
        }

    def test_stats_track_observations(self):
        h = Histogram()
        for v in (1.0, 10.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(111.0)
        assert snap["min"] == 1.0
        assert snap["max"] == 100.0
        assert snap["mean"] == pytest.approx(37.0)

    def test_log2_bucket_edges(self):
        # Bucket k covers (2^(k-1), 2^k]: exact powers of two sit in their
        # own bucket, the next value up spills into the following one.
        h = Histogram()
        h.observe(0.0)
        h.observe(1.0)
        h.observe(2.0)
        h.observe(2.5)
        h.observe(4.0)
        h.observe(5.0)
        assert h.buckets[0] == 2  # 0.0 and 1.0
        assert h.buckets[1] == 1  # 2.0
        assert h.buckets[2] == 2  # 2.5 and 4.0
        assert h.buckets[3] == 1  # 5.0

    def test_negative_clamped_and_huge_capped(self):
        h = Histogram()
        h.observe(-5.0)
        assert h.minimum == 0.0
        h.observe(float(1 << 200))
        assert h.buckets[HISTOGRAM_BUCKETS - 1] == 1

    def test_snapshot_bucket_keys_are_upper_bounds(self):
        h = Histogram()
        h.observe(3.0)
        assert h.snapshot()["buckets"] == {"4": 1}


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a.calls")
        reg.inc("a.calls", 4)
        reg.set_gauge("a.depth", 7.0)
        reg.observe("a.wall_us", 12.5)
        assert reg.counter_value("a.calls") == 5
        snap = reg.snapshot()
        assert snap["counters"] == {"a.calls": 5}
        assert snap["gauges"] == {"a.depth": 7.0}
        assert snap["histograms"]["a.wall_us"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.observe("y", 3.0)
        reg.set_gauge("z", 1.5)
        json.dumps(reg.snapshot())  # must not raise

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.inc("shared")
                reg.observe("lat", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("shared") == 8000
        assert reg.snapshot()["histograms"]["lat"]["count"] == 8000

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.inc("x")
        reg.observe("y", 1.0)
        reg.set_gauge("z", 2.0)
        assert reg.counter_value("x") == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestSpans:
    def test_span_records_calls_and_timings(self, live_obs):
        with obs.span("t.outer"):
            pass
        snap = live_obs.snapshot()
        assert snap["counters"]["t.outer.calls"] == 1
        for suffix in ("wall_us", "cpu_us", "self_us"):
            assert snap["histograms"][f"t.outer.{suffix}"]["count"] == 1

    def test_nested_self_time_excludes_children(self, live_obs):
        import time

        with obs.span("t.parent"):
            with obs.span("t.child"):
                time.sleep(0.02)
        snap = live_obs.snapshot()["histograms"]
        parent_wall = snap["t.parent.wall_us"]["sum"]
        parent_self = snap["t.parent.self_us"]["sum"]
        child_wall = snap["t.child.wall_us"]["sum"]
        assert child_wall >= 20_000  # the sleep
        assert parent_wall >= child_wall
        # Self time is the parent's wall minus the child's — i.e. tiny.
        assert parent_self <= parent_wall - child_wall + 1.0

    def test_per_span_counter_rides_on_name(self, live_obs):
        with obs.span("t.batch") as sp:
            sp.add("journals", 9)
        assert live_obs.counter_value("t.batch.journals") == 9

    def test_span_pops_on_exception(self, live_obs):
        with pytest.raises(RuntimeError):
            with obs.span("t.boom"):
                raise RuntimeError
        # The stack unwound: a fresh span is a root again (self == wall).
        with obs.span("t.after"):
            pass
        snap = live_obs.snapshot()
        assert snap["counters"]["t.boom.calls"] == 1
        assert snap["counters"]["t.after.calls"] == 1

    def test_spans_on_threads_are_independent(self, live_obs):
        barrier = threading.Barrier(2)

        def worker(name):
            with obs.span(name):
                barrier.wait()

        threads = [
            threading.Thread(target=worker, args=(f"t.thread{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counters = live_obs.snapshot()["counters"]
        assert counters["t.thread0.calls"] == 1
        assert counters["t.thread1.calls"] == 1


class TestDisabledMode:
    def test_disabled_span_is_shared_noop(self):
        if obs.is_enabled():
            pytest.skip("REPRO_OBS is set in this environment")
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other") is NULL_SPAN  # no per-call allocation

    def test_disabled_calls_record_nothing(self):
        was_enabled = obs.is_enabled()
        obs.disable()
        try:
            obs.inc("ghost")
            obs.observe("ghost.us", 1.0)
            with obs.span("ghost.span") as sp:
                sp.add("n", 3)
            assert obs.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        finally:
            if was_enabled:
                obs.enable()

    def test_enable_disable_roundtrip(self):
        was_enabled = obs.is_enabled()
        try:
            reg = obs.enable()
            assert obs.is_enabled()
            assert obs.registry() is reg
            assert obs.enable() is reg  # idempotent: metrics survive
            obs.disable()
            assert not obs.is_enabled()
            assert isinstance(obs.registry(), NullRegistry)
        finally:
            if was_enabled:
                obs.enable()
            else:
                obs.disable()

    def test_live_span_type_only_when_enabled(self, live_obs):
        assert isinstance(obs.span("x"), Span)


class TestLedgerWiring:
    def test_workload_populates_expected_families(self, live_obs, populated):
        deployment, receipts = populated
        ledger = deployment.ledger
        live_obs.reset()  # drop the populate() noise; measure a known slice
        receipt = deployment.append("alice", b"obs-probe", clues=("OBS",))
        proof = ledger.get_proof(receipt.jsn)
        assert ledger.verify_journal(ledger.get_journal(receipt.jsn), proof)
        snap = ledger.metrics_snapshot()
        counters = snap["counters"]
        assert counters["ledger.append.calls"] == 1
        assert counters["ledger.get_proof.calls"] == 1
        assert counters["ledger.verify_journal.calls"] == 1
        assert counters["ecdsa.sign.calls"] >= 1
        assert counters["ecdsa.verify.calls"] >= 1
        assert counters["cmtree.flush.calls"] >= 1
        assert snap["histograms"]["ledger.append.wall_us"]["count"] == 1
        json.dumps(snap)  # the CLI/CI contract: serialisable as-is

    def test_append_batch_span_counts_journals(self, live_obs, deployment):
        requests = [
            deployment.request("alice", b"batch-%d" % i, clues=("B",)) for i in range(5)
        ]
        live_obs.reset()
        deployment.ledger.append_batch(requests)
        counters = deployment.ledger.metrics_snapshot()["counters"]
        assert counters["ledger.append_batch.journals"] == 5
        assert counters["ledger.admission.calls"] == 1
        assert counters["ledger.commit_batch.calls"] == 1

    def test_config_flag_enables_observability(self):
        from repro.core import Ledger, LedgerConfig

        was_enabled = obs.is_enabled()
        obs.disable()
        try:
            Ledger(LedgerConfig(uri="ledger://obs-flag", observability=True))
            assert obs.is_enabled()
            assert obs.snapshot()["counters"]  # genesis append was recorded
        finally:
            obs.registry().reset()
            if was_enabled:
                obs.enable()
            else:
                obs.disable()

    def test_metrics_snapshot_empty_when_disabled(self, deployment):
        if obs.is_enabled():
            pytest.skip("REPRO_OBS is set in this environment")
        snapshot = deployment.ledger.metrics_snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_file_stream_storage_spans(self, live_obs, tmp_path):
        from repro.storage.stream import FileStream

        live_obs.reset()
        stream = FileStream(tmp_path / "s.log", durable=True)
        stream.append(b"one")
        stream.append_many([b"two", b"three"])
        stream.close()
        FileStream(tmp_path / "s.log").close()
        counters = live_obs.snapshot()["counters"]
        assert counters["storage.append.calls"] == 1
        assert counters["storage.append_many.calls"] == 1
        assert counters["storage.append_many.records"] == 2
        assert counters["storage.fsync.calls"] >= 2
        assert counters["storage.open_scan.calls"] == 2
        assert counters["storage.open_scan.records"] == 3  # the reopen's scan
        assert counters["storage.bytes_written"] > 0

    def test_pubkey_cache_hit_rate_visible(self, live_obs):
        from repro.crypto import ecdsa

        ecdsa.clear_fast_path_caches()
        live_obs.reset()
        secret = 0x1234
        public = ecdsa.derive_public_key(secret)
        digest = b"\x07" * 32
        signature = ecdsa.sign_digest(secret, digest)
        # The window table builds once a key is hot (PUBKEY_CACHE_THRESHOLD
        # uses), so the first two verifies miss and the third hits.
        for _ in range(3):
            assert ecdsa.verify_digest(public, digest, signature)
        counters = live_obs.snapshot()["counters"]
        assert counters["ecdsa.pubkey_cache.miss"] == ecdsa.PUBKEY_CACHE_THRESHOLD
        assert counters["ecdsa.pubkey_cache.hit"] == 1
        assert counters["ecdsa.sign.calls"] == 1
        assert counters["ecdsa.verify.calls"] == 3
