"""Ledger proxy + shared storage: the Figure-1 payload/digest split."""

import dataclasses

import pytest

from repro.core.errors import AuthenticationError, LedgerError
from repro.core.proxy import LedgerProxy, PayloadRef
from repro.storage.shared import BlobIntegrityError, SharedStorage


@pytest.fixture()
def proxy(deployment):
    return LedgerProxy(deployment.ledger, inline_threshold=64)


class TestSharedStorage:
    def test_content_addressing(self):
        storage = SharedStorage()
        digest = storage.put(b"blob contents")
        assert storage.get(digest) == b"blob contents"
        assert digest in storage

    def test_deduplication_and_refcounts(self):
        storage = SharedStorage()
        a = storage.put(b"same")
        b = storage.put(b"same")
        assert a == b and len(storage) == 1
        assert not storage.release(a)  # one ref left
        assert storage.release(a)  # now erased
        assert a not in storage

    def test_missing_blob(self):
        with pytest.raises(KeyError):
            SharedStorage().get(b"\x00" * 32)

    def test_corruption_detected(self):
        storage = SharedStorage()
        digest = storage.put(b"blob")
        storage._blobs[digest] = b"tampered on disk"
        with pytest.raises(BlobIntegrityError):
            storage.get(digest)

    def test_release_unknown_is_noop(self):
        assert not SharedStorage().release(b"\x01" * 32)


class TestPayloadRef:
    def test_round_trip(self):
        ref = PayloadRef(digest=b"\x07" * 32, size=1234)
        assert PayloadRef.from_bytes(ref.to_bytes()) == ref
        assert PayloadRef.is_ref(ref.to_bytes())

    def test_arbitrary_bytes_are_not_refs(self):
        assert not PayloadRef.is_ref(b"just some payload")
        assert not PayloadRef.is_ref(b"")


class TestProxySubmission:
    def test_small_payload_goes_inline(self, deployment, proxy):
        receipt = proxy.append("alice", deployment.keys["alice"], b"small")
        journal = deployment.ledger.get_journal(receipt.jsn)
        assert journal.payload == b"small"
        assert len(proxy.storage) == 0

    def test_large_payload_split(self, deployment, proxy):
        blob = b"X" * 1000
        receipt = proxy.append("alice", deployment.keys["alice"], blob, clues=("BIG",))
        journal = deployment.ledger.get_journal(receipt.jsn)
        assert PayloadRef.is_ref(journal.payload)  # ledger holds the ref
        assert len(journal.payload) < 100  # fixed-size commitment
        assert len(proxy.storage) == 1
        resolved = proxy.get_journal(receipt.jsn)
        assert resolved.payload == blob
        assert resolved.ref is not None

    def test_tampered_upload_rejected(self, deployment, proxy):
        blob = b"Y" * 500
        request, upload = proxy.build_request("alice", blob)
        signed = request.signed_by(deployment.keys["alice"])
        with pytest.raises(AuthenticationError, match="tampered"):
            proxy.submit(signed, b"Z" * 500)
        assert len(proxy.storage) == 0  # nothing admitted

    def test_missing_upload_rejected(self, deployment, proxy):
        request, _upload = proxy.build_request("alice", b"W" * 500)
        signed = request.signed_by(deployment.keys["alice"])
        with pytest.raises(LedgerError, match="raw payload"):
            proxy.submit(signed)

    def test_inline_with_upload_rejected(self, deployment, proxy):
        request, upload = proxy.build_request("alice", b"tiny")
        assert upload is None
        signed = request.signed_by(deployment.keys["alice"])
        with pytest.raises(LedgerError):
            proxy.submit(signed, b"unexpected upload")

    def test_signature_covers_the_reference(self, deployment, proxy):
        # Swapping the referenced digest after signing must fail pi_c checks.
        blob = b"Q" * 500
        request, upload = proxy.build_request("alice", blob)
        signed = request.signed_by(deployment.keys["alice"])
        other_ref = PayloadRef(digest=b"\x09" * 32, size=500)
        forged = dataclasses.replace(signed, payload=other_ref.to_bytes())
        with pytest.raises(AuthenticationError):
            proxy.submit(forged, blob)

    def test_referenced_journal_verifies_on_ledger(self, deployment, proxy):
        blob = b"R" * 700
        receipt = proxy.append("alice", deployment.keys["alice"], blob)
        journal = deployment.ledger.get_journal(receipt.jsn)
        assert deployment.ledger.verify_journal(journal)
        # End-to-end integrity: resolved payload hashes to the committed ref.
        resolved = proxy.get_journal(receipt.jsn)
        from repro.crypto.hashing import sha256

        assert sha256(resolved.payload) == resolved.ref.digest

    def test_release_after_occult(self, deployment, proxy):
        from repro.core import OccultMode

        blob = b"S" * 900
        receipt = proxy.append("alice", deployment.keys["alice"], blob)
        journal = deployment.ledger.get_journal(receipt.jsn)
        deployment.ledger.commit_block()
        record = deployment.ledger.prepare_occult(receipt.jsn, OccultMode.SYNC, "privacy")
        approvals = deployment.sign_approval(["dba", "regulator"], record.approval_digest())
        deployment.ledger.execute_occult(record, approvals)
        assert proxy.release_payload(journal.payload)  # blob gone too
        assert len(proxy.storage) == 0
