"""LedgerClient SDK and the v2 session API surface."""

import dataclasses

import pytest

import repro.api as api
from repro.api import VerifyLevel, VerifyTarget
from repro.core import LedgerClient
from repro.core.errors import LedgerError, VerificationFailure


@pytest.fixture()
def client(deployment):
    return LedgerClient(
        "alice",
        deployment.keys["alice"],
        deployment.ledger,
        tsa_keys=deployment.tsa_keys,
    )


class TestLedgerClient:
    def test_append_stores_validated_receipt(self, deployment, client):
        receipt = client.append(b"hello", clues=("C",))
        assert client.receipt_for(receipt.jsn) is receipt
        journal = deployment.ledger.get_journal(receipt.jsn)
        assert journal.payload == b"hello"

    def test_sync_anchors_and_verify(self, deployment, client):
        receipts = [client.append(b"doc-%d" % i) for i in range(30)]
        added = client.sync_anchors()
        assert added == deployment.ledger._fam.num_epochs - 1
        for receipt in receipts:
            journal = deployment.ledger.get_journal(receipt.jsn)
            assert client.verify_journal(journal)

    def test_incremental_sync_is_cheap(self, deployment, client):
        for i in range(20):
            client.append(b"a-%d" % i)
        first = client.sync_anchors()
        for i in range(20):
            client.append(b"b-%d" % i)
        second = client.sync_anchors()
        assert first + second == deployment.ledger._fam.num_epochs - 1
        assert client.sync_anchors() == 0  # already current

    def test_verify_fails_for_tampered_journal(self, deployment, client):
        receipt = client.append(b"original")
        client.sync_anchors()
        journal = deployment.ledger.get_journal(receipt.jsn)
        forged = dataclasses.replace(journal, payload=b"tampered")
        assert not client.verify_journal(forged)

    def test_client_dasein_verification(self, deployment, client):
        receipt = client.append(b"payload")
        deployment.clock.advance(0.2)
        deployment.ledger.anchor_time()
        deployment.clock.advance(2.0)
        deployment.ledger.collect_time_evidence()
        client.sync_anchors()
        report = client.verify_dasein(receipt.jsn)
        assert report.dasein_complete

    def test_verify_clue(self, deployment, client):
        for i in range(6):
            client.append(b"item-%d" % i, clues=("LINE",))
        assert client.verify_clue("LINE")
        assert not client.verify_clue("GHOST")

    def test_live_rewrite_detected(self, deployment, client):
        """A server that rewrites the live epoch after the client verified it
        must be caught by the consistency check on the next sync."""
        client.append(b"first")
        client.sync_anchors()
        # Simulate a malicious in-place rewrite of the live epoch.
        fam = deployment.ledger._fam
        live = fam._epochs[-1]
        from repro.crypto.hashing import leaf_hash

        live._levels[0][-1] = leaf_hash(b"rewritten")
        # Invalidate cached parents so the forged tree is self-consistent.
        if len(live._levels) > 1:
            rebuilt = type(live)()
            for digest in live._levels[0]:
                rebuilt.append_leaf(digest)
            fam._epochs[-1] = rebuilt
        client.append(b"second")  # grows the (forged) epoch
        with pytest.raises(VerificationFailure):
            client.sync_anchors()


class TestSessionSurface:
    """The v2 session surface keeps the paper-API contract intact."""

    @pytest.fixture(autouse=True)
    def registry_hygiene(self):
        yield
        api.drop_ledger("ledger://facade", missing_ok=True)

    def test_create_and_duplicate(self):
        ledger = api.create("ledger://facade")
        assert api.get_ledger("ledger://facade") is ledger
        with pytest.raises(LedgerError):
            api.create("ledger://facade")

    def test_unknown_ledger(self):
        with pytest.raises(LedgerError):
            api.get_ledger("ledger://nope")

    def test_append_list_verify_flow(self):
        from repro.crypto import KeyPair, Role

        ledger = api.create("ledger://facade")
        user = KeyPair.generate(seed="facade-user")
        ledger.registry.register("u", Role.USER, user.public)
        session = api.connect("ledger://facade", client_id="u", keypair=user)
        for i in range(4):
            session.append(b"item-%d" % i, clue="DCI001")
        journals = session.list_tx("DCI001")
        assert len(journals) == 4
        assert session.verify(
            VerifyTarget.CLUE, key="DCI001", txdata=journals, level=VerifyLevel.SERVER
        )
        assert session.verify(
            VerifyTarget.CLUE, key="DCI001", txdata=journals, level=VerifyLevel.CLIENT
        )
        assert session.verify(
            VerifyTarget.TX, txdata=[journals[0]], level=VerifyLevel.CLIENT
        )

    def test_clue_verify_rejects_omission(self):
        from repro.crypto import KeyPair, Role

        ledger = api.create("ledger://facade")
        user = KeyPair.generate(seed="facade-user")
        ledger.registry.register("u", Role.USER, user.public)
        session = api.connect("ledger://facade", client_id="u", keypair=user)
        for i in range(4):
            session.append(b"item-%d" % i, clue="D")
        journals = session.list_tx("D")
        assert not session.verify(
            VerifyTarget.CLUE, key="D", txdata=journals[:-1], level=VerifyLevel.SERVER
        )

    def test_argument_validation(self):
        api.create("ledger://facade")
        session = api.connect("ledger://facade")
        with pytest.raises(LedgerError):
            session.append(b"x")  # no keypair bound, none passed
        with pytest.raises(LedgerError):
            session.verify(VerifyTarget.TX, txdata=[])
        with pytest.raises(LedgerError):
            session.verify(VerifyTarget.CLUE, key=None, txdata=None)


class TestOccultByClue:
    def test_stages_every_live_entry(self, populated):
        deployment, _receipts = populated
        count = len(deployment.ledger.list_tx("CLUE-A"))
        records = deployment.ledger.prepare_occult_by_clue("CLUE-A", reason="order")
        assert len(records) == count
        # Execute them all; the clue count survives, payloads do not.
        for record in records:
            approvals = deployment.sign_approval(
                ["dba", "regulator"], record.approval_digest()
            )
            deployment.ledger.execute_occult(record, approvals)
        deployment.ledger.reorganize()
        assert deployment.ledger.clue_entry_count("CLUE-A") == count
        from repro.core import JournalOccultedError

        for jsn in deployment.ledger.list_tx("CLUE-A"):
            with pytest.raises(JournalOccultedError):
                deployment.ledger.get_journal(jsn)

    def test_skips_already_occulted(self, populated):
        deployment, _receipts = populated
        first = deployment.ledger.prepare_occult_by_clue("CLUE-A")[0]
        approvals = deployment.sign_approval(["dba", "regulator"], first.approval_digest())
        deployment.ledger.execute_occult(first, approvals)
        remaining = deployment.ledger.prepare_occult_by_clue("CLUE-A")
        assert all(r.target_jsn != first.target_jsn for r in remaining)

    def test_audit_passes_after_occult_by_clue(self, populated):
        deployment, _receipts = populated
        from repro.core import dasein_audit

        for record in deployment.ledger.prepare_occult_by_clue("CLUE-A"):
            approvals = deployment.sign_approval(
                ["dba", "regulator"], record.approval_digest()
            )
            deployment.ledger.execute_occult(record, approvals)
        deployment.ledger.reorganize()
        report = dasein_audit(
            deployment.ledger.export_view(), tsa_keys=deployment.tsa_keys
        )
        assert report.passed
