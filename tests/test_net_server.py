"""End-to-end tests for the asyncio ledger server and verifying remote client.

The load-bearing test is byte-identity: a remote client over a real TCP
socket must receive byte-for-byte the receipts and proofs the in-process
API produces for the same requests — the network layer is transport, not
semantics.  The rest covers the hostile-world contract: concurrent clients,
a server killed mid-flight, slow and malformed peers (each costing only its
own connection), graceful drain, typed remote errors, and the remote light
client's anchor sync catching tampering.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro import ClientRequest, KeyPair, Ledger, LedgerConfig, Role, SimClock
from repro.api import connect
from repro.core.errors import (
    AuthenticationError,
    AuthorizationError,
    JournalNotFoundError,
    VerificationFailure,
)
from repro.net import (
    FrameDecoder,
    ProtocolError,
    RemoteLedgerClient,
    RemoteLedgerError,
    RemoteLedgerSession,
    ServerThread,
    encode_frame,
)
from repro.service import ServiceClosedError

URI = "ledger://net-test"
CLIENTS = ("alice", "bob", "carol", "dan")


def make_ledger(
    uri: str = URI, fractal_height: int = 4, block_size: int = 4
) -> tuple[Ledger, dict[str, KeyPair]]:
    ledger = Ledger(
        LedgerConfig(uri=uri, fractal_height=fractal_height, block_size=block_size),
        clock=SimClock(),
    )
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"net:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    return ledger, keys


def make_request(
    keys: dict[str, KeyPair],
    client: str,
    tag: str,
    clues: tuple[str, ...] = (),
    uri: str = URI,
) -> ClientRequest:
    return ClientRequest.build(
        uri,
        client,
        f"{client}:{tag}".encode(),
        clues=clues,
        nonce=tag.encode(),
        client_timestamp=1.0,
    ).signed_by(keys[client])


def remote_client(served: ServerThread, member: str | None, keys) -> RemoteLedgerClient:
    host, port = served.address
    return RemoteLedgerClient(
        host,
        port,
        member_id=member,
        keypair=keys[member] if member else None,
        expected_lsp_key=served.server.ledger.registry.public_key("__lsp__"),
    )


class TestByteIdentity:
    def test_remote_equals_inprocess(self):
        """Receipts, proofs, and roots over the socket are byte-identical to
        the in-process API fed the same requests in the same order."""
        server_ledger, keys = make_ledger()
        mirror, _ = make_ledger()  # same uri -> same seeded LSP key, same clock
        requests = [make_request(keys, "alice", f"r{i}", ("IDENT",)) for i in range(10)]
        with ServerThread(server_ledger) as served:
            client = remote_client(served, None, keys)
            try:
                remote_receipts = [
                    client.append(request=request) for request in requests
                ]
                mirror_receipts = [mirror.append(request) for request in requests]
                for remote_r, mirror_r in zip(remote_receipts, mirror_receipts):
                    assert remote_r.to_bytes() == mirror_r.to_bytes()
                jsns = [receipt.jsn for receipt in remote_receipts]
                remote_proofs = client.get_proofs(jsns, anchored=False)
                for jsn, proof in zip(jsns, remote_proofs):
                    assert proof.to_bytes() == mirror.get_proof(
                        jsn, anchored=False
                    ).to_bytes()
                root = client._wait(client._remote.get_root())
                assert root["root"] == mirror.current_root()
                assert root["state_root"] == mirror.state_root()
                assert root["size"] == mirror.size
            finally:
                client.close()

    def test_batch_append_receipts_verify(self):
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            client = remote_client(served, "bob", keys)
            try:
                receipts = client.append_batch(
                    [(f"batch {i}".encode(), ("BATCH",)) for i in range(6)]
                )
                assert [r.jsn for r in receipts] == sorted(r.jsn for r in receipts)
                assert all(
                    r.verify(client.lsp_public_key) for r in receipts
                )
            finally:
                client.close()


class TestConcurrentClients:
    def test_four_clients_race_and_all_verify(self):
        """≥4 concurrent remote clients; every receipt verifies, the final
        ledger holds every append exactly once."""
        ledger, keys = make_ledger(block_size=8)
        per_client = 12
        failures: list[BaseException] = []
        receipts_by_name: dict[str, list] = {}

        def run(name: str, served: ServerThread) -> None:
            try:
                client = remote_client(served, name, keys)
                try:
                    window = [
                        client.submit(
                            make_request(keys, name, f"c{i}", (name.upper(),))
                        )
                        for i in range(per_client)
                    ]
                    receipts_by_name[name] = [f.result(30.0) for f in window]
                finally:
                    client.close()
            except BaseException as exc:  # surfaces in the main thread
                failures.append(exc)

        base_size = ledger.size  # genesis journal etc.
        with ServerThread(ledger) as served:
            threads = [
                threading.Thread(target=run, args=(name, served)) for name in CLIENTS
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not failures, failures
            all_jsns = [
                receipt.jsn
                for receipts in receipts_by_name.values()
                for receipt in receipts
            ]
            assert len(all_jsns) == len(CLIENTS) * per_client
            assert len(set(all_jsns)) == len(all_jsns)
            assert ledger.size == base_size + len(CLIENTS) * per_client

    def test_pipelined_responses_can_complete_out_of_order(self):
        """A fast ping is not head-of-line blocked behind a bulk proof
        fetch issued first on the same connection."""
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            client = remote_client(served, "alice", keys)
            try:
                receipts = client.append_batch(
                    [(f"fill {i}".encode(), ()) for i in range(16)]
                )
                jsns = [receipt.jsn for receipt in receipts]
                slow = client._submit(client._remote.get_proofs(jsns, False))
                fast = client._submit(client._remote.ping())
                assert fast.result(10.0) == ledger.size
                assert len(slow.result(30.0)) == 16
            finally:
                client.close()


class TestFailureModes:
    def test_server_killed_mid_flight(self):
        """kill() drops connections without drain: in-flight and subsequent
        calls fail with a typed error, nothing hangs."""
        ledger, keys = make_ledger()
        served = ServerThread(ledger)
        client = remote_client(served, "alice", keys)
        try:
            client.append(b"before the crash", ("CRASH",))
            served.kill()
            with pytest.raises((RemoteLedgerError, ServiceClosedError)):
                for i in range(50):  # one of these hits the dead socket
                    client.append(f"after the crash {i}".encode())
        finally:
            client.close()
            served.close()

    def test_slow_peer_gets_served_and_does_not_block_others(self):
        """A peer trickling a frame byte-by-byte still gets its response;
        a concurrent healthy client is never blocked behind it."""
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            slow = socket.create_connection((host, port))
            slow.settimeout(30.0)
            try:
                frame = encode_frame({"id": 7, "op": "ping"})
                for i in range(0, len(frame), 2):
                    slow.sendall(frame[i : i + 2])
                    time.sleep(0.01)
                    if i == 2:  # mid-frame: the healthy client proceeds
                        healthy = remote_client(served, "alice", keys)
                        try:
                            healthy.append(b"not blocked", ())
                        finally:
                            healthy.close()
                decoder = FrameDecoder()
                messages: list = []
                while not messages:
                    messages = decoder.feed(slow.recv(4096))
                assert messages[0]["id"] == 7
                assert messages[0]["ok"] is True
            finally:
                slow.close()

    def test_malformed_frame_poisons_only_its_connection(self):
        """Garbage framing: best-effort ProtocolError frame, connection
        closed — while another client keeps working."""
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            bad = socket.create_connection((host, port))
            bad.settimeout(30.0)
            try:
                bad.sendall(struct.pack(">I", 0))  # zero-length frame
                chunks = bytearray()
                while True:
                    data = bad.recv(4096)
                    if not data:
                        break
                    chunks += data
                if chunks:  # best-effort error frame before hang-up
                    (message,) = FrameDecoder().feed(bytes(chunks))
                    assert message["ok"] is False
                    assert message["error"]["type"] == "ProtocolError"
            finally:
                bad.close()
            survivor = remote_client(served, "bob", keys)
            try:
                receipt = survivor.append(b"unharmed", ())
                assert receipt.verify(survivor.lsp_public_key)
            finally:
                survivor.close()

    def test_oversized_length_prefix_rejected(self):
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            peer = socket.create_connection(served.address)
            peer.settimeout(30.0)
            try:
                peer.sendall(struct.pack(">I", 64 * 1024 * 1024))
                chunks = bytearray()
                while True:
                    data = peer.recv(4096)
                    if not data:
                        break  # server hung up on this peer — as specified
                    chunks += data
            finally:
                peer.close()

    def test_oversized_response_settles_as_typed_error(self):
        """A result too big for the server's frame cap must not orphan the
        request: the server downgrades it to a small ProtocolError frame,
        and the connection stays usable for later requests."""
        ledger, keys = make_ledger()
        with ServerThread(ledger, max_frame_bytes=2048) as served:
            client = remote_client(served, "alice", keys)
            try:
                receipt = client.append(b"seed", ())
                with pytest.raises(ProtocolError, match="response undeliverable"):
                    client.get_proofs([receipt.jsn] * 200, anchored=False)
                # The id was settled and the stream is intact.
                assert client.ping() == ledger.size
                assert client._remote._pending == {}
            finally:
                client.close()

    def test_oversized_request_does_not_leak_pending(self):
        """A request the client's own frame cap refuses to encode raises
        synchronously AND drops its pending entry — no future leaks for
        the life of the connection."""
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            client = RemoteLedgerClient(
                host,
                port,
                member_id="alice",
                keypair=keys["alice"],
                max_frame_bytes=1024,
            )
            try:
                with pytest.raises(ProtocolError):
                    client.append(b"x" * 64 * 1024, ())
                assert client._remote._pending == {}
                assert client.ping() == ledger.size
            finally:
                client.close()

    def test_drain_on_shutdown_settles_every_submitted_request(self):
        """close(drain=True): every pipelined append already on the wire is
        answered — a verified receipt or a typed refusal, never a hang."""
        ledger, keys = make_ledger(block_size=8)
        served = ServerThread(ledger)
        client = remote_client(served, "carol", keys)
        try:
            window = [
                client.submit(make_request(keys, "carol", f"d{i}", ()))
                for i in range(24)
            ]
            served.close(drain=True)
            settled = 0
            for future in window:
                try:
                    receipt = future.result(30.0)
                    assert receipt.verify(client.lsp_public_key)
                except (RemoteLedgerError, ServiceClosedError):
                    pass
                settled += 1
            assert settled == len(window)
            # Everything the server admitted is durably in the ledger.
            admitted = {r.result().jsn for r in window if r.exception() is None}
            assert admitted <= set(range(ledger.size))
        finally:
            client.close()
            served.close()


class TestTypedRemoteErrors:
    def test_unregistered_member_raises_authentication_error(self):
        ledger, keys = make_ledger()
        mallory = KeyPair.generate(seed="net:mallory")
        with ServerThread(ledger) as served:
            host, port = served.address
            client = RemoteLedgerClient(
                host, port, member_id="mallory", keypair=mallory
            )
            try:
                with pytest.raises(AuthenticationError):
                    client.append(b"who am i", ())
            finally:
                client.close()

    def test_missing_journal_raises_not_found(self):
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            client = remote_client(served, "alice", keys)
            try:
                with pytest.raises(JournalNotFoundError):
                    client.get_journal(999)
            finally:
                client.close()

    def test_unknown_op_raises_protocol_error(self):
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            client = remote_client(served, "alice", keys)
            try:
                with pytest.raises(ProtocolError):
                    client._wait(client._remote._call("no_such_op"))
            finally:
                client.close()

    def test_wrong_lsp_key_fails_handshake(self):
        ledger, keys = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with pytest.raises(VerificationFailure):
                RemoteLedgerClient(
                    host,
                    port,
                    expected_lsp_key=KeyPair.generate(seed="not-the-lsp").public,
                )


class TestRemoteLightClient:
    def test_anchor_sync_and_local_verification(self):
        """The remote light client anchors sealed epochs + tracks the live
        epoch, then verifies journals locally in O(delta)."""
        ledger, keys = make_ledger(fractal_height=3)
        with ServerThread(ledger) as served:
            client = remote_client(served, "alice", keys)
            try:
                receipts = [
                    client.append(f"epoch filler {i}".encode(), ("SYNC",))
                    for i in range(12)  # spills past epoch 0 (capacity 8)
                ]
                added = client.sync_anchors()
                assert added >= 1  # epoch 0 sealed and anchored
                for receipt in receipts:
                    journal = client.get_journal(receipt.jsn)
                    assert client.verify_journal(journal)
                assert client.verify_clue("SYNC")
            finally:
                client.close()

    def test_forged_journal_fails_local_verification(self):
        ledger, keys = make_ledger(fractal_height=3)
        with ServerThread(ledger) as served:
            client = remote_client(served, "bob", keys)
            try:
                receipt = client.append(b"the truth", ("TAMPER",))
                client.sync_anchors()
                journal = client.get_journal(receipt.jsn)
                assert client.verify_journal(journal)
                import dataclasses

                forged = dataclasses.replace(journal, payload=b"a lie")
                assert not client.verify_journal(forged)
            finally:
                client.close()

    def test_sync_detects_live_root_swap(self):
        """A server that rewrites committed history is caught on the next
        sync: the consistency proof cannot bridge the two roots."""
        ledger, keys = make_ledger(fractal_height=4)
        with ServerThread(ledger) as served:
            client = remote_client(served, "carol", keys)
            try:
                client.append(b"observed state", ())
                client.sync_anchors()
                # Simulate equivocation: hand the client a different history
                # under the same claimed sizes by corrupting its own state.
                client.state.live_root = b"\x00" * 32
                client.append(b"more", ())
                with pytest.raises(VerificationFailure):
                    client.sync_anchors()
            finally:
                client.close()


class TestApiConnect:
    def test_connect_remote_round_trip(self):
        ledger, keys = make_ledger(fractal_height=3)
        with ServerThread(ledger) as served:
            host, port = served.address
            session = connect(
                f"ledger://{host}:{port}",
                client_id="dan",
                keypair=keys["dan"],
                expected_lsp_key=ledger.registry.public_key("__lsp__"),
            )
            assert isinstance(session, RemoteLedgerSession)
            with session:
                receipts = [
                    session.append(f"api {i}".encode(), clue="API") for i in range(9)
                ]
                assert [j.jsn for j in session.list_tx("API")] == [
                    r.jsn for r in receipts
                ]
                session.sync_anchors()
                assert session.verify_journal(session.list_tx("API")[0])
                assert session.verify_clue("API")
                proofs = session.get_proofs(
                    [r.jsn for r in receipts], anchored=False
                )
                assert len(proofs) == len(receipts)

    def test_registered_lgid_still_wins_over_remote_syntax(self):
        """connect() only goes remote for address-shaped lgids that are not
        locally registered — the local registry keeps priority."""
        from repro.api import create, drop_ledger

        create("ledger://127.0.0.1:1")
        try:
            session = connect("ledger://127.0.0.1:1")
            assert not isinstance(session, RemoteLedgerSession)
            session.close()
        finally:
            drop_ledger("ledger://127.0.0.1:1")


class TestRegistration:
    def test_register_then_append_as_new_member(self):
        ledger, keys = make_ledger()
        eve = KeyPair.generate(seed="net:eve")
        with ServerThread(ledger, allow_register=True) as served:
            client = remote_client(served, "alice", keys)
            try:
                client.register("eve", "user", eve.public)
            finally:
                client.close()
            host, port = served.address
            as_eve = RemoteLedgerClient(host, port, member_id="eve", keypair=eve)
            try:
                receipt = as_eve.append(b"hello from eve", ())
                assert receipt.verify(as_eve.lsp_public_key)
            finally:
                as_eve.close()

    def test_register_refused_by_default(self):
        """The register op is governance: a server not started with
        allow_register=True refuses it for any role, so an anonymous peer
        cannot mint CA-certified members."""
        ledger, keys = make_ledger()
        eve = KeyPair.generate(seed="net:eve")
        with ServerThread(ledger) as served:
            client = remote_client(served, None, keys)
            try:
                with pytest.raises(AuthorizationError):
                    client.register("eve", "user", eve.public)
                assert "eve" not in ledger.registry.all_members()
            finally:
                client.close()

    def test_register_privileged_roles_refused_even_when_allowed(self):
        """allow_register=True only opens plain-user self-registration;
        dba/regulator/lsp would enter destructive-op signer sets and can
        never be minted over the wire."""
        ledger, keys = make_ledger()
        mallory = KeyPair.generate(seed="net:mallory")
        with ServerThread(ledger, allow_register=True) as served:
            client = remote_client(served, None, keys)
            try:
                for role in ("dba", "regulator", "lsp"):
                    with pytest.raises(AuthorizationError):
                        client.register(f"mallory-{role}", role, mallory.public)
                    assert f"mallory-{role}" not in ledger.registry.all_members()
            finally:
                client.close()
