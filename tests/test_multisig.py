"""Multi-signature sets (purge/occult prerequisites)."""

import pytest

from repro.crypto import CertificateAuthority, KeyPair, MultiSignature, Role, sha256
from repro.crypto.multisig import MultiSignatureError


@pytest.fixture()
def parties():
    ca = CertificateAuthority("root")
    keys = {name: KeyPair.generate(seed=name) for name in ("dba", "alice", "bob")}
    roles = {"dba": Role.DBA, "alice": Role.USER, "bob": Role.USER}
    certs = {name: ca.issue(name, roles[name], kp.public) for name, kp in keys.items()}
    return keys, certs


def test_all_required_signatures_verify(parties):
    keys, certs = parties
    digest = sha256(b"operation")
    ms = MultiSignature(digest=digest)
    for name, keypair in keys.items():
        ms.add(name, keypair.sign(digest))
    ms.verify(certs)  # must not raise
    assert ms.is_satisfied_by(certs)


def test_missing_signer_detected(parties):
    keys, certs = parties
    digest = sha256(b"operation")
    ms = MultiSignature(digest=digest)
    ms.add("dba", keys["dba"].sign(digest))
    with pytest.raises(MultiSignatureError, match="missing"):
        ms.verify(certs)


def test_invalid_signature_detected(parties):
    keys, certs = parties
    digest = sha256(b"operation")
    ms = MultiSignature(digest=digest)
    ms.add("dba", keys["dba"].sign(digest))
    ms.add("alice", keys["alice"].sign(sha256(b"other digest")))  # wrong digest
    ms.add("bob", keys["bob"].sign(digest))
    with pytest.raises(MultiSignatureError, match="invalid"):
        ms.verify(certs)


def test_signature_by_wrong_key_detected(parties):
    keys, certs = parties
    digest = sha256(b"operation")
    ms = MultiSignature(digest=digest)
    ms.add("dba", keys["dba"].sign(digest))
    ms.add("alice", keys["bob"].sign(digest))  # bob signs as alice
    ms.add("bob", keys["bob"].sign(digest))
    assert not ms.is_satisfied_by(certs)


def test_extra_signers_allowed(parties):
    keys, certs = parties
    digest = sha256(b"operation")
    ms = MultiSignature(digest=digest)
    for name, keypair in keys.items():
        ms.add(name, keypair.sign(digest))
    only_dba = {"dba": certs["dba"]}
    ms.verify(only_dba)  # alice/bob are extra, still fine


def test_conflicting_resign_rejected(parties):
    keys, _certs = parties
    digest = sha256(b"operation")
    ms = MultiSignature(digest=digest)
    ms.add("dba", keys["dba"].sign(digest))
    with pytest.raises(MultiSignatureError, match="conflicting"):
        ms.add("dba", keys["alice"].sign(digest))
    # Identical re-add is idempotent.
    ms.add("dba", keys["dba"].sign(digest))
