"""ECDSA over P-256: curve arithmetic, RFC 6979 vectors, sign/verify."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ecdsa import (
    CURVE_P256,
    Point,
    Signature,
    derive_public_key,
    is_on_curve,
    point_add,
    rfc6979_nonce,
    scalar_multiply,
    sign_digest,
    verify_digest,
)

G = CURVE_P256.generator
N = CURVE_P256.n


def test_generator_is_on_curve():
    assert is_on_curve(G)


def test_group_order_annihilates_generator():
    assert scalar_multiply(N, G).is_infinity()


def test_scalar_multiply_small_values_agree_with_addition():
    two_g = point_add(G, G)
    three_g = point_add(two_g, G)
    assert scalar_multiply(2, G) == two_g
    assert scalar_multiply(3, G) == three_g
    assert is_on_curve(two_g) and is_on_curve(three_g)


def test_point_addition_with_infinity_identity():
    infinity = Point(0, 0)
    assert point_add(G, infinity) == G
    assert point_add(infinity, G) == G


def test_addition_of_inverse_points_is_infinity():
    neg_g = Point(G.x, (-G.y) % CURVE_P256.p)
    assert point_add(G, neg_g).is_infinity()


def test_scalar_distributivity():
    # (a + b) * G == a*G + b*G
    a, b = 0x1234567, 0x89ABCDE
    assert scalar_multiply(a + b, G) == point_add(scalar_multiply(a, G), scalar_multiply(b, G))


# RFC 6979, appendix A.2.5: ECDSA on P-256 with SHA-256, message "sample".
RFC6979_KEY = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
RFC6979_K_SAMPLE = 0xA6E3C57DD01ABE90086538398355DD4C3B17AA873382B0F24D6129493D8AAD60
RFC6979_R_SAMPLE = 0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716
RFC6979_S_SAMPLE = 0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8


def test_rfc6979_nonce_known_answer():
    digest = hashlib.sha256(b"sample").digest()
    assert rfc6979_nonce(RFC6979_KEY, digest) == RFC6979_K_SAMPLE


def test_rfc6979_signature_known_answer():
    digest = hashlib.sha256(b"sample").digest()
    signature = sign_digest(RFC6979_KEY, digest)
    assert signature.r == RFC6979_R_SAMPLE
    # We canonicalise to low-s; the RFC vector's s is already low for this case
    # or its complement — accept either canonical form.
    assert signature.s in (RFC6979_S_SAMPLE, N - RFC6979_S_SAMPLE)
    public = derive_public_key(RFC6979_KEY)
    assert verify_digest(public, digest, signature)


def test_rfc6979_public_key_known_answer():
    public = derive_public_key(RFC6979_KEY)
    assert public.x == 0x60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6
    assert public.y == 0x7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299


def test_rfc6979_message_test_known_answer():
    # RFC 6979 A.2.5, message "test".
    digest = hashlib.sha256(b"test").digest()
    assert (
        rfc6979_nonce(RFC6979_KEY, digest)
        == 0xD16B6AE827F17175E040871A1C7EC3500192C4C92677336EC2537ACAEE0008E0
    )
    signature = sign_digest(RFC6979_KEY, digest)
    assert signature.r == 0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367
    expected_s = 0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083
    assert signature.s in (expected_s, N - expected_s)
    assert verify_digest(derive_public_key(RFC6979_KEY), digest, signature)


def test_nist_p256_scalar_multiplication_vector():
    # NIST CAVP / SEC: 2G on P-256.
    two_g = scalar_multiply(2, G)
    assert two_g.x == 0x7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978
    assert two_g.y == 0x07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1


def test_low_order_scalar_vectors():
    # k*G for k = n-1 equals -G (same x, negated y).
    minus_g = scalar_multiply(N - 1, G)
    assert minus_g.x == G.x
    assert minus_g.y == CURVE_P256.p - G.y


def test_sign_verify_round_trip():
    secret = 0xDEADBEEF12345
    public = derive_public_key(secret)
    digest = hashlib.sha256(b"message").digest()
    signature = sign_digest(secret, digest)
    assert verify_digest(public, digest, signature)


def test_signature_is_low_s():
    digest = hashlib.sha256(b"whatever").digest()
    signature = sign_digest(12345, digest)
    assert signature.s <= N // 2


def test_verify_rejects_wrong_digest():
    secret = 42424242
    public = derive_public_key(secret)
    signature = sign_digest(secret, hashlib.sha256(b"a").digest())
    assert not verify_digest(public, hashlib.sha256(b"b").digest(), signature)


def test_verify_rejects_wrong_key():
    digest = hashlib.sha256(b"msg").digest()
    signature = sign_digest(111, digest)
    assert not verify_digest(derive_public_key(222), digest, signature)


def test_verify_rejects_out_of_range_signature_components():
    secret, digest = 7, hashlib.sha256(b"x").digest()
    public = derive_public_key(secret)
    good = sign_digest(secret, digest)
    assert not verify_digest(public, digest, Signature(0, good.s))
    assert not verify_digest(public, digest, Signature(good.r, 0))
    assert not verify_digest(public, digest, Signature(N, good.s))


def test_verify_rejects_off_curve_key():
    digest = hashlib.sha256(b"x").digest()
    signature = sign_digest(7, digest)
    assert not verify_digest(Point(1, 1), digest, signature)
    assert not verify_digest(Point(0, 0), digest, signature)


def test_signature_serialization_round_trip():
    signature = sign_digest(99, hashlib.sha256(b"ser").digest())
    assert Signature.from_bytes(signature.to_bytes()) == signature


def test_signature_from_bytes_rejects_bad_length():
    with pytest.raises(ValueError):
        Signature.from_bytes(b"\x00" * 63)


def test_sign_rejects_out_of_range_secret():
    digest = hashlib.sha256(b"x").digest()
    with pytest.raises(ValueError):
        sign_digest(0, digest)
    with pytest.raises(ValueError):
        sign_digest(N, digest)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=N - 1), st.binary(min_size=1, max_size=64))
def test_sign_verify_property(secret, message):
    digest = hashlib.sha256(message).digest()
    public = derive_public_key(secret)
    signature = sign_digest(secret, digest)
    assert verify_digest(public, digest, signature)
    # Any single-bit flip in the digest must invalidate the signature.
    flipped = bytes([digest[0] ^ 1]) + digest[1:]
    assert not verify_digest(public, flipped, signature)
