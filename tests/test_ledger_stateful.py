"""Stateful property testing: random operation sequences keep the ledger auditable.

A hypothesis state machine drives arbitrary interleavings of appends (by
several members, with/without clues), time anchors, block commits, occults,
and purges — after every step the system invariants must hold, and at the
end the full Dasein-complete audit must pass.  This is the strongest
"no sequence of legitimate operations can wedge the ledger into an
unauditable state" guarantee in the suite.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule
from hypothesis import strategies as st

from repro.core import OccultMode, dasein_audit
from repro.core.errors import MutationError

from conftest import Deployment


class LedgerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.deployment = Deployment(fractal_height=2, block_size=3)
        self.occultable: list[int] = []
        self.anchors_pending = False

    # ------------------------------------------------------------------ ops

    @rule(
        who=st.sampled_from(["alice", "bob"]),
        size=st.integers(min_value=0, max_value=64),
        with_clue=st.booleans(),
    )
    def append(self, who, size, with_clue):
        clues = ("STATE-CLUE",) if with_clue else ()
        receipt = self.deployment.append(who, bytes([len(self.occultable) % 256]) * size, clues)
        self.occultable.append(receipt.jsn)
        self.deployment.clock.advance(0.05)

    @rule()
    def anchor_time(self):
        self.deployment.ledger.anchor_time()
        self.anchors_pending = True
        self.deployment.clock.advance(0.05)

    @rule()
    def collect_evidence(self):
        self.deployment.clock.advance(1.2)
        self.deployment.ledger.collect_time_evidence()
        self.anchors_pending = False

    @rule()
    def commit_block(self):
        self.deployment.ledger.commit_block()

    @precondition(lambda self: self.occultable)
    @rule(
        mode=st.sampled_from([OccultMode.SYNC, OccultMode.ASYNC]),
        pick=st.integers(min_value=0, max_value=10**6),
    )
    def occult_one(self, mode, pick):
        jsn = self.occultable.pop(pick % len(self.occultable))
        if jsn < self.deployment.ledger.genesis_start:
            return
        try:
            record = self.deployment.ledger.prepare_occult(jsn, mode, reason="fuzz")
        except MutationError:
            return
        approvals = self.deployment.sign_approval(
            ["dba", "regulator"], record.approval_digest()
        )
        self.deployment.ledger.execute_occult(record, approvals)

    @rule()
    def reorganize(self):
        self.deployment.ledger.reorganize()

    @rule(block_pick=st.integers(min_value=0, max_value=10**6))
    def purge(self, block_pick):
        ledger = self.deployment.ledger
        boundaries = [
            b.end_jsn for b in ledger.blocks if b.end_jsn > ledger.genesis_start
        ]
        if not boundaries:
            return
        boundary = boundaries[block_pick % len(boundaries)]
        try:
            pseudo, record = ledger.prepare_purge(boundary, reason="fuzz purge")
        except MutationError:
            return
        signers = list(ledger.purge_required_signers(boundary))
        approvals = self.deployment.sign_approval(signers, record.approval_digest())
        ledger.execute_purge(pseudo, record, approvals)
        self.occultable = [j for j in self.occultable if j >= boundary]

    # ------------------------------------------------------------ invariants

    @invariant()
    def sizes_consistent(self):
        ledger = self.deployment.ledger
        assert ledger.size == ledger._fam.size
        assert len(ledger._stream) == ledger.size

    @invariant()
    def retained_hashes_always_available(self):
        ledger = self.deployment.ledger
        for jsn in range(max(ledger.genesis_start, ledger.size - 5), ledger.size):
            assert len(ledger.retained_hash(jsn)) == 32

    @invariant()
    def latest_journal_verifies(self):
        ledger = self.deployment.ledger
        if ledger.size > ledger.genesis_start:
            jsn = ledger.size - 1
            if not ledger.is_occulted(jsn):
                journal = ledger.get_journal(jsn)
                assert ledger.verify_journal(journal)

    def teardown(self):
        # The end-state must always be fully auditable.
        self.deployment.clock.advance(1.5)
        self.deployment.ledger.collect_time_evidence()
        view = self.deployment.ledger.export_view()
        report = dasein_audit(view, tsa_keys=self.deployment.tsa_keys)
        assert report.passed, report.failures()


LedgerMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)
TestLedgerStateMachine = LedgerMachine.TestCase
