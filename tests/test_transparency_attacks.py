"""End-to-end attack scenarios: forked servers, censors, honest controls.

These tests run real TCP servers (the same :class:`~repro.net.server`
stack CI stresses elsewhere) against *stock* clients — no test-only
verification hooks.  Detection must come from the shipped transparency
surface: STH gossip for forks, ack deadlines for censorship, and every
piece of produced evidence must verify offline from its serialized bytes
alone.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import KeyPair
from repro.transparency.attacks import (
    CensoringLedgerServer,
    ForkingServer,
    run_censorship,
    run_fork_equivocation,
    run_honest_server,
)
from repro.transparency import (
    CensorshipEvidence,
    EquivocationEvidence,
    Witness,
    verify_equivocation,
)


class TestForkEquivocation:
    def test_stock_clients_detect_fork_via_sth_gossip(self, tmp_path):
        result = run_fork_equivocation(tmp_path)
        assert result.detected
        assert result.evidence_verified
        assert "fork-heads" in result.evidence_kinds

    def test_each_fork_is_locally_flawless(self, tmp_path):
        """The attack is invisible to any client that talks to one fork:
        appends verify, proofs verify, a solo witness round stays clean."""
        with ForkingServer(tmp_path) as fork:
            fork.seed(4)
            fork.diverge(b"pays bob", b"pays mallory")
            fork.start()
            from repro.transparency.attacks import _connect

            for address in (fork.address_a, fork.address_b):
                witness = Witness(fork.lsp_public_key)
                with _connect(address) as session:
                    head = session.get_sth()
                    assert head.verify(fork.lsp_public_key)
                    assert witness.audit(session).clean
                assert not witness.evidence

    def test_evidence_survives_serialization(self, tmp_path):
        with ForkingServer(tmp_path) as fork:
            fork.seed(4)
            fork.diverge(b"pays bob", b"pays mallory")
            fork.start()
            from repro.transparency.attacks import _connect

            witness = Witness(fork.lsp_public_key)
            with _connect(fork.address_a) as session:
                witness.audit(session)
            with _connect(fork.address_b) as session:
                witness.audit(session)
            assert witness.evidence
            for evidence in witness.evidence:
                decoded = EquivocationEvidence.from_bytes(evidence.to_bytes())
                assert verify_equivocation(decoded, fork.lsp_public_key)
                # The transcript is key-bound: a different LSP refutes it.
                other = KeyPair.generate(seed="some-other-lsp").public
                assert not verify_equivocation(decoded, other)


class TestCensorship:
    def test_acked_then_dropped_yields_unrefutable_evidence(self, tmp_path):
        result = run_censorship(tmp_path)
        assert result.detected
        assert result.evidence_verified
        assert result.evidence_kinds == ("censorship",)
        assert result.refutation_succeeded is False
        # The forged receipt DID fool the stock client — receipts alone
        # cannot prove liveness; that is exactly what the ack closes.
        assert "fooled the client: True" in result.detail

    def test_evidence_matures_only_past_deadline(self, tmp_path):
        result = run_censorship(tmp_path, deadline_epochs=2)
        assert result.detected
        assert result.refutation_succeeded is False


class TestHonestControl:
    def test_honest_server_triggers_nothing(self, tmp_path):
        result = run_honest_server(tmp_path)
        assert not result.detected
        assert result.evidence_kinds == ()
        assert result.alarms == ()
        # The honest server refutes the censorship accusation with an
        # inclusion proof for the acked request.
        assert result.refutation_succeeded is True

    @pytest.mark.parametrize("rounds,appends", [(1, 2), (2, 7), (4, 3)])
    def test_honest_server_clean_across_workloads(self, tmp_path, rounds, appends):
        result = run_honest_server(
            tmp_path, rounds=rounds, appends_per_round=appends
        )
        assert not result.detected
        assert result.evidence_kinds == () and result.alarms == ()

    @settings(max_examples=5, deadline=None)
    @given(
        rounds=st.integers(min_value=1, max_value=4),
        appends=st.integers(min_value=1, max_value=9),
        height=st.integers(min_value=2, max_value=3),
    )
    def test_honest_server_never_accused(self, rounds, appends, height):
        """Property: no honest workload shape produces evidence or alarms —
        false positives would make the whole layer cry-wolf useless."""
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory(prefix="transparency-prop-") as tmp:
            result = run_honest_server(
                Path(tmp),
                fractal_height=height,
                rounds=rounds,
                appends_per_round=appends,
            )
        assert not result.detected
        assert result.evidence_kinds == () and result.alarms == ()
        assert result.refutation_succeeded is True


class TestCensoringServerDouble:
    def test_double_only_drops_marked_payloads(self, tmp_path):
        from repro.net import ServerThread
        from repro.transparency.attacks import _build_ledger, _connect

        ledger = _build_ledger("ledger://selective", tmp_path / "led", 2)
        with ServerThread(ledger, server_cls=CensoringLedgerServer) as served:
            host, port = served.address
            with _connect((host, port), with_identity=True) as session:
                kept = session.append(b"innocuous", clue="OK")
                assert kept.verify(ledger.lsp_public_key)
                assert session.list_tx("OK")
                session.append(b"this one: censor-me", clue="GONE")
                assert session.list_tx("GONE") == []
            assert len(served.server.dropped) == 1
