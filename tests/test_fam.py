"""fam: Rule-1 epochs, jsn mapping, anchored/full proofs, purge erasure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import leaf_hash
from repro.merkle.fam import AnchorStore, FamAccumulator, FamReplayer


def digests(n, tag=b"j"):
    return [leaf_hash(tag + i.to_bytes(4, "big")) for i in range(n)]


class TestEpochStructure:
    def test_rejects_zero_height(self):
        with pytest.raises(ValueError):
            FamAccumulator(0)

    def test_rule_1_rollover(self):
        fam = FamAccumulator(2)  # capacity 4
        ds = digests(4)
        for d in ds:
            fam.append(d)
        # Epoch 0 completed; a new epoch opened with the merged leaf.
        assert fam.num_epochs == 2
        assert fam.epoch_root(0) == fam.current_root()  # single merged leaf bags to it

    def test_epoch_counts(self):
        # capacity 4: epoch 0 holds 4 journals, later epochs hold 3.
        fam = FamAccumulator(2)
        for d in digests(4 + 3 + 3 + 1):
            fam.append(d)
        assert fam.num_epochs == 4
        assert fam.size == 11

    def test_locate_jsn_round_trip(self):
        fam = FamAccumulator(2)
        for d in digests(30):
            fam.append(d)
        for jsn in range(30):
            epoch, slot = fam.locate(jsn)
            assert fam.jsn_of(epoch, slot) == jsn
            if epoch > 0:
                assert slot >= 1  # slot 0 is the merged leaf

    def test_locate_out_of_range(self):
        fam = FamAccumulator(2)
        fam.append(digests(1)[0])
        with pytest.raises(IndexError):
            fam.locate(1)

    def test_jsn_of_merged_slot_rejected(self):
        fam = FamAccumulator(2)
        for d in digests(6):
            fam.append(d)
        with pytest.raises(ValueError):
            fam.jsn_of(1, 0)

    def test_leaf_digest(self):
        fam = FamAccumulator(3)
        ds = digests(20)
        for d in ds:
            fam.append(d)
        for jsn in (0, 7, 8, 19):
            assert fam.leaf_digest(jsn) == ds[jsn]


class TestProofs:
    @pytest.fixture()
    def loaded(self):
        fam = FamAccumulator(3)  # capacity 8
        ds = digests(52)
        for d in ds:
            fam.append(d)
        return fam, ds

    def test_full_chain_proofs_verify(self, loaded):
        fam, ds = loaded
        root = fam.current_root()
        for jsn in range(52):
            proof = fam.get_proof(jsn, anchored=False)
            assert FamAccumulator.verify_full(ds[jsn], proof, root), jsn

    def test_full_chain_rejects_tampered_leaf(self, loaded):
        fam, ds = loaded
        proof = fam.get_proof(10, anchored=False)
        assert not FamAccumulator.verify_full(leaf_hash(b"evil"), proof, fam.current_root())

    def test_full_chain_rejects_wrong_root(self, loaded):
        fam, ds = loaded
        proof = fam.get_proof(10, anchored=False)
        assert not FamAccumulator.verify_full(ds[10], proof, leaf_hash(b"zz"))

    def test_anchored_proofs_verify(self, loaded):
        fam, ds = loaded
        anchors = AnchorStore()
        for epoch in range(fam.num_epochs - 1):
            anchors.add(epoch, fam.epoch_root(epoch))
        for jsn in range(52):
            proof = fam.get_proof(jsn, anchored=True)
            assert not proof.link_proofs  # the whole point of aoa
            assert fam.verify_with_anchors(ds[jsn], proof, anchors), jsn

    def test_anchored_verification_fails_without_anchor(self, loaded):
        fam, ds = loaded
        proof = fam.get_proof(0, anchored=True)  # epoch 0, completed
        assert not fam.verify_with_anchors(ds[0], proof, AnchorStore())

    def test_live_epoch_needs_no_anchor(self, loaded):
        fam, ds = loaded
        jsn = 51  # in the live epoch
        proof = fam.get_proof(jsn, anchored=True)
        assert fam.verify_with_anchors(ds[jsn], proof, AnchorStore())

    def test_anchored_cost_is_bounded_by_delta(self, loaded):
        fam, _ds = loaded
        for jsn in range(52):
            assert fam.get_proof(jsn, anchored=True).anchored_cost <= fam.fractal_height

    def test_full_cost_grows_with_epoch_distance(self, loaded):
        fam, _ds = loaded
        early = fam.get_proof(0, anchored=False)
        late = fam.get_proof(51, anchored=False)
        assert early.full_cost > late.full_cost  # older journal, longer chain

    def test_proofs_remain_valid_as_ledger_grows_with_anchors(self):
        fam = FamAccumulator(2)
        ds = digests(100)
        anchors = AnchorStore()
        proofs = {}
        for jsn, d in enumerate(ds):
            fam.append(d)
            for epoch in range(fam.num_epochs - 1):
                if epoch not in anchors:
                    anchors.add(epoch, fam.epoch_root(epoch))
            if jsn % 7 == 0:
                proofs[jsn] = fam.get_proof(jsn, anchored=True)
        # Anchored proofs taken against *completed* epochs stay valid forever
        # (a proof taken while its epoch was still live is against a partial
        # tree and must be re-fetched once the epoch seals — by design).
        for jsn, proof in proofs.items():
            if proof.epoch_index < proof.num_epochs - 1:
                assert fam.verify_with_anchors(ds[jsn], proof, anchors), jsn


class TestAnchorStore:
    def test_conflicting_anchor_rejected(self):
        anchors = AnchorStore()
        anchors.add(0, leaf_hash(b"a"))
        with pytest.raises(ValueError):
            anchors.add(0, leaf_hash(b"b"))
        anchors.add(0, leaf_hash(b"a"))  # idempotent
        assert len(anchors) == 1


class TestSnapshots:
    def test_root_at_matches_incremental(self):
        fam = FamAccumulator(2)
        ds = digests(40)
        roots = []
        for d in ds:
            fam.append(d)
            roots.append(fam.current_root())
        for size in range(1, 41):
            assert fam.root_at(size) == roots[size - 1], size

    def test_replayer_matches_accumulator(self):
        fam = FamAccumulator(3)
        replayer = FamReplayer(3)
        for d in digests(60):
            fam.append(d)
            replayer.append(d)
            assert fam.current_root() == replayer.current_root()
        assert replayer.epoch_roots == [fam.epoch_root(i) for i in range(fam.num_epochs - 1)]

    def test_replayer_resumes_from_snapshot(self):
        fam = FamAccumulator(2)
        first, second = digests(23), digests(15, tag=b"k")
        for d in first:
            fam.append(d)
        roots, live_size, peaks = fam.snapshot_at(23)
        replayer = FamReplayer.from_snapshot(2, roots, live_size, peaks, journal_count=23)
        assert replayer.current_root() == fam.current_root()
        for d in second:
            fam.append(d)
            replayer.append(d)
            assert fam.current_root() == replayer.current_root()

    def test_resume_exactly_at_epoch_boundary(self):
        fam = FamAccumulator(2)
        ds = digests(12)
        for d in ds[:4]:  # exactly one full epoch
            fam.append(d)
        roots, live_size, peaks = fam.snapshot_at(4)
        replayer = FamReplayer.from_snapshot(2, roots, live_size, peaks, journal_count=4)
        assert replayer.current_root() == fam.current_root()
        for d in ds[4:]:
            fam.append(d)
            replayer.append(d)
        assert replayer.current_root() == fam.current_root()


class TestPurgeErasure:
    def test_erase_up_to_drops_old_epochs(self):
        fam = FamAccumulator(2)
        ds = digests(20)
        for d in ds:
            fam.append(d)
        before = fam.num_nodes()
        erased = fam.erase_up_to(12)
        assert erased > 0
        assert fam.num_nodes() < before
        # Old journals are unprovable; digests in erased epochs are gone.
        with pytest.raises(KeyError):
            fam.get_proof(0)
        with pytest.raises(KeyError):
            fam.leaf_digest(0)

    def test_recent_journals_survive_erasure(self):
        fam = FamAccumulator(2)
        ds = digests(20)
        for d in ds:
            fam.append(d)
        fam.erase_up_to(12)
        root = fam.current_root()
        epoch_of_12, _ = fam.locate(12)
        for jsn in range(12, 20):
            epoch, _slot = fam.locate(jsn)
            if epoch >= epoch_of_12:
                proof = fam.get_proof(jsn, anchored=False)
                assert FamAccumulator.verify_full(ds[jsn], proof, root)

    def test_erasure_preserves_current_root(self):
        fam = FamAccumulator(2)
        for d in digests(20):
            fam.append(d)
        root = fam.current_root()
        fam.erase_up_to(12)
        assert fam.current_root() == root


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=120),
)
def test_every_journal_provable_property(height, count):
    fam = FamAccumulator(height)
    ds = digests(count)
    for d in ds:
        fam.append(d)
    root = fam.current_root()
    for jsn in range(0, count, max(count // 10, 1)):
        proof = fam.get_proof(jsn, anchored=False)
        assert FamAccumulator.verify_full(ds[jsn], proof, root)
