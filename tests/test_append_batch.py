"""append_batch must be observably identical to sequential appends.

Two ledgers with the same config, members, clock, and LSP key process the
same requests — one journal at a time vs. in batches.  Every observable
artifact must match byte-for-byte: stored journal bytes, fam root, CM-Tree
state root, the full block list, and the signed receipts.
"""

import pytest

from repro.core import ClientRequest, Ledger, LedgerConfig
from repro.core.errors import AuthenticationError
from repro.core.journal import JournalType
from repro.crypto import KeyPair, Role

URI = "ledger://batch-equivalence"

CLIENTS = ("alice", "bob", "carol")


def _make_ledger(block_size=4, fractal_height=3):
    ledger = Ledger(
        LedgerConfig(uri=URI, fractal_height=fractal_height, block_size=block_size)
    )
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"batch:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    return ledger, keys


def _requests(keys, count, clue_pool=("buyer:1", "seller:2", "commodity:9")):
    out = []
    for i in range(count):
        client = CLIENTS[i % len(CLIENTS)]
        clues = tuple(clue_pool[: 1 + i % len(clue_pool)])
        out.append(
            ClientRequest.build(
                URI,
                client,
                payload=f"tx-{i}".encode(),
                clues=clues,
                nonce=i.to_bytes(8, "big"),
                client_timestamp=1.0,
            ).signed_by(keys[client])
        )
    return out


def _assert_equivalent(seq_ledger, batch_ledger, seq_receipts, batch_receipts):
    assert seq_ledger.size == batch_ledger.size
    assert seq_ledger.current_root() == batch_ledger.current_root()
    assert seq_ledger.state_root() == batch_ledger.state_root()
    # Stored journal bytes, jsn by jsn.
    for jsn in range(seq_ledger.size):
        assert seq_ledger._stream.read(jsn) == batch_ledger._stream.read(jsn)
    # Block lists seal at identical boundaries with identical headers.
    assert [b.hash() for b in seq_ledger.blocks] == [
        b.hash() for b in batch_ledger.blocks
    ]
    # Receipts (the LSP-signed pi_s) are byte-identical.
    assert len(seq_receipts) == len(batch_receipts)
    for a, b in zip(seq_receipts, batch_receipts):
        assert a.to_bytes() == b.to_bytes()
    # Clue index agrees for every clue either side knows.
    for clue in ("buyer:1", "seller:2", "commodity:9"):
        assert seq_ledger.list_tx(clue) == batch_ledger.list_tx(clue)
        assert seq_ledger.clue_entry_count(clue) == batch_ledger.clue_entry_count(clue)


@pytest.mark.parametrize("batch_sizes", [[1], [3], [5, 8, 7], [1, 3, 5, 8, 7]])
def test_batch_equals_sequential(batch_sizes):
    total = sum(batch_sizes)
    seq_ledger, keys = _make_ledger(block_size=4)
    batch_ledger, _ = _make_ledger(block_size=4)
    requests = _requests(keys, total)

    seq_receipts = [seq_ledger.append(r) for r in requests]
    batch_receipts = []
    cursor = 0
    for size in batch_sizes:
        batch_receipts.extend(batch_ledger.append_batch(requests[cursor : cursor + size]))
        cursor += size

    _assert_equivalent(seq_ledger, batch_ledger, seq_receipts, batch_receipts)


def test_batch_spanning_multiple_block_seals():
    # block_size=4, genesis occupies jsn 0 — a batch of 11 crosses two seals
    # mid-batch and leaves a partial block pending.
    seq_ledger, keys = _make_ledger(block_size=4)
    batch_ledger, _ = _make_ledger(block_size=4)
    requests = _requests(keys, 11)
    seq_receipts = [seq_ledger.append(r) for r in requests]
    batch_receipts = batch_ledger.append_batch(requests)
    assert len(batch_ledger.blocks) == 3  # jsn 0..3, 4..7, 8..11
    _assert_equivalent(seq_ledger, batch_ledger, seq_receipts, batch_receipts)


def test_batch_spanning_fam_epoch_rollover():
    # fractal_height=2 -> epoch capacity 4; 12 journals roll several epochs.
    seq_ledger, keys = _make_ledger(block_size=4, fractal_height=2)
    batch_ledger, _ = _make_ledger(block_size=4, fractal_height=2)
    requests = _requests(keys, 12)
    seq_receipts = [seq_ledger.append(r) for r in requests]
    batch_receipts = batch_ledger.append_batch(requests)
    assert batch_ledger._fam.num_epochs == seq_ledger._fam.num_epochs > 1
    _assert_equivalent(seq_ledger, batch_ledger, seq_receipts, batch_receipts)


def test_batch_with_thread_fanout_matches():
    seq_ledger, keys = _make_ledger()
    batch_ledger, _ = _make_ledger()
    requests = _requests(keys, 9)
    seq_receipts = [seq_ledger.append(r) for r in requests]
    batch_receipts = batch_ledger.append_batch(requests, max_workers=4)
    _assert_equivalent(seq_ledger, batch_ledger, seq_receipts, batch_receipts)


def test_empty_batch_is_a_noop():
    ledger, _ = _make_ledger()
    root = ledger.current_root()
    assert ledger.append_batch([]) == []
    assert ledger.current_root() == root


def test_batch_rejects_atomically_on_bad_signature():
    ledger, keys = _make_ledger()
    requests = _requests(keys, 6)
    # Corrupt the middle request: signed by the wrong key.
    bad = ClientRequest.build(
        URI,
        "bob",
        payload=b"forged",
        nonce=b"\x00" * 8,
        client_timestamp=1.0,
    ).signed_by(keys["alice"])
    requests[3] = bad
    size_before = ledger.size
    root_before = ledger.current_root()
    state_before = ledger.state_root()
    with pytest.raises(AuthenticationError):
        ledger.append_batch(requests)
    assert ledger.size == size_before
    assert ledger.current_root() == root_before
    assert ledger.state_root() == state_before
    assert len(ledger._stream) == size_before


def test_batch_rejects_unknown_member_atomically():
    ledger, keys = _make_ledger()
    stranger = KeyPair.generate(seed="batch:stranger")
    requests = _requests(keys, 2)
    requests.append(
        ClientRequest.build(
            URI, "mallory", payload=b"x", nonce=b"\x01" * 8, client_timestamp=1.0
        ).signed_by(stranger)
    )
    size_before = ledger.size
    with pytest.raises(AuthenticationError):
        ledger.append_batch(requests)
    assert ledger.size == size_before


def test_batch_rejects_wrong_uri_and_system_journal_types():
    ledger, keys = _make_ledger()
    wrong_uri = ClientRequest.build(
        "ledger://other", "alice", payload=b"x", nonce=b"\x02" * 8, client_timestamp=1.0
    ).signed_by(keys["alice"])
    with pytest.raises(AuthenticationError):
        ledger.append_batch([wrong_uri])
    time_journal = ClientRequest.build(
        URI,
        "alice",
        payload=b"x",
        nonce=b"\x03" * 8,
        client_timestamp=1.0,
        journal_type=JournalType.TIME,
    ).signed_by(keys["alice"])
    with pytest.raises(AuthenticationError):
        ledger.append_batch([time_journal])


def test_batch_rejects_unsigned_request():
    ledger, keys = _make_ledger()
    unsigned = ClientRequest.build(
        URI, "alice", payload=b"x", nonce=b"\x04" * 8, client_timestamp=1.0
    )
    with pytest.raises(AuthenticationError):
        ledger.append_batch([unsigned])


def test_batched_journals_verify_like_sequential_ones():
    ledger, keys = _make_ledger()
    receipts = ledger.append_batch(_requests(keys, 8))
    for receipt in receipts:
        journal = ledger.get_journal(receipt.jsn)
        assert ledger.verify_journal(journal)
        assert receipt.verify(ledger.registry.certificate("__lsp__").public_key)


def test_client_sdk_append_batch():
    from repro.core.client import LedgerClient

    ledger, keys = _make_ledger()
    client = LedgerClient("alice", keys["alice"], ledger)
    receipts = client.append_batch([(b"a", ("c1",)), (b"b", ("c1", "c2")), (b"c", ())])
    assert [r.jsn for r in receipts] == [1, 2, 3]
    assert all(client.receipt_for(r.jsn) is not None for r in receipts)
    # Nonces keep advancing for later singleton appends.
    follow_up = client.append(b"d")
    assert follow_up.jsn == 4


def test_client_sdk_append_batch_unwinds_nonce_on_rejection():
    from repro.core.client import LedgerClient

    ledger, keys = _make_ledger()
    wrong_key = KeyPair.generate(seed="batch:imposter")
    client = LedgerClient("alice", wrong_key, ledger)
    with pytest.raises(AuthenticationError):
        client.append_batch([(b"a", ())])
    assert client._nonce == 0


def test_session_append_batch():
    from repro import api

    with api.scoped_ledger(
        URI, config=LedgerConfig(uri=URI, fractal_height=3, block_size=4)
    ) as session:
        keypair = KeyPair.generate(seed="batch:facade")
        session.ledger.registry.register("dave", Role.USER, keypair.public)
        receipts = session.append_batch(
            [(b"p1", "clue-x"), (b"p2", None), (b"p3", "clue-x")],
            client_id="dave",
            keypair=keypair,
        )
        assert [r.jsn for r in receipts] == [1, 2, 3]
        assert session.ledger.list_tx("clue-x") == [1, 3]
