"""Workload generators and the cost model."""

from repro.sim import FABRIC_PROFILE, LEDGERDB_PROFILE, QLDB_PROFILE, CostMeter
from repro.workloads import LineageWorkload, NotarizationWorkload, payload_bytes

import random


class TestWorkloads:
    def test_notarization_determinism(self):
        a = list(NotarizationWorkload(10, payload_size=64, seed=3))
        b = list(NotarizationWorkload(10, payload_size=64, seed=3))
        assert a == b
        c = list(NotarizationWorkload(10, payload_size=64, seed=4))
        assert a != c

    def test_notarization_sizes_and_ids_unique(self):
        docs = list(NotarizationWorkload(50, payload_size=256, seed=1))
        assert all(len(d.data) == 256 for d in docs)
        assert len({d.doc_id for d in docs}) == 50

    def test_lineage_entry_counts_in_range(self):
        workload = LineageWorkload(20, min_entries=1, max_entries=100, seed=5)
        counts = workload.entry_counts()
        assert len(counts) == 20
        assert all(1 <= c <= 100 for c in counts.values())

    def test_lineage_versions_sequential_per_clue(self):
        workload = LineageWorkload(8, min_entries=2, max_entries=10, seed=9)
        seen = {}
        for op in workload:
            assert op.version == seen.get(op.clue, 0)
            seen[op.clue] = op.version + 1
        assert seen == workload.entry_counts()

    def test_total_entries_matches_iteration(self):
        workload = LineageWorkload(10, seed=2)
        assert sum(1 for _ in workload) == workload.total_entries()

    def test_payload_bytes_exact_size(self):
        rng = random.Random(0)
        for size in (0, 1, 7, 256):
            assert len(payload_bytes(rng, size)) == size


class TestCostModel:
    def test_meter_accumulates(self):
        meter = CostMeter(LEDGERDB_PROFILE)
        meter.api_rtts(2).hashes(100).signs(1)
        assert meter.elapsed_ms > 50  # 2 x 25ms RTT dominates
        breakdown = meter.breakdown()
        assert breakdown["api_rtt"] == 50.0
        assert meter.counts()["hash"] == 100

    def test_reset(self):
        meter = CostMeter(LEDGERDB_PROFILE)
        meter.api_rtts(1)
        meter.reset()
        assert meter.elapsed_ms == 0 and meter.breakdown() == {}

    def test_profiles_encode_paper_magnitudes(self):
        # QLDB's opaque verify overhead and Fabric's batching dominate.
        assert QLDB_PROFILE.service_overhead_ms > 1000
        assert FABRIC_PROFILE.consensus_batch_ms > 1000
        assert LEDGERDB_PROFILE.api_rtt_ms < 30

    def test_transfer_scales_with_kilobytes(self):
        meter = CostMeter(LEDGERDB_PROFILE)
        meter.transfer_kb(256.0)
        small = CostMeter(LEDGERDB_PROFILE)
        small.transfer_kb(0.25)
        assert meter.elapsed_ms > small.elapsed_ms * 100
