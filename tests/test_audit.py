"""§V Dasein-complete audit: honest ledgers pass; every threat model fails."""

import dataclasses

from repro.core import OccultMode, dasein_audit
from repro.core.journal import Journal
from repro.crypto import KeyPair


def audit(deployment, view=None, **kwargs):
    view = view if view is not None else deployment.ledger.export_view()
    return dasein_audit(view, tsa_keys=deployment.tsa_keys, **kwargs)


class TestHonestLedger:
    def test_audit_passes(self, populated):
        deployment, _receipts = populated
        report = audit(deployment)
        assert report.passed
        assert report.journals_replayed == deployment.ledger.size
        assert report.blocks_verified == len(deployment.ledger.blocks)
        assert report.time_journals_verified == len(deployment.ledger.time_journals)

    def test_audit_passes_after_occult(self, populated):
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(4, OccultMode.SYNC, reason="gdpr")
        approvals = deployment.sign_approval(["dba", "regulator"], record.approval_digest())
        deployment.ledger.execute_occult(record, approvals)
        assert audit(deployment).passed

    def test_audit_passes_after_purge(self, populated):
        deployment, _receipts = populated
        pseudo, record = deployment.ledger.prepare_purge(8)
        signers = list(deployment.ledger.purge_required_signers(8))
        approvals = deployment.sign_approval(signers, record.approval_digest())
        deployment.ledger.execute_purge(pseudo, record, approvals)
        report = audit(deployment)
        assert report.passed
        # Only the unpurged suffix is replayed (Protocol 1).
        assert report.journals_replayed == deployment.ledger.size - 8

    def test_audit_passes_after_purge_and_occult(self, populated):
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(10, OccultMode.SYNC, reason="x")
        approvals = deployment.sign_approval(["dba", "regulator"], record.approval_digest())
        deployment.ledger.execute_occult(record, approvals)
        pseudo, precord = deployment.ledger.prepare_purge(8)
        signers = list(deployment.ledger.purge_required_signers(8))
        papprovals = deployment.sign_approval(signers, precord.approval_digest())
        deployment.ledger.execute_purge(pseudo, precord, papprovals)
        assert audit(deployment).passed

    def test_temporal_range_predicate(self, populated):
        deployment, _receipts = populated
        report = audit(deployment, temporal_range=(0.0, 2.0))
        assert report.passed
        assert report.time_journals_verified < len(deployment.ledger.time_journals)

    def test_skip_client_signatures_for_speed(self, populated):
        deployment, _receipts = populated
        assert audit(deployment, verify_client_signatures=False).passed


class TestThreatA:
    """Tampering with incoming data is blocked at append; an LSP writing a
    *different* journal than the client signed is caught by the audit's
    per-journal signature check."""

    def test_journal_with_forged_issuer_signature_fails(self, populated):
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        target = receipts[0].jsn
        entry = view.entry(target)
        journal = Journal.from_bytes(entry.data)
        mallory = KeyPair.generate(seed="mallory")
        forged_journal = dataclasses.replace(
            journal, client_signature=mallory.sign(journal.request_hash)
        )
        data = forged_journal.to_bytes()
        view.entries[target - view.genesis_start] = dataclasses.replace(
            entry, data=data, retained_hash=forged_journal.tx_hash()
        )
        report = audit(deployment, view=view)
        assert not report.passed
        assert any("signature" in s.detail or "root" in s.detail for s in report.failures())


class TestThreatB:
    """Server-side tampering of existing journals / timestamps."""

    def _tamper_entry(self, view, jsn, **journal_changes):
        entry = view.entry(jsn)
        journal = Journal.from_bytes(entry.data)
        tampered = dataclasses.replace(journal, **journal_changes)
        view.entries[jsn - view.genesis_start] = dataclasses.replace(
            entry, data=tampered.to_bytes()
        )

    def test_payload_tamper_detected(self, populated):
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        self._tamper_entry(view, receipts[1].jsn, payload=b"rewritten history")
        report = audit(deployment, view=view)
        assert not report.passed
        assert "digest mismatch" in report.failures()[0].detail

    def test_consistent_tamper_breaks_block_roots(self, populated):
        # Even if the LSP rewrites the retained hash to match, replayed fam
        # roots diverge from the committed block headers.
        deployment, receipts = populated
        view = deployment.ledger.export_view()
        jsn = receipts[1].jsn
        entry = view.entry(jsn)
        journal = Journal.from_bytes(entry.data)
        tampered = dataclasses.replace(journal, payload=b"rewritten")
        view.entries[jsn - view.genesis_start] = dataclasses.replace(
            entry, data=tampered.to_bytes(), retained_hash=tampered.tx_hash()
        )
        report = audit(deployment, view=view, verify_client_signatures=False)
        assert not report.passed
        assert any(
            "root mismatch" in s.detail or "anchored root" in s.detail
            for s in report.failures()
        )

    def test_journal_deletion_detected(self, populated):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        del view.entries[5]
        report = audit(deployment, view=view)
        assert not report.passed

    def test_journal_insertion_detected(self, populated):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        view.entries.insert(5, view.entries[5])
        report = audit(deployment, view=view)
        assert not report.passed

    def test_forged_system_timestamp_detected(self, populated):
        # The LSP backdates a time journal: the TSA signature no longer
        # matches the rewritten payload.
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        time_jsn = deployment.ledger.time_journals[0]
        entry = view.entry(time_jsn)
        journal = Journal.from_bytes(entry.data)
        from repro.encoding import decode, encode

        payload = decode(journal.payload)
        payload["notary_timestamp"] = 0.0001  # claim it happened at epoch start
        self._tamper = None
        tampered = dataclasses.replace(journal, payload=encode(payload))
        view.entries[time_jsn - view.genesis_start] = dataclasses.replace(
            entry, data=tampered.to_bytes(), retained_hash=tampered.tx_hash()
        )
        report = audit(deployment, view=view, verify_client_signatures=False)
        assert not report.passed

    def test_block_header_tamper_detected(self, populated):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        from repro.crypto.hashing import leaf_hash

        view.blocks[1] = dataclasses.replace(view.blocks[1], journal_root=leaf_hash(b"forged"))
        report = audit(deployment, view=view)
        assert not report.passed


class TestThreatC:
    """LSP-client collusion to cheat a third-party auditor."""

    def test_unauthorized_occult_detected(self, populated):
        # LSP hides a journal without the regulator's signature.
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(4, OccultMode.SYNC, reason="collude")
        # Forge approvals: DBA signs twice (no regulator).
        approvals = deployment.sign_approval(["dba"], record.approval_digest())
        view = deployment.ledger.export_view()
        # Simulate the collusive server state directly on the view.
        entry = view.entry(4)
        view.entries[4 - view.genesis_start] = dataclasses.replace(
            entry, data=None, occulted=True
        )
        view.occult_approvals.append((99, record, approvals))
        report = audit(deployment, view=view)
        assert not report.passed
        assert any("occult" in s.name for s in report.failures())

    def test_unauthorized_purge_detected(self, populated):
        deployment, _receipts = populated
        pseudo, record = deployment.ledger.prepare_purge(8)
        # Only the colluding client signs — not the DBA, not other owners.
        approvals = deployment.sign_approval(["alice"], record.approval_digest())
        view = deployment.ledger.export_view()
        view.purge_approvals.append((99, record, approvals))
        report = audit(deployment, view=view)
        assert not report.passed
        assert any("purge" in s.name for s in report.failures())

    def test_occult_without_any_record_detected(self, populated):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        entry = view.entry(4)
        view.entries[4 - view.genesis_start] = dataclasses.replace(
            entry, data=None, occulted=True
        )
        report = audit(deployment, view=view)
        assert not report.passed
        assert "without an occult record" in report.failures()[0].detail


class TestReceiptStep:
    def test_missing_receipt_fails(self, populated):
        deployment, _receipts = populated
        view = dataclasses.replace(deployment.ledger.export_view(), latest_receipt=None)
        report = audit(deployment, view=view)
        assert not report.passed
        assert report.failures()[0].name == "receipt"

    def test_forged_receipt_fails(self, populated):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        forged = dataclasses.replace(view.latest_receipt, ledger_root=b"\x01" * 32)
        view = dataclasses.replace(view, latest_receipt=forged)
        report = audit(deployment, view=view)
        assert not report.passed


class TestEarlyTermination:
    def test_early_terminate_stops_at_first_failure(self, populated):
        deployment, _receipts = populated
        view = deployment.ledger.export_view()
        view.entries[3] = dataclasses.replace(view.entries[3], data=None, occulted=True)
        view = dataclasses.replace(view, latest_receipt=None)  # second failure
        report = audit(deployment, view=view, early_terminate=True)
        assert len(report.failures()) == 1
        full = audit(deployment, view=view, early_terminate=False)
        assert len(full.failures()) >= 2
