"""LedgerService: concurrent group commit, backpressure, shutdown, salvage.

The load-bearing test is :func:`test_concurrent_equivalence`: a ledger built
by N threads racing through the service must be *byte-identical* (same fam
root, same state root, same receipt bytes per jsn) to a single-threaded
ledger fed the same requests in the order the service happened to commit
them — group commit is a scheduling optimisation, never a semantic one.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.core import ClientRequest, Ledger, LedgerConfig
from repro.core.errors import AuthenticationError
from repro.crypto import KeyPair, Role
from repro.service import (
    LedgerService,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
    ServiceTimeout,
)

URI = "ledger://service-test"
CLIENTS = ("alice", "bob", "carol", "dan")


def make_ledger(block_size: int = 8) -> tuple[Ledger, dict[str, KeyPair]]:
    ledger = Ledger(LedgerConfig(uri=URI, fractal_height=4, block_size=block_size))
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"svc:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    return ledger, keys


def make_request(
    keys: dict[str, KeyPair], client: str, tag: str, clues: tuple[str, ...] = ()
) -> ClientRequest:
    return ClientRequest.build(
        URI,
        client,
        f"{client}:{tag}".encode(),
        clues=clues,
        nonce=abs(hash((client, tag))).to_bytes(8, "big")[:8],
        client_timestamp=0.0,
    ).signed_by(keys[client])


class SlowLedger(Ledger):
    """A ledger whose commits take a configurable beat — backlog on demand."""

    commit_delay = 0.05

    def append_batch(self, requests, max_workers=None):
        time.sleep(self.commit_delay)
        return super().append_batch(requests, max_workers=max_workers)


def make_slow_ledger(delay: float) -> tuple[SlowLedger, dict[str, KeyPair]]:
    ledger = SlowLedger(LedgerConfig(uri=URI, fractal_height=4, block_size=8))
    ledger.commit_delay = delay
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"svc:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    return ledger, keys


# ------------------------------------------------------------- equivalence


def test_concurrent_equivalence():
    """N threads × M appends through the service == the sequential ledger.

    Same requests replayed single-threaded in the service's commit order
    must reproduce the fam root, the CM-Tree state root, every block, and
    every receipt byte-for-byte (ECDSA here is RFC 6979 deterministic).
    """
    n_threads, per_thread = 6, 20
    service_ledger, keys = make_ledger(block_size=8)
    service = LedgerService(service_ledger, ServiceConfig(max_batch=16, max_wait_ms=5.0))
    thread_requests = {
        t: [
            make_request(
                keys,
                CLIENTS[t % len(CLIENTS)],
                f"t{t}-i{i}",
                clues=(f"lane-{t % 3}",) if i % 2 == 0 else (),
            )
            for i in range(per_thread)
        ]
        for t in range(n_threads)
    }
    receipts: dict[int, list] = {t: [] for t in range(n_threads)}
    errors: list[BaseException] = []

    def worker(t: int) -> None:
        try:
            for request in thread_requests[t]:
                receipts[t].append(service.append(request, timeout=30.0))
        except BaseException as exc:  # surfaced below; threads must not die silently
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service.close()
    assert not errors, errors
    assert service_ledger.size == 1 + n_threads * per_thread

    # Replay sequentially in the order the service committed.
    by_jsn = {}
    for t in range(n_threads):
        for request, receipt in zip(thread_requests[t], receipts[t]):
            by_jsn[receipt.jsn] = request
    assert sorted(by_jsn) == list(range(1, service_ledger.size))

    sequential, _ = make_ledger(block_size=8)
    for jsn in sorted(by_jsn):
        sequential.append(by_jsn[jsn])

    assert sequential.current_root() == service_ledger.current_root()
    assert sequential.state_root() == service_ledger.state_root()
    assert [b.hash() for b in sequential.blocks] == [b.hash() for b in service_ledger.blocks]
    lsp_key = service_ledger.registry.certificate("__lsp__").public_key
    for t in range(n_threads):
        for receipt in receipts[t]:
            assert receipt.verify(lsp_key)
            twin = sequential.receipt_for(receipt.jsn)
            assert twin is not None and twin.to_bytes() == receipt.to_bytes()
    stats = service.stats()
    assert stats["committed"] == n_threads * per_thread
    assert stats["batches"] <= stats["committed"]  # some coalescing happened


def test_single_caller_matches_direct_append():
    ledger, keys = make_ledger()
    baseline, _ = make_ledger()
    requests = [make_request(keys, "alice", f"i{i}", clues=("c",)) for i in range(10)]
    with LedgerService(ledger, ServiceConfig(max_wait_ms=0.0)) as service:
        for request in requests:
            service.append(request)
    for request in requests:
        baseline.append(request)
    assert ledger.current_root() == baseline.current_root()


# --------------------------------------------------------------- shutdown


def test_close_drains_queued_work():
    ledger, keys = make_slow_ledger(delay=0.02)
    service = LedgerService(ledger, ServiceConfig(max_batch=8, max_wait_ms=1.0))
    futures = [service.submit(make_request(keys, "bob", f"drain-{i}")) for i in range(30)]
    service.close(drain=True)  # everything queued still commits
    jsns = sorted(future.result(timeout=5.0).jsn for future in futures)
    assert jsns == list(range(1, 31))
    with pytest.raises(ServiceClosedError):
        service.submit(make_request(keys, "bob", "late"))
    service.close()  # idempotent


def test_close_without_drain_fails_queued_futures():
    ledger, keys = make_slow_ledger(delay=0.1)
    service = LedgerService(ledger, ServiceConfig(max_batch=4, max_wait_ms=0.0))
    futures = [service.submit(make_request(keys, "carol", f"cut-{i}")) for i in range(12)]
    time.sleep(0.02)  # let the writer pick up a first batch
    service.close(drain=False)
    outcomes = {"receipt": 0, "closed": 0}
    for future in futures:
        try:
            future.result(timeout=5.0)
            outcomes["receipt"] += 1
        except ServiceClosedError:
            outcomes["closed"] += 1
    assert outcomes["receipt"] + outcomes["closed"] == 12
    assert outcomes["closed"] > 0  # the backlog was cut loose...
    assert outcomes["receipt"] == ledger.size - 1  # ...and nothing was lost


def test_close_join_timeout_raises_service_timeout():
    ledger, keys = make_slow_ledger(delay=0.3)
    service = LedgerService(ledger, ServiceConfig(max_wait_ms=0.0))
    future = service.submit(make_request(keys, "dan", "slow"))
    time.sleep(0.02)  # writer is now inside the slow commit
    with pytest.raises(ServiceTimeout):
        service.close(timeout=0.01)
    assert future.result(timeout=5.0).jsn == 1  # work still completes
    service.close()


# ------------------------------------------------- timeouts / backpressure


def test_append_wait_timeout_leaves_request_in_flight():
    ledger, keys = make_slow_ledger(delay=0.2)
    service = LedgerService(ledger, ServiceConfig(max_wait_ms=0.0))
    request = make_request(keys, "alice", "patient")
    with pytest.raises(ServiceTimeout):
        service.append(request, timeout=0.01)
    service.close(drain=True)  # the timed-out request still commits
    assert ledger.size == 2
    assert ledger.get_journal(1).payload == b"alice:patient"


def test_backpressure_overflow():
    ledger, keys = make_slow_ledger(delay=0.3)
    service = LedgerService(ledger, ServiceConfig(max_batch=1, max_wait_ms=0.0, max_queue=1))
    service.submit(make_request(keys, "alice", "first"))  # writer grabs this
    time.sleep(0.05)
    service.submit(make_request(keys, "alice", "second"))  # fills the queue
    with pytest.raises(ServiceOverloadedError):
        service.submit(make_request(keys, "alice", "third"), timeout=0.01)
    service.close(drain=True)
    assert ledger.size == 3  # first and second landed, third never entered


def test_backpressure_unblocks_when_room_frees():
    ledger, keys = make_slow_ledger(delay=0.05)
    service = LedgerService(ledger, ServiceConfig(max_batch=1, max_wait_ms=0.0, max_queue=2))
    futures = [
        service.submit(make_request(keys, "bob", f"bp-{i}"), timeout=10.0)
        for i in range(8)  # far more than max_queue: submits block then proceed
    ]
    for future in futures:
        future.result(timeout=10.0)
    service.close()
    assert ledger.size == 9


def test_submit_many_matches_per_request_submits():
    ledger, keys = make_ledger()
    service = LedgerService(ledger)
    requests = [make_request(keys, "alice", f"many-{i}") for i in range(10)]
    futures = service.submit_many(requests)
    receipts = [future.result(timeout=10.0) for future in futures]
    service.close()
    assert [r.request_hash for r in receipts] == [r.request_hash() for r in requests]
    assert [r.jsn for r in receipts] == sorted(r.jsn for r in receipts)


def test_submit_many_is_all_or_nothing_on_overflow():
    """An overloaded batch admits nothing, so retrying cannot double-append."""
    ledger, keys = make_slow_ledger(delay=0.3)
    service = LedgerService(ledger, ServiceConfig(max_batch=1, max_wait_ms=0.0, max_queue=2))
    service.submit(make_request(keys, "alice", "head"))  # writer grabs this
    time.sleep(0.05)
    service.submit(make_request(keys, "alice", "fills"))  # queue now 1/2
    batch = [make_request(keys, "bob", f"b-{i}") for i in range(2)]
    with pytest.raises(ServiceOverloadedError):
        service.submit_many(batch, timeout=0.01)  # needs 2 slots, only 1 free
    with pytest.raises(ServiceOverloadedError):
        # A batch that can never fit fails immediately, nothing queued.
        service.submit_many(
            [make_request(keys, "bob", f"huge-{i}") for i in range(3)], timeout=0
        )
    futures = service.submit_many(batch, timeout=10.0)  # retry is safe: blocks, lands
    for future in futures:
        future.result(timeout=10.0)
    service.close(drain=True)
    assert ledger.size == 5  # genesis + head + fills + the batch of 2, no dupes


# ----------------------------------------------------------- batch salvage


def test_bad_request_is_isolated_not_poisonous():
    """One forged signature fails its own future; batchmates still commit."""
    ledger, keys = make_ledger()
    imposter = KeyPair.generate(seed="svc:imposter")
    bad = ClientRequest.build(
        URI, "alice", b"forged", nonce=b"\0" * 8, client_timestamp=0.0
    ).signed_by(imposter)
    service = LedgerService(ledger, ServiceConfig(max_batch=8, max_wait_ms=100.0))
    futures = [
        service.submit(make_request(keys, "alice", "good-0")),
        service.submit(bad),
        service.submit(make_request(keys, "bob", "good-1")),
        service.submit(make_request(keys, "carol", "good-2")),
    ]
    service.close(drain=True)
    with pytest.raises(AuthenticationError):
        futures[1].result(timeout=5.0)
    good_jsns = sorted(futures[i].result(timeout=5.0).jsn for i in (0, 2, 3))
    assert good_jsns == [1, 2, 3]
    assert ledger.size == 4  # genesis + the three good ones
    stats = service.stats()
    assert stats["rejected"] == 1
    assert stats["salvaged_batches"] >= 1
    payloads = {ledger.get_journal(jsn).payload for jsn in good_jsns}
    assert b"forged" not in payloads


def test_all_bad_batch_rejects_everything():
    ledger, _keys = make_ledger()
    imposter = KeyPair.generate(seed="svc:imposter")
    service = LedgerService(ledger, ServiceConfig(max_batch=4, max_wait_ms=100.0))
    futures = [
        service.submit(
            ClientRequest.build(
                URI, "alice", b"x%d" % i, nonce=b"\0" * 8, client_timestamp=0.0
            ).signed_by(imposter)
        )
        for i in range(3)
    ]
    service.close(drain=True)
    for future in futures:
        with pytest.raises(AuthenticationError):
            future.result(timeout=5.0)
    assert ledger.size == 1  # only genesis


# ------------------------------------------------------------------- misc


def test_submit_rejects_non_request():
    from repro.core.errors import UsageError

    ledger, _keys = make_ledger()
    with LedgerService(ledger) as service:
        with pytest.raises(UsageError):
            service.submit(b"raw bytes are not a ClientRequest")


def test_config_validation():
    from repro.core.errors import UsageError

    with pytest.raises(UsageError):
        ServiceConfig(max_batch=0)
    with pytest.raises(UsageError):
        ServiceConfig(max_queue=0)
    with pytest.raises(UsageError):
        ServiceConfig(max_wait_ms=-1.0)


def test_observability_wiring():
    """Queue gauge, batch histograms, and commit spans land in the registry."""
    ledger, keys = make_ledger()
    obs.enable()
    obs.reset()
    try:
        with LedgerService(ledger, ServiceConfig(max_batch=8, max_wait_ms=5.0)) as svc:
            futures = [svc.submit(make_request(keys, "alice", f"obs-{i}")) for i in range(12)]
            for future in futures:
                future.result(timeout=10.0)
        snap = obs.snapshot()
    finally:
        obs.disable()
        obs.reset()
    assert snap["histograms"]["service.batch.size"]["count"] >= 1
    assert snap["histograms"]["service.batch.wait_us"]["count"] == 12
    assert snap["counters"]["service.commit.calls"] >= 1
    assert snap["counters"]["service.commit.journals"] == 12
    assert "service.queue.depth" in snap["gauges"]
