"""World-state: the single-layer state accumulator of Figure 2."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.worldstate import StateProof, WorldState
from repro.crypto.hashing import sha256


class TestBasics:
    def test_put_get(self):
        state = WorldState()
        state.put(b"balance:alice", b"100", jsn=1)
        assert state.get(b"balance:alice") == b"100"
        assert b"balance:alice" in state

    def test_missing_key(self):
        state = WorldState()
        with pytest.raises(KeyError):
            state.get(b"ghost")
        assert state.entry(b"ghost") is None
        assert state.version(b"ghost") == -1

    def test_versions_increment(self):
        state = WorldState()
        for i in range(5):
            state.put(b"k", b"v%d" % i, jsn=i)
        assert state.version(b"k") == 4
        entry = state.entry(b"k")
        assert entry.version == 4 and entry.jsn == 4
        assert entry.value_digest == sha256(b"v4")

    def test_root_changes_per_write(self):
        state = WorldState()
        roots = set()
        for i in range(10):
            roots.add(state.put(b"k%d" % (i % 3), b"v%d" % i, jsn=i))
        assert len(roots) == 10

    def test_root_reflects_only_current_state(self):
        a, b = WorldState(), WorldState()
        a.put(b"k", b"old", jsn=0)
        a.put(b"k", b"new", jsn=1)
        b.put(b"k", b"other", jsn=0)
        b.put(b"k", b"new", jsn=1)
        assert a.root == b.root  # same version/jsn/value => same commitment


class TestProofs:
    def test_membership_proof(self):
        state = WorldState()
        for i in range(20):
            state.put(b"key-%02d" % i, b"val-%02d" % i, jsn=i)
        proof = state.prove(b"key-07")
        assert proof.entry is not None and proof.entry.jsn == 7
        assert proof.verify(state.root)
        assert proof.verify(state.root, value=b"val-07")
        assert not proof.verify(state.root, value=b"wrong value")

    def test_non_membership_proof(self):
        state = WorldState()
        state.put(b"exists", b"v", jsn=0)
        proof = state.prove(b"missing")
        assert proof.entry is None
        assert proof.verify(state.root)

    def test_proof_rejects_wrong_root(self):
        state = WorldState()
        state.put(b"k", b"v", jsn=0)
        proof = state.prove(b"k")
        other = WorldState()
        other.put(b"k", b"different", jsn=0)
        assert not proof.verify(other.root)

    def test_forged_entry_rejected(self):
        state = WorldState()
        state.put(b"k", b"v", jsn=3)
        proof = state.prove(b"k")
        inflated = dataclasses.replace(proof.entry, jsn=99)
        forged = StateProof(entry=inflated, mpt_proof=proof.mpt_proof)
        assert not forged.verify(state.root)

    def test_historical_roots_stay_provable(self):
        state = WorldState()
        state.put(b"k", b"v1", jsn=1)
        old_root = state.root
        state.put(b"k", b"v2", jsn=2)
        old_proof = state.prove(b"k", root=old_root)
        assert old_proof.entry.value_digest == sha256(b"v1")
        assert old_proof.verify(old_root)
        assert not old_proof.verify(state.root)
        historical = state.historical_entry(b"k", old_root)
        assert historical.jsn == 1


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=6), st.binary(max_size=12), min_size=1, max_size=25
    )
)
def test_matches_dict_model(contents):
    state = WorldState()
    for jsn, (key, value) in enumerate(sorted(contents.items())):
        state.put(key, value, jsn=jsn)
    for key, value in contents.items():
        assert state.get(key) == value
        proof = state.prove(key)
        assert proof.verify(state.root, value=value)
