"""Sharded deployments (DESIGN.md §15): routing, proofs, service, isolation.

The property suite pins the §15 equivalence contract:

* every cross-shard proof folds to the deployment's single composite root;
* tampering any one shard is detectable from that root alone;
* a 1-shard deployment is byte-identical to a plain :class:`Ledger` fed the
  same requests under the same clock and LSP keypair.

Plus the PR's regression satellites: per-instance service metrics with two
live writer loops, and module-level-state isolation between two in-process
ledgers.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

import repro.api as api
from repro import obs
from repro.core.errors import UsageError
from repro.core.journal import ClientRequest
from repro.core.ledger import Ledger, LedgerConfig
from repro.core.members import MemberRegistry
from repro.crypto.ca import Role
from repro.crypto.keys import KeyPair
from repro.merkle.fam import FamProof
from repro.service import LedgerService, ServiceConfig
from repro.shard import (
    ShardClueProof,
    ShardProof,
    ShardedLedger,
    ShardedLedgerService,
    shard_of_key,
)

URI = "ledger://test/sharded"
USER = KeyPair.generate(seed="sharded:alice")


def build_sharded(shards: int, **config_kwargs) -> ShardedLedger:
    ledger = ShardedLedger(LedgerConfig(uri=URI, shards=shards, **config_kwargs))
    ledger.registry.register("alice", Role.USER, USER.public)
    return ledger


def request(i: int, clue: str | None, *, uri: str = URI) -> ClientRequest:
    clues = (clue,) if clue else ()
    return ClientRequest.build(
        uri, "alice", f"payload-{i}".encode(), clues=clues,
        nonce=i.to_bytes(8, "big"), client_timestamp=1.0 + i,
    ).signed_by(USER)


# ---------------------------------------------------------------- routing


class TestRouting:
    @settings(max_examples=60, deadline=None)
    @given(
        key=st.text(max_size=64),
        shards=st.integers(min_value=1, max_value=16),
    )
    def test_shard_of_key_deterministic_and_in_range(self, key, shards):
        first = shard_of_key(key, shards)
        assert 0 <= first < shards
        assert shard_of_key(key, shards) == first

    @settings(max_examples=60, deadline=None)
    @given(
        shards=st.integers(min_value=1, max_value=9),
        shard_index=st.integers(min_value=0, max_value=8),
        local=st.integers(min_value=0, max_value=10_000),
    )
    def test_gsn_bijection(self, shards, shard_index, local):
        if shard_index >= shards:
            return
        ledger = ShardedLedger(LedgerConfig(uri=URI, shards=shards))
        gsn = ledger.global_jsn(shard_index, local)
        assert ledger.locate(gsn) == (shard_index, local)
        ledger.close()

    def test_routes_by_first_clue_then_client_id(self):
        ledger = build_sharded(4)
        clued = request(0, "clue-A")
        assert ledger.shard_of_request(clued) == ledger.shard_of_key("clue-A")
        bare = request(1, None)
        assert ledger.shard_of_request(bare) == ledger.shard_of_key("alice")
        ledger.close()

    def test_same_clue_always_lands_on_one_shard(self):
        ledger = build_sharded(4)
        for i in range(8):
            ledger.append(request(i, "sticky"))
        populated = [shard for shard in ledger.shards if shard.size > 1]
        assert len(populated) == 1  # genesis journal aside, one shard owns it
        ledger.close()


# ------------------------------------------------------- proof equivalence


class TestCompositeProofs:
    @settings(max_examples=15, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=5),
        clue_ids=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=24),
    )
    def test_every_proof_folds_to_composite_root(self, shards, clue_ids):
        ledger = build_sharded(shards)
        for i, clue_id in enumerate(clue_ids):
            ledger.append(request(i, f"clue-{clue_id}"))
        composite = ledger.composite_root()
        roots = ledger.shard_roots()
        for shard_index in range(shards):
            link = ledger.shard_link(shard_index, roots)
            assert link.verify(roots[shard_index], composite)
        for clue_id in set(clue_ids):
            for gsn in ledger.list_tx(f"clue-{clue_id}"):
                journal = ledger.get_journal(gsn)
                proof = ledger.get_proof(gsn)
                assert isinstance(proof, ShardProof)
                assert proof.verify(journal.tx_hash(), composite)
                assert ledger.verify_journal(journal, proof)
        ledger.close()

    @settings(max_examples=15, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=5),
        count=st.integers(min_value=1, max_value=20),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_tampered_journal_detected_from_composite_root_alone(
        self, shards, count, flip
    ):
        ledger = build_sharded(shards)
        for i in range(count):
            ledger.append(request(i, f"clue-{i}"))
        composite = ledger.composite_root()
        gsn = ledger.list_tx("clue-0")[0]
        journal = ledger.get_journal(gsn)
        proof = ledger.get_proof(gsn)
        assert proof.verify(journal.tx_hash(), composite)
        payload = bytearray(journal.payload)
        payload[0] ^= flip
        tampered = dataclasses.replace(journal, payload=bytes(payload))
        assert not proof.verify(tampered.tx_hash(), composite)
        ledger.close()

    def test_tampering_any_single_shard_changes_composite_root(self):
        ledger = build_sharded(4)
        for i in range(16):
            ledger.append(request(i, f"clue-{i}"))
        composite = ledger.composite_root()
        roots = ledger.shard_roots()
        for shard_index in range(4):
            # A rewritten shard presents a different live root; its old link
            # no longer folds into the trusted composite root.
            link = ledger.shard_link(shard_index, roots)
            forged_root = bytes(32)
            assert not link.verify(forged_root, composite)
        ledger.close()

    def test_proof_cross_shard_substitution_fails(self):
        ledger = build_sharded(3)
        for i in range(12):
            ledger.append(request(i, f"clue-{i}"))
        composite = ledger.composite_root()
        gsns = sorted(
            gsn for i in range(12) for gsn in ledger.list_tx(f"clue-{i}")
        )
        proofs = {gsn: ledger.get_proof(gsn) for gsn in gsns}
        a, b = next(
            (x, y)
            for x in gsns
            for y in gsns
            if proofs[x].shard_index != proofs[y].shard_index
        )
        # Re-binding a proof to another shard's index must fail the link.
        forged = dataclasses.replace(proofs[a], shard_index=proofs[b].shard_index)
        assert not forged.verify(ledger.get_journal(a).tx_hash(), composite)
        ledger.close()

    def test_clue_proof_folds_to_composite_state_root(self):
        ledger = build_sharded(3)
        for i in range(12):
            ledger.append(request(i, f"clue-{i % 4}"))
        proof = ledger.prove_clue("clue-1")
        assert isinstance(proof, ShardClueProof)
        journals = [ledger.get_journal(gsn) for gsn in ledger.list_tx("clue-1")]
        digests = {i: j.tx_hash() for i, j in enumerate(journals)}
        assert proof.verify(digests, ledger.state_root())
        digests[0] = bytes(32)
        assert not proof.verify(digests, ledger.state_root())
        ledger.close()


class TestShardProofWire:
    def test_round_trip_preserves_verification(self):
        ledger = build_sharded(4)
        for i in range(10):
            ledger.append(request(i, f"clue-{i}"))
        composite = ledger.composite_root()
        gsn = ledger.list_tx("clue-3")[0]
        journal = ledger.get_journal(gsn)
        proof = ledger.get_proof(gsn)
        decoded = ShardProof.from_bytes(proof.to_bytes())
        assert decoded.shard_index == proof.shard_index
        assert decoded.num_shards == proof.num_shards
        assert decoded.jsn == proof.jsn
        assert decoded.verify(journal.tx_hash(), composite)
        ledger.close()

    def test_truncated_bytes_rejected(self):
        ledger = build_sharded(2)
        ledger.append(request(0, "clue"))
        blob = ledger.get_proof(ledger.list_tx("clue")[0]).to_bytes()
        with pytest.raises(Exception):
            ShardProof.from_bytes(blob[: len(blob) // 2])
        ledger.close()


# --------------------------------------------------- shards=1 equivalence


class TestSingleShardEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        clue_ids=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=12),
    )
    def test_shards1_byte_identical_to_unsharded(self, clue_ids):
        lsp = KeyPair.generate(seed="sharded:lsp")

        def registry() -> MemberRegistry:
            reg = MemberRegistry()
            reg.register("alice", Role.USER, USER.public)
            return reg

        plain = Ledger(
            LedgerConfig(uri=URI), registry=registry(), lsp_keypair=lsp
        )
        sharded = ShardedLedger(
            LedgerConfig(uri=URI, shards=1), registry=registry(), lsp_keypair=lsp
        )
        for i, clue_id in enumerate(clue_ids):
            plain_receipt = plain.append(request(i, f"clue-{clue_id}"))
            shard_receipt = sharded.append(request(i, f"clue-{clue_id}"))
            assert plain_receipt.to_bytes() == shard_receipt.to_bytes()
        # A 1-leaf shard map bags to its only leaf: composite == shard root.
        assert sharded.composite_root() == plain.current_root()
        assert sharded.shard_roots() == [plain.current_root()]
        assert sharded.state_root() == plain.state_root()
        for clue_id in set(clue_ids):
            gsns = sharded.list_tx(f"clue-{clue_id}")
            assert gsns == plain.list_tx(f"clue-{clue_id}")  # gsn == jsn at N=1
            for gsn in gsns:
                assert (
                    sharded.get_journal(gsn).to_bytes()
                    == plain.get_journal(gsn).to_bytes()
                )
                shard_proof = sharded.get_proof(gsn)
                assert (
                    shard_proof.fam.to_bytes()
                    == plain.get_proof(gsn, anchored=False).to_bytes()
                )
        plain.close()
        sharded.close()


# ------------------------------------------------------- service + metrics


class TestShardedService:
    def test_submit_many_commits_across_shards_in_order(self):
        ledger = build_sharded(4)
        service = ShardedLedgerService(ledger, ServiceConfig(max_batch=8))
        requests = [request(i, f"clue-{i}") for i in range(24)]
        futures = service.submit_many(requests)
        receipts = [future.result(timeout=30.0) for future in futures]
        assert len(receipts) == 24
        composite = ledger.composite_root()
        for i in range(24):
            gsns = ledger.list_tx(f"clue-{i}")
            assert len(gsns) == 1
            journal = ledger.get_journal(gsns[0])
            assert ledger.get_proof(gsns[0]).verify(journal.tx_hash(), composite)
        stats = service.stats()
        assert stats["committed"] == 24
        assert len(stats["shards"]) == 4
        service.close()
        assert service.closed
        ledger.close()

    def test_two_live_services_keep_separate_metric_families(self):
        """Regression: queue/batch metrics were process-global across N
        LedgerService instances — shard-1's writer clobbered shard-0's
        gauge and their histograms merged."""
        with obs.scoped() as registry:
            ledger = build_sharded(2)
            service = ShardedLedgerService(ledger)
            futures = [service.submit(request(i, f"clue-{i}")) for i in range(12)]
            for future in futures:
                future.result(timeout=30.0)
            service.close()
            ledger.close()
            snapshot = registry.snapshot()
        committed = {
            name: value
            for name, value in snapshot["counters"].items()
            if ".journals" in name and name.startswith("service.commit")
        }
        assert "service.commit{name=shard-0}.journals" in committed
        assert "service.commit{name=shard-1}.journals" in committed
        # Per-instance families carry only their own shard's journals.
        assert sum(committed.values()) == 12
        assert all(value < 12 for value in committed.values())
        gauges = [
            name
            for name in snapshot["gauges"]
            if name.startswith("service.queue.depth")
        ]
        assert sorted(gauges) == [
            "service.queue.depth{name=shard-0}",
            "service.queue.depth{name=shard-1}",
        ]

    def test_unnamed_service_keeps_bare_metric_names(self):
        with obs.scoped() as registry:
            ledger = Ledger(LedgerConfig(uri=URI))
            ledger.registry.register("alice", Role.USER, USER.public)
            service = LedgerService(ledger)
            service.append(request(0, "clue"), timeout=30.0)
            service.close()
            snapshot = registry.snapshot()
        assert "service.queue.depth" in snapshot["gauges"]
        assert "service.commit.journals" in snapshot["counters"]


# ------------------------------------------- in-process isolation (PR 8)


class TestInProcessIsolation:
    def test_two_ledgers_do_not_share_state(self):
        a = Ledger(LedgerConfig(uri="ledger://iso-a"))
        b = Ledger(LedgerConfig(uri="ledger://iso-b"))
        a.registry.register("alice", Role.USER, USER.public)
        b.registry.register("alice", Role.USER, USER.public)
        a.append(request(0, "iso", uri="ledger://iso-a"))
        assert a.size == 2 and b.size == 1  # genesis + append vs genesis only
        assert a.current_root() != b.current_root()
        # Registries are instance state: dropping a member from one ledger
        # must not affect the other (they only share the process).
        assert a.registry is not b.registry
        a.close()
        b.close()

    def test_shared_registry_requires_shared_lsp_keypair(self):
        registry = MemberRegistry()
        keypair = KeyPair.generate(seed="iso:lsp")
        Ledger(LedgerConfig(uri="ledger://iso-a"), registry=registry, lsp_keypair=keypair)
        # Same registry + same LSP keypair: fine (the sharded layout).
        Ledger(LedgerConfig(uri="ledger://iso-b"), registry=registry, lsp_keypair=keypair)
        # Same registry + a different LSP keypair: the registry would
        # certify two keys under one member id — refused.
        with pytest.raises(UsageError):
            Ledger(LedgerConfig(uri="ledger://iso-c"), registry=registry)

    def test_ledger_kernel_rejects_sharded_config(self):
        with pytest.raises(UsageError):
            Ledger(LedgerConfig(uri=URI, shards=4))


# ----------------------------------------------------------- api surface


class TestApiSurface:
    def test_create_routes_sharded_config(self):
        with api.scoped_ledger(
            "ledger://api-sharded-t",
            config=LedgerConfig(uri="ledger://api-sharded-t", shards=3),
        ) as session:
            assert isinstance(session.ledger, ShardedLedger)
            assert session.ledger.num_shards == 3

    def test_session_service_true_builds_sharded_service(self):
        with api.scoped_ledger(
            "ledger://api-sharded-svc",
            config=LedgerConfig(uri="ledger://api-sharded-svc", shards=2),
            service=True,
            client_id="alice",
            keypair=USER,
        ) as session:
            assert isinstance(session.service, ShardedLedgerService)
            session.ledger.registry.register("alice", Role.USER, USER.public)
            receipt = session.append(b"payload", clue="api-clue")
            assert receipt is not None
            report = session.audit()
            assert report.passed and len(report.reports) == 2

    def test_connect_malformed_remote_uri_names_the_uri(self):
        """Regression: ``ledger://host`` (no port) fell through to a
        misleading "unknown ledger" instead of naming the malformed URI."""
        with pytest.raises(UsageError, match="malformed ledger uri"):
            api.connect("ledger://somehost")
        with pytest.raises(UsageError, match="somehost"):
            api.connect("ledger://somehost")
        # Non-address ids keep the old unknown-ledger diagnosis.
        with pytest.raises(UsageError, match="unknown ledger"):
            api.connect("no-scheme-at-all")


# ------------------------------------------------------------ persistence


class TestPersistence:
    def test_reopen_preserves_composite_root(self, tmp_path):
        lsp = KeyPair.generate(seed="sharded:lsp")
        registry = MemberRegistry()
        registry.register("alice", Role.USER, USER.public)
        config = LedgerConfig(
            uri=URI, shards=3, data_dir=str(tmp_path / "deployment"),
            node_store="paged",
        )
        ledger = ShardedLedger(config, registry=registry, lsp_keypair=lsp)
        for i in range(9):
            ledger.append(request(i, f"clue-{i}"))
        composite = ledger.composite_root()
        state = ledger.state_root()
        ledger.close()

        reopened = ShardedLedger.open(
            str(tmp_path / "deployment"), registry, lsp
        )
        assert reopened.composite_root() == composite
        assert reopened.state_root() == state
        for i in range(9):
            gsns = reopened.list_tx(f"clue-{i}")
            journal = reopened.get_journal(gsns[0])
            assert reopened.get_proof(gsns[0]).verify(journal.tx_hash(), composite)
        reopened.close()
