"""The non-equivocation layer: signed tree heads, witness gossip, acks.

Covers the transparency primitives offline (serialization, signatures,
conflict detection), the ledger-side surface (epoch-close emission, STH
persistence across reopen, consistency edge cases including spans that
cross a snapshot reopen), the sharded composite head, and the unified
:class:`~repro.session.VerifyingSession` protocol — identical signatures on
both transports, typed per-transport kwarg rejection, structured
VerifyResult on remote verify paths.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import replace

import pytest

import repro.api as api
from repro import ClientRequest, KeyPair, Ledger, LedgerConfig, Role, SimClock
from repro.core.errors import UsageError
from repro.core.ledger import DEFAULT_ACK_DEADLINE_EPOCHS
from repro.core.verification import VerifyResult
from repro.net import ServerThread
from repro.net.client import RemoteLedgerSession
from repro.session import VerifyingSession
from repro.shard.sharded import ShardedLedger
from repro.transparency import (
    CensorshipEvidence,
    ConsistencyBundle,
    EquivocationEvidence,
    SignedTreeHead,
    SthStore,
    SubmissionAck,
    Witness,
    refute_censorship,
    verify_equivocation,
)

H = 2  # epoch capacity 4: epochs roll fast enough to exercise everything
CAP = 2**H

_URIS = itertools.count()


def make_ledger(uri: str | None = None, tmp=None, **config_kwargs):
    uri = uri or f"ledger://transparency-{next(_URIS)}"
    config = LedgerConfig(
        uri=uri,
        fractal_height=H,
        data_dir=str(tmp) if tmp is not None else None,
        **config_kwargs,
    )
    ledger = Ledger(config, clock=SimClock())
    keypair = KeyPair.generate(seed="transparency:alice")
    ledger.registry.register("alice", Role.USER, keypair.public)
    return ledger, keypair


def make_session(ledger, keypair=None):
    return api.LedgerSession(
        ledger,
        lgid=ledger.config.uri,
        client_id="alice" if keypair is not None else None,
        keypair=keypair,
    )


def fill(session, count: int, clue: str = "FILL", tag: str = "x"):
    for index in range(count):
        session.append(f"{tag}:{index}".encode(), clue=clue)


# ---------------------------------------------------------------- primitives


class TestSignedTreeHead:
    def test_round_trip_and_signature(self):
        ledger, keypair = make_ledger()
        with make_session(ledger, keypair) as session:
            fill(session, 3, clue="STH")
            head = session.get_sth()
        assert head.verify(ledger.lsp_public_key)
        decoded = SignedTreeHead.from_bytes(head.to_bytes())
        assert decoded == head
        assert decoded.verify(ledger.lsp_public_key)
        assert not decoded.is_composite

    def test_tampered_head_fails_signature(self):
        ledger, _ = make_ledger()
        head = ledger.get_sth()
        forged = replace(head, tree_size=head.tree_size + 1)
        assert not forged.verify(ledger.lsp_public_key)

    def test_sth_cache_serves_identical_head_until_append(self):
        ledger, _ = make_ledger()
        first = ledger.get_sth()
        assert ledger.get_sth() == first  # cached: same coords, same bytes

    def test_epoch_close_heads_emitted_at_expected_coords(self):
        ledger, keypair = make_ledger()
        with make_session(ledger, keypair) as session:
            fill(session, 3 * CAP)
        heads = ledger.get_sth_range(0, ledger._fam.num_epochs)
        assert heads, "epoch rolls must mint close heads"
        assert [head.epoch for head in heads] == list(
            range(1, ledger._fam.num_epochs)
        )
        for head in heads:
            # Epoch k becomes live at CAP + (k-1)*(CAP-1) journals, with the
            # merged leaf as its only live leaf.
            assert head.tree_size == CAP + (head.epoch - 1) * (CAP - 1)
            assert head.live_size == 1
            assert head.verify(ledger.lsp_public_key)

    def test_get_sth_range_validates(self):
        ledger, _ = make_ledger()
        with pytest.raises(UsageError):
            ledger.get_sth_range(-1, 2)
        with pytest.raises(UsageError):
            ledger.get_sth_range(3, 1)


class TestSthStore:
    def test_persists_across_ledger_reopen(self, tmp_path):
        ledger, keypair = make_ledger(tmp=tmp_path / "led")
        with make_session(ledger, keypair) as session:
            fill(session, 2 * CAP + 1)
        stored = [h.coords for h in ledger.get_sth_range(0, 100)]
        assert stored
        registry, lsp = ledger.registry, ledger._lsp_keypair
        ledger.close()
        reopened = Ledger.open(str(tmp_path / "led"), registry, lsp)
        assert [h.coords for h in reopened.get_sth_range(0, 100)] == stored
        # New epochs after reopen extend the same store, no duplicates.
        with make_session(reopened, keypair) as session:
            fill(session, 2 * CAP)
        grown = reopened.get_sth_range(0, 100)
        assert len(grown) > len(stored)
        assert len({h.epoch for h in grown}) == len(grown)

    def test_file_backed_store_round_trips_and_drops_torn_tail(self, tmp_path):
        ledger, keypair = make_ledger()
        with make_session(ledger, keypair) as session:
            fill(session, 2 * CAP)
        path = tmp_path / "sth.log"
        store = SthStore(path)
        for head in ledger.get_sth_range(0, 100):
            store.append(head)
        assert len(store) >= 1
        reloaded = SthStore(path)
        assert reloaded.heads() == store.heads()
        assert reloaded.latest() == store.latest()
        assert reloaded.for_epoch(1) is not None
        # A crash mid-append loses at most the in-flight record.
        with open(path, "ab") as fh:
            fh.write((1 << 20).to_bytes(4, "big") + b"torn")
        salvaged = SthStore(path)
        assert salvaged.heads() == store.heads()


# ------------------------------------------------------- consistency proofs


class TestConsistencyEdgeCases:
    def make(self):
        ledger, keypair = make_ledger()
        return ledger, make_session(ledger, keypair)

    def test_size_equal_heads_verify(self):
        ledger, session = self.make()
        fill(session, 3)
        head = session.get_sth()
        bundle, assertion = session.get_consistency(head, head)
        assert bundle.verify(head, head)
        assert assertion.verify(ledger.lsp_public_key)

    def test_same_epoch_growth(self):
        ledger, session = self.make()
        fill(session, 1)
        old = session.get_sth()
        fill(session, 1)
        new = session.get_sth()
        bundle, _ = session.get_consistency(old, new)
        assert bundle.verify(old, new)
        # The bundle is bound to exactly those endpoints.
        fill(session, CAP)
        newer = session.get_sth()
        assert not bundle.verify(old, newer)

    def test_cross_epoch_non_aligned_boundaries(self):
        ledger, session = self.make()
        fill(session, 2)  # mid epoch 0
        old = session.get_sth()
        fill(session, 2 * CAP + 1)  # several rolls later, mid-epoch again
        new = session.get_sth()
        assert old.epoch != new.epoch
        bundle, assertion = session.get_consistency(old, new)
        assert bundle.verify(old, new)
        assert assertion.old_root == old.root and assertion.new_root == new.root

    def test_epoch_close_head_connects_both_ways(self):
        ledger, session = self.make()
        fill(session, 2)
        early = session.get_sth()
        fill(session, 2 * CAP)
        late = session.get_sth()
        for stored in session.get_sth_range(1, 100):
            bundle, _ = session.get_consistency(early, stored)
            assert bundle.verify(early, stored)
            bundle, _ = session.get_consistency(stored, late)
            assert bundle.verify(stored, late)

    def test_reversed_heads_rejected(self):
        ledger, session = self.make()
        fill(session, 1)
        old = session.get_sth()
        fill(session, CAP)
        new = session.get_sth()
        with pytest.raises(UsageError):
            session.get_consistency(new, old)

    def test_empty_old_head_rejected(self):
        ledger, session = self.make()
        fill(session, 1)
        head = session.get_sth()
        hollow = replace(head, live_size=0, tree_size=0)
        with pytest.raises(UsageError):
            session.get_consistency(hollow, head)

    def test_fabricated_coords_rejected_not_crash(self):
        ledger, session = self.make()
        fill(session, 2)
        head = session.get_sth()
        beyond = replace(head, epoch=7, live_size=3, tree_size=999)
        with pytest.raises(UsageError):
            session.get_consistency(head, beyond)

    def test_span_across_snapshot_reopen(self, tmp_path):
        ledger, keypair = make_ledger(tmp=tmp_path / "led")
        with make_session(ledger, keypair) as session:
            fill(session, CAP + 1)
            old = session.get_sth()
        ledger.checkpoint()
        registry, lsp = ledger.registry, ledger._lsp_keypair
        ledger.close()
        reopened = Ledger.open(str(tmp_path / "led"), registry, lsp)
        with make_session(reopened, keypair) as session:
            fill(session, CAP + 2)
            new = session.get_sth()
            bundle, assertion = session.get_consistency(old, new)
        assert bundle.verify(old, new)
        assert assertion.verify(reopened.lsp_public_key)

    def test_bundle_bytes_round_trip(self):
        ledger, session = self.make()
        fill(session, 2)
        old = session.get_sth()
        fill(session, 2 * CAP)
        new = session.get_sth()
        bundle, _ = session.get_consistency(old, new)
        assert ConsistencyBundle.from_bytes(bundle.to_bytes()).verify(old, new)


# ------------------------------------------------------------------ sharded


class TestShardedTransparency:
    def make_sharded(self, shards: int = 2):
        sharded = ShardedLedger(
            LedgerConfig(
                uri=f"ledger://sharded-sth-{next(_URIS)}",
                fractal_height=H,
                shards=shards,
            )
        )
        keypair = KeyPair.generate(seed="transparency:alice")
        sharded.registry.register("alice", Role.USER, keypair.public)
        session = api.LedgerSession(
            sharded, lgid=sharded.config.uri, client_id="alice", keypair=keypair
        )
        return sharded, session

    def test_composite_head_refolds(self):
        sharded, session = self.make_sharded()
        with session:
            fill(session, 6, clue="S")
            head = session.get_sth()
        assert head.is_composite
        assert head.composite_consistent()
        assert head.verify(sharded.lsp_public_key)
        assert len(head.shard_heads) == sharded.num_shards
        decoded = SignedTreeHead.from_bytes(head.to_bytes())
        assert decoded.composite_consistent()
        forged = replace(head, root=b"\x13" * 32)
        assert not forged.composite_consistent()

    def test_composite_head_rejected_for_consistency(self):
        sharded, session = self.make_sharded()
        with session:
            fill(session, 4, clue="S")
            head = session.get_sth()
            with pytest.raises(UsageError):
                session.get_consistency(head, head)

    def test_per_shard_streams_stay_consistent(self):
        sharded, session = self.make_sharded()
        with session:
            fill(session, 3 * CAP * sharded.num_shards, clue="S")
        for index in range(sharded.num_shards):
            head = sharded.get_sth_shard(index)
            assert head.shard_index == index
            bundle, assertion = sharded.get_consistency(head, head)
            assert bundle.verify(head, head)
            assert assertion.shard_index == index

    def test_sibling_shards_are_not_forks(self):
        sharded, session = self.make_sharded()
        with session:
            fill(session, 4 * sharded.num_shards, clue="S")
        witness = Witness(sharded.lsp_public_key)
        for index in range(sharded.num_shards):
            assert witness.ingest(sharded.get_sth_shard(index)) is None
        assert not witness.evidence and not witness.alarms

    def test_composite_cross_check_catches_forged_shard_entry(self):
        sharded, session = self.make_sharded()
        with session:
            fill(session, 8, clue="S")
        witness = Witness(sharded.lsp_public_key)
        composite = sharded.get_sth()
        assert witness.ingest(composite) is None
        shard_head = sharded.get_sth_shard(0)
        assert witness.ingest(shard_head) is None  # agrees with composite
        # The shard later equivocates against the composite it rolled into:
        forged = replace(
            shard_head, root=b"\x13" * 32, lsp_signature=None
        ).signed_by(sharded.shards[0]._lsp_keypair)
        conflict = witness.ingest(forged)
        assert conflict is not None
        assert conflict.kind in ("fork-composite", "fork-heads")
        assert verify_equivocation(conflict, sharded.lsp_public_key)


# ------------------------------------------------------------------ witness


class TestWitness:
    def test_audit_is_clean_and_incremental_on_honest_stream(self):
        ledger, keypair = make_ledger()
        witness = Witness(ledger.lsp_public_key)
        with make_session(ledger, keypair) as session:
            fill(session, 2)
            report1 = witness.audit(session)  # first head: nothing to pair yet
            fill(session, 2 * CAP)
            report2 = witness.audit(session)  # new head: the gap gets proven
            report3 = witness.audit(session)  # no growth: nothing new to prove
        assert report1.clean and report2.clean and report3.clean
        assert report1.pairs_checked == 0
        assert report2.pairs_checked > 0
        assert report3.pairs_checked == 0
        assert witness.head_count > 0
        assert witness.heads(ledger.config.uri)

    def test_bad_signature_is_alarm_not_evidence(self):
        ledger, _ = make_ledger()
        other = KeyPair.generate(seed="not-the-lsp")
        witness = Witness(ledger.lsp_public_key)
        head = ledger.get_sth()
        forged = replace(head, lsp_signature=None).signed_by(other)
        assert witness.ingest(forged) is None
        assert witness.alarms and not witness.evidence

    def test_duplicate_heads_dedupe(self):
        ledger, _ = make_ledger()
        witness = Witness(ledger.lsp_public_key)
        head = ledger.get_sth()
        assert witness.ingest(head) is None
        before = witness.head_count
        assert witness.ingest(head) is None
        assert witness.head_count == before

    def test_fork_heads_evidence_round_trips(self):
        ledger, _ = make_ledger()
        witness = Witness(ledger.lsp_public_key)
        head = ledger.get_sth()
        fork = replace(head, root=b"\x42" * 32, lsp_signature=None).signed_by(
            ledger._lsp_keypair
        )
        assert witness.ingest(head) is None
        evidence = witness.ingest(fork)
        assert evidence is not None and evidence.kind == "fork-heads"
        assert verify_equivocation(evidence, ledger.lsp_public_key)
        decoded = EquivocationEvidence.from_bytes(evidence.to_bytes())
        assert verify_equivocation(decoded, ledger.lsp_public_key)
        # Evidence is stream-bound: the wrong key refutes it.
        wrong = KeyPair.generate(seed="wrong").public
        assert not verify_equivocation(decoded, wrong)

    def test_contradictory_assertion_is_evidence(self):
        ledger, keypair = make_ledger()
        witness = Witness(ledger.lsp_public_key)
        with make_session(ledger, keypair) as session:
            fill(session, 2)
            head = session.get_sth()
            witness.ingest(head)
            fill(session, 1)
            new = session.get_sth()
            _, assertion = session.get_consistency(head, new)
        # Honest assertion agrees with the stored head: no evidence.
        assert witness.observe_assertion(assertion) is None
        lying = replace(
            assertion, old_root=b"\x66" * 32, lsp_signature=None
        ).signed_by(ledger._lsp_keypair)
        evidence = witness.observe_assertion(lying)
        assert evidence is not None and evidence.kind == "fork-assertion"
        assert verify_equivocation(evidence, ledger.lsp_public_key)


# --------------------------------------------------------------- censorship


class TestCensorship:
    def test_ack_round_trip_and_deadline_maturity(self):
        ledger, keypair = make_ledger()
        with make_session(ledger, keypair) as session:
            receipt, ack = session.append_acked(b"promise me", clue="ACK")
            assert receipt.verify(ledger.lsp_public_key)
            assert ack.verify(ledger.lsp_public_key)
            assert ack.deadline_epochs == DEFAULT_ACK_DEADLINE_EPOCHS
            decoded = SubmissionAck.from_bytes(ack.to_bytes())
            assert decoded == ack
            # Before the deadline epoch the evidence bundle does not verify.
            young = CensorshipEvidence(ack=ack, sth=session.get_sth())
            assert not young.verify(ledger.lsp_public_key)
            fill(session, (ack.deadline_epochs + 1) * CAP)
            mature = CensorshipEvidence(ack=ack, sth=session.get_sth())
            assert mature.verify(ledger.lsp_public_key)
            # ...but the honest server refutes it with an inclusion proof.
            journal = session.list_tx("ACK")[0]
            proof = ledger.get_proof(journal.jsn, anchored=False)
            assert refute_censorship(mature, journal, proof)

    def test_ack_validates_deadline_and_uri(self):
        ledger, keypair = make_ledger()
        with make_session(ledger, keypair) as session:
            with pytest.raises(UsageError):
                session.append_acked(b"x", deadline_epochs=0)
        foreign = ClientRequest.build(
            "ledger://elsewhere", "alice", b"x", nonce=b"1", client_timestamp=1.0
        ).signed_by(keypair)
        with pytest.raises(UsageError):
            ledger.issue_ack(foreign)

    def test_refutation_requires_matching_request(self):
        ledger, keypair = make_ledger()
        with make_session(ledger, keypair) as session:
            _, ack = session.append_acked(b"mine", clue="A", deadline_epochs=1)
            session.append(b"other", clue="B")
            fill(session, (ack.deadline_epochs + 1) * CAP)
            evidence = CensorshipEvidence(ack=ack, sth=session.get_sth())
            assert evidence.verify(ledger.lsp_public_key)
            wrong_journal = session.list_tx("B")[0]
            proof = ledger.get_proof(wrong_journal.jsn, anchored=False)
            assert not refute_censorship(evidence, wrong_journal, proof)


# ----------------------------------------------------- protocol conformance


#: Methods whose *signatures* must be identical on both transports.
PROTOCOL_METHODS = [
    "append",
    "append_batch",
    "append_acked",
    "list_tx",
    "get_proof",
    "get_proofs",
    "get_sth",
    "get_sth_range",
    "get_consistency",
    "verify",
    "export",
    "close",
]


class TestVerifyingSessionProtocol:
    def test_local_session_satisfies_protocol(self):
        ledger, keypair = make_ledger()
        with make_session(ledger, keypair) as session:
            assert isinstance(session, VerifyingSession)

    def test_remote_session_satisfies_protocol(self):
        ledger, _ = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(f"ledger://{host}:{port}") as session:
                assert isinstance(session, VerifyingSession)
                assert isinstance(session, RemoteLedgerSession)

    def test_signatures_identical_across_transports(self):
        for name in PROTOCOL_METHODS:
            local = inspect.signature(getattr(api.LedgerSession, name))
            remote = inspect.signature(getattr(RemoteLedgerSession, name))
            assert list(local.parameters) == list(remote.parameters), name
            for parameter in local.parameters.values():
                twin = remote.parameters[parameter.name]
                assert parameter.kind == twin.kind, (name, parameter.name)
                assert parameter.default == twin.default, (name, parameter.name)

    def test_no_silently_swallowed_kwargs(self):
        """Neither transport's append path accepts ``**kwargs`` any more."""
        for cls in (api.LedgerSession, RemoteLedgerSession):
            for name in ("append", "append_batch", "append_acked"):
                signature = inspect.signature(getattr(cls, name))
                kinds = {p.kind for p in signature.parameters.values()}
                assert inspect.Parameter.VAR_KEYWORD not in kinds, (cls, name)

    def test_remote_rejects_max_workers_typed(self):
        ledger, keypair = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(
                f"ledger://{host}:{port}", client_id="alice", keypair=keypair
            ) as session:
                with pytest.raises(UsageError, match="remote transport"):
                    session.append_batch([(b"x", None)], max_workers=2)

    def test_local_rejects_remote_only_kwargs(self):
        uri = f"ledger://kwargs-{next(_URIS)}"
        api.create(uri)
        try:
            with pytest.raises(UsageError, match="local transport"):
                api.connect(uri, timeout=5.0)
            with pytest.raises(UsageError, match="local transport"):
                api.connect(uri, expected_lsp_key=b"\x00" * 33)
        finally:
            api.drop_ledger(uri)

    def test_remote_rejects_service_kwarg(self):
        ledger, _ = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with pytest.raises(UsageError, match="remote transport"):
                api.connect(f"ledger://{host}:{port}", service=True)

    def test_remote_verify_returns_structured_result(self):
        ledger, keypair = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(
                f"ledger://{host}:{port}", client_id="alice", keypair=keypair
            ) as session:
                session.append(b"structured", clue="VR")
                journal = session.list_tx("VR")[0]
                for level in ("server", "client"):
                    result = session.verify("tx", txdata=[journal], level=level)
                    assert isinstance(result, VerifyResult) and result
                clue_result = session.verify(
                    "clue", key="VR", txdata=[journal], level="client"
                )
                assert isinstance(clue_result, VerifyResult) and clue_result
                assert isinstance(session.verify_journal(journal), VerifyResult)
                assert isinstance(session.verify_clue("VR"), VerifyResult)

    def test_per_call_identity_on_remote(self):
        ledger, _ = make_ledger()
        bob = KeyPair.generate(seed="transparency:bob")
        ledger.registry.register("bob", Role.USER, bob.public)
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(f"ledger://{host}:{port}") as session:
                with pytest.raises(UsageError, match="identity"):
                    session.append(b"anon")
                receipt = session.append(b"as bob", client_id="bob", keypair=bob)
                assert receipt.jsn > 0

    def test_witness_is_transport_blind(self):
        """One witness audits local and remote sessions of the same ledger
        with zero branches and zero false positives."""
        ledger, keypair = make_ledger()
        witness = Witness(ledger.lsp_public_key)
        with make_session(ledger, keypair) as local:
            fill(local, CAP + 1)
            assert witness.audit(local).clean
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(f"ledger://{host}:{port}") as remote:
                assert witness.audit(remote).clean
        assert not witness.evidence and not witness.alarms

    def test_remote_sth_surface_checks_signatures(self):
        ledger, keypair = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(
                f"ledger://{host}:{port}", client_id="alice", keypair=keypair
            ) as session:
                fill(session, 2 * CAP)
                head = session.get_sth()
                assert head.verify(ledger.lsp_public_key)
                stored = session.get_sth_range(0, 100)
                assert stored == ledger.get_sth_range(0, 100)
                bundle, assertion = session.get_consistency(stored[0], head)
                assert bundle.verify(stored[0], head)
                assert assertion.verify(ledger.lsp_public_key)

    def test_remote_append_acked_end_to_end(self):
        ledger, keypair = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(
                f"ledger://{host}:{port}", client_id="alice", keypair=keypair
            ) as session:
                receipt, ack = session.append_acked(b"remote ack", clue="RA")
                assert receipt.verify(ledger.lsp_public_key)
                assert ack.verify(ledger.lsp_public_key)
                assert ack.deadline_epochs == DEFAULT_ACK_DEADLINE_EPOCHS
                _, custom = session.append_acked(b"again", deadline_epochs=5)
                assert custom.deadline_epochs == 5

    def test_remote_composite_sth_requires_sharded_backend(self):
        ledger, _ = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(f"ledger://{host}:{port}") as session:
                with pytest.raises(UsageError):
                    session.client.get_sth(composite=True)


# ------------------------------------------- capability table & remote export


class TestTransportCapabilities:
    """The declarative capability table behind every kwarg rejection."""

    def test_every_capability_names_a_known_transport(self):
        from repro.session import CAPABILITIES

        for name, capability in CAPABILITIES.items():
            assert capability.kwarg == name
            assert capability.transports <= {"local", "remote"}
            assert capability.reason

    def test_check_skips_none_values(self):
        from repro.session import check_transport_kwargs

        check_transport_kwargs("local", "ledger://x", timeout=None)
        check_transport_kwargs("remote", "ledger://x", service=None)

    def test_check_raises_on_unsupported_transport(self):
        from repro.session import check_transport_kwargs

        with pytest.raises(UsageError, match="local transport"):
            check_transport_kwargs("local", "ledger://x", timeout=5.0)
        with pytest.raises(UsageError, match="remote transport"):
            check_transport_kwargs("remote", "ledger://x", service=True)

    def test_unknown_kwargs_pass_through(self):
        from repro.session import check_transport_kwargs

        check_transport_kwargs("local", "ledger://x", not_a_capability=1)


class TestRemoteExport:
    def test_export_over_the_wire_verifies_standalone(self, tmp_path):
        from repro.export.verifier import verify_bundle

        ledger, keypair = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            with api.connect(
                f"ledger://{host}:{port}", client_id="alice", keypair=keypair
            ) as session:
                for i in range(10):
                    session.append(b"wire-%02d" % i, clue="WIRE")
                path = tmp_path / "wire.bundle"
                bundle = session.export(path, clues=("WIRE",))
        assert path.exists()
        assert bundle.ledger_uri == ledger.config.uri
        assert bundle.journal_count == ledger.size
        result = verify_bundle(bundle)
        assert result, result.detail
        local = api.LedgerSession(ledger).export(clues=("WIRE",))
        assert bundle.to_bytes() == local.to_bytes()

    def test_scoped_ledger_scopes_a_remote_uri(self):
        ledger, keypair = make_ledger()
        with ServerThread(ledger) as served:
            host, port = served.address
            address = f"ledger://{host}:{port}"
            with api.scoped_ledger(
                address, client_id="alice", keypair=keypair
            ) as session:
                assert session.transport == "remote"
                session.append(b"scoped-remote", clue="SC")
            with pytest.raises(UsageError, match="remote scope"):
                with api.scoped_ledger(address, config=LedgerConfig(uri="x")):
                    pass
