"""Key pairs, public-key encoding, and the CA substrate."""

import pytest

from repro.crypto import (
    CertificateAuthority,
    CertificateError,
    KeyPair,
    PublicKey,
    Role,
    sha256,
)


def test_seeded_generation_is_deterministic():
    assert KeyPair.generate(seed="alice").secret == KeyPair.generate(seed="alice").secret
    assert KeyPair.generate(seed="alice").secret != KeyPair.generate(seed="bob").secret


def test_unseeded_generation_is_random():
    assert KeyPair.generate().secret != KeyPair.generate().secret


def test_sign_and_verify():
    keypair = KeyPair.generate(seed="t")
    digest = sha256(b"payload")
    assert keypair.public.verify(digest, keypair.sign(digest))


def test_public_key_round_trip():
    keypair = KeyPair.generate(seed="t")
    encoded = keypair.public.to_bytes()
    assert encoded[0] == 0x04 and len(encoded) == 65
    assert PublicKey.from_bytes(encoded) == keypair.public


def test_public_key_from_bytes_rejects_garbage():
    with pytest.raises(ValueError):
        PublicKey.from_bytes(b"\x04" + b"\x01" * 64)  # off-curve
    with pytest.raises(ValueError):
        PublicKey.from_bytes(b"\x02" + b"\x00" * 64)  # wrong prefix


def test_fingerprint_is_stable_and_distinct():
    a = KeyPair.generate(seed="a").public
    b = KeyPair.generate(seed="b").public
    assert a.fingerprint() == a.fingerprint()
    assert a.fingerprint() != b.fingerprint()


class TestCertificateAuthority:
    def test_issue_and_validate(self):
        ca = CertificateAuthority("root")
        keypair = KeyPair.generate(seed="member")
        cert = ca.issue("alice", Role.USER, keypair.public)
        assert cert.verify(ca.public_key)
        ca.validate(cert)
        assert ca.lookup("alice") == cert

    def test_duplicate_member_rejected(self):
        ca = CertificateAuthority("root")
        keypair = KeyPair.generate(seed="member")
        ca.issue("alice", Role.USER, keypair.public)
        with pytest.raises(CertificateError):
            ca.issue("alice", Role.DBA, keypair.public)

    def test_unknown_member_lookup(self):
        with pytest.raises(CertificateError):
            CertificateAuthority("root").lookup("ghost")

    def test_cert_from_other_ca_rejected(self):
        ca1 = CertificateAuthority("ca1")
        ca2 = CertificateAuthority("ca2")
        cert = ca1.issue("alice", Role.USER, KeyPair.generate(seed="m").public)
        with pytest.raises(CertificateError):
            ca2.validate(cert)
        assert not cert.verify(ca2.public_key)

    def test_forged_certificate_fails(self):
        import dataclasses

        ca = CertificateAuthority("root")
        cert = ca.issue("alice", Role.USER, KeyPair.generate(seed="m").public)
        forged = dataclasses.replace(cert, role=Role.DBA)  # privilege escalation
        assert not forged.verify(ca.public_key)
        with pytest.raises(CertificateError):
            ca.validate(forged)

    def test_roles_cover_paper_parties(self):
        names = {role.value for role in Role}
        assert {"user", "lsp", "tsa", "dba", "regulator"} <= names
