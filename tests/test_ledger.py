"""Ledger kernel: append pipeline, blocks, proofs, clue APIs, time anchoring."""

import dataclasses

import pytest

from repro.core import (
    AuthenticationError,
    ClientRequest,
    JournalNotFoundError,
    JournalType,
    Ledger,
    LedgerConfig,
    LSP_MEMBER_ID,
)
from repro.core.errors import LedgerError
from repro.crypto import KeyPair
from repro.merkle.fam import FamAccumulator

from conftest import LEDGER_URI


class TestAppendPipeline:
    def test_genesis_created_at_construction(self, deployment):
        journal = deployment.ledger.get_journal(0)
        assert journal.journal_type is JournalType.GENESIS
        assert journal.client_id == LSP_MEMBER_ID
        assert deployment.ledger.size == 1

    def test_append_assigns_sequential_jsns(self, deployment):
        receipts = [deployment.append("alice", b"p%d" % i) for i in range(5)]
        assert [r.jsn for r in receipts] == [1, 2, 3, 4, 5]

    def test_receipt_fields(self, deployment):
        receipt = deployment.append("alice", b"data")
        journal = deployment.ledger.get_journal(receipt.jsn)
        assert receipt.tx_hash == journal.tx_hash()
        assert receipt.request_hash == journal.request_hash
        assert receipt.ledger_root == deployment.ledger.current_root()
        lsp_cert = deployment.ledger.registry.certificate(LSP_MEMBER_ID)
        assert receipt.verify(lsp_cert.public_key)

    def test_unsigned_request_rejected(self, deployment):
        request = ClientRequest.build(LEDGER_URI, "alice", b"x")
        with pytest.raises(AuthenticationError, match="unsigned"):
            deployment.ledger.append(request)
        assert deployment.ledger.size == 1  # nothing written (threat-A defence)

    def test_bad_signature_rejected(self, deployment):
        mallory = KeyPair.generate(seed="mallory")
        request = ClientRequest.build(LEDGER_URI, "alice", b"x").signed_by(mallory)
        with pytest.raises(AuthenticationError, match="invalid signature"):
            deployment.ledger.append(request)

    def test_tampered_payload_after_signing_rejected(self, deployment):
        request = deployment.request("alice", b"original")
        tampered = dataclasses.replace(request, payload=b"tampered")
        with pytest.raises(AuthenticationError):
            deployment.ledger.append(tampered)

    def test_unknown_member_rejected(self, deployment):
        ghost = KeyPair.generate(seed="ghost")
        request = ClientRequest.build(LEDGER_URI, "ghost", b"x").signed_by(ghost)
        with pytest.raises(AuthenticationError, match="unknown member"):
            deployment.ledger.append(request)

    def test_wrong_ledger_uri_rejected(self, deployment):
        request = ClientRequest.build("ledger://other", "alice", b"x").signed_by(
            deployment.keys["alice"]
        )
        with pytest.raises(AuthenticationError, match="targets"):
            deployment.ledger.append(request)

    def test_clients_cannot_append_system_journals(self, deployment):
        system_types = (
            JournalType.TIME, JournalType.PURGE, JournalType.OCCULT, JournalType.GENESIS
        )
        for journal_type in system_types:
            request = deployment.request("alice", b"x", journal_type=journal_type)
            with pytest.raises(AuthenticationError, match="normal journals"):
                deployment.ledger.append(request)

    def test_create_classmethod(self):
        ledger = Ledger.create("ledger://fresh")
        assert ledger.config.uri == "ledger://fresh"
        assert ledger.size == 1


class TestBlocks:
    def test_blocks_commit_every_block_size(self, deployment):
        for i in range(8):  # block size 4; genesis occupies one slot
            deployment.append("alice", b"p%d" % i)
        blocks = deployment.ledger.blocks
        assert len(blocks) == 2
        assert blocks[0].start_jsn == 0 and blocks[0].end_jsn == 4
        assert blocks[1].start_jsn == 4 and blocks[1].end_jsn == 8

    def test_block_chain_links(self, populated):
        deployment, _receipts = populated
        blocks = deployment.ledger.blocks
        from repro.crypto.hashing import EMPTY_DIGEST

        assert blocks[0].previous_hash == EMPTY_DIGEST
        for previous, current in zip(blocks, blocks[1:]):
            assert current.previous_hash == previous.hash()
            assert current.start_jsn == previous.end_jsn

    def test_manual_commit_flushes_partial_block(self, deployment):
        deployment.append("alice", b"x")
        block = deployment.ledger.commit_block()
        assert block is not None and block.end_jsn == deployment.ledger.size
        assert deployment.ledger.commit_block() is None  # nothing pending

    def test_block_roots_snapshot_state(self, populated):
        deployment, _receipts = populated
        last = deployment.ledger.blocks[-1]
        assert last.journal_root == deployment.ledger.current_root()
        assert last.state_root == deployment.ledger.state_root()


class TestExistenceProofs:
    def test_get_proof_and_server_verify(self, populated):
        deployment, _receipts = populated
        for jsn in range(deployment.ledger.size):
            journal = deployment.ledger.get_journal(jsn)
            assert deployment.ledger.verify_journal(journal)

    def test_full_chain_proof_verifies_against_receipt_root(self, populated):
        # The LSP-signed ledger_root in the *latest* receipt is the trusted
        # datum an external client verifies full-chain proofs against.
        deployment, receipts = populated
        receipt = deployment.ledger.latest_receipt
        assert receipt.ledger_root == deployment.ledger.current_root()
        journal = deployment.ledger.get_journal(receipts[3].jsn)
        proof = deployment.ledger.get_proof(journal.jsn, anchored=False)
        assert FamAccumulator.verify_full(journal.tx_hash(), proof, receipt.ledger_root)

    def test_forged_journal_fails_server_verify(self, populated):
        deployment, receipts = populated
        journal = deployment.ledger.get_journal(3)
        forged = dataclasses.replace(journal, payload=b"foopar")  # the paper's example
        assert not deployment.ledger.verify_journal(forged)

    def test_missing_journal(self, deployment):
        with pytest.raises(JournalNotFoundError):
            deployment.ledger.get_journal(99)


class TestEpochAnchorCache:
    def _count_epoch_root_calls(self, ledger):
        calls = {"n": 0}
        original = ledger._fam.epoch_root

        def counting(epoch):
            calls["n"] += 1
            return original(epoch)

        ledger._fam.epoch_root = counting
        return calls

    def test_repeated_verifies_do_not_rescan_epochs(self, populated):
        deployment, _receipts = populated
        ledger = deployment.ledger
        ledger.epoch_anchors()  # warm the cache
        calls = self._count_epoch_root_calls(ledger)
        for jsn in range(1, 6):
            journal = ledger.get_journal(jsn)
            proof = ledger.get_proof(jsn)  # anchored: verifies via anchors
            assert ledger.verify_journal(journal, proof)
        assert calls["n"] == 0

    def test_cache_extends_when_an_epoch_closes(self, populated):
        deployment, _receipts = populated
        ledger = deployment.ledger
        before = ledger._fam.num_epochs
        anchors = ledger.epoch_anchors()
        calls = self._count_epoch_root_calls(ledger)
        # Fill out the current epoch so a new one closes (height 3 -> 8/epoch).
        while ledger._fam.num_epochs == before:
            deployment.append("alice", b"fill-%d" % ledger.size)
        refreshed = ledger.epoch_anchors()
        assert refreshed is anchors  # same store, extended in place
        # Only the newly closed epochs were scanned, not all of history.
        assert 0 < calls["n"] == ledger._fam.num_epochs - before

    def test_cached_anchors_match_fresh_scan(self, populated):
        deployment, _receipts = populated
        ledger = deployment.ledger
        cached = ledger.epoch_anchors()
        for epoch in range(ledger._fam.num_epochs - 1):
            assert cached.get(epoch) == ledger._fam.epoch_root(epoch)

    def test_cache_rebuilt_after_recover(self):
        from repro.storage.stream import MemoryStream

        stream = MemoryStream()
        ledger = Ledger(
            LedgerConfig(uri=LEDGER_URI, fractal_height=2, block_size=4),
            journal_stream=stream,
        )
        from repro.crypto import Role

        key = KeyPair.generate(seed="anchor-cache")
        ledger.registry.register("carol", Role.USER, key.public)
        for i in range(9):  # height 2 -> 4 leaves/epoch: two epochs close
            request = ClientRequest.build(
                LEDGER_URI, "carol", b"r%d" % i, nonce=bytes([i])
            ).signed_by(key)
            ledger.append(request)
        expected = {
            epoch: ledger._fam.epoch_root(epoch)
            for epoch in range(ledger._fam.num_epochs - 1)
        }
        recovered = Ledger.recover(
            LedgerConfig(uri=LEDGER_URI, fractal_height=2, block_size=4),
            stream,
            registry=ledger.registry,
            lsp_keypair=ledger._lsp_keypair,
        )
        anchors = recovered.epoch_anchors()
        assert expected  # the scenario really closed epochs
        for epoch, root in expected.items():
            assert anchors.get(epoch) == root
        journal = recovered.get_journal(3)
        assert recovered.verify_journal(journal, recovered.get_proof(3))


class TestClueAPIs:
    def test_list_tx_returns_clue_jsns(self, populated):
        deployment, _receipts = populated
        jsns = deployment.ledger.list_tx("CLUE-A")
        assert jsns, "populate() tags every third journal"
        for jsn in jsns:
            assert "CLUE-A" in deployment.ledger.get_journal(jsn).clues

    def test_clue_verification_round_trip(self, populated):
        deployment, _receipts = populated
        jsns = deployment.ledger.list_tx("CLUE-A")
        journals = [deployment.ledger.get_journal(j) for j in jsns]
        assert deployment.ledger.verify_clue("CLUE-A", journals)
        proof = deployment.ledger.prove_clue("CLUE-A")
        digests = {i: j.tx_hash() for i, j in enumerate(journals)}
        assert proof.verify(digests, deployment.ledger.state_root())

    def test_clue_verification_rejects_omission(self, populated):
        deployment, _receipts = populated
        jsns = deployment.ledger.list_tx("CLUE-A")
        journals = [deployment.ledger.get_journal(j) for j in jsns[:-1]]  # drop one
        assert not deployment.ledger.verify_clue("CLUE-A", journals)

    def test_multi_clue_journal(self, deployment):
        receipt = deployment.append("alice", b"multi", clues=("c1", "c2"))
        assert deployment.ledger.list_tx("c1") == [receipt.jsn]
        assert deployment.ledger.list_tx("c2") == [receipt.jsn]
        assert deployment.ledger.clue_entry_count("c1") == 1


class TestTimeAnchoring:
    def test_anchor_records_time_journal(self, deployment):
        deployment.append("alice", b"x")
        time_jsn = deployment.ledger.anchor_time()
        journal = deployment.ledger.get_journal(time_jsn)
        assert journal.journal_type is JournalType.TIME
        assert deployment.ledger.time_journals == [time_jsn]

    def test_evidence_collected_after_finalization(self, deployment):
        deployment.append("alice", b"x")
        time_jsn = deployment.ledger.anchor_time()
        assert deployment.ledger.time_evidence_for(time_jsn) is None
        deployment.clock.advance(1.5)
        assert deployment.ledger.collect_time_evidence() == 1
        evidence = deployment.ledger.time_evidence_for(time_jsn)
        assert evidence is not None and evidence.verify(deployment.tsa)

    def test_anchor_without_notary_fails(self):
        ledger = Ledger(LedgerConfig(uri="ledger://lonely"))
        with pytest.raises(LedgerError, match="no TSA or T-Ledger"):
            ledger.anchor_time()

    def test_direct_tsa_anchoring(self, deployment):
        ledger = Ledger(LedgerConfig(uri=LEDGER_URI + "2"), clock=deployment.clock)
        ledger.attach_tsa(deployment.tsa)
        time_jsn = ledger.anchor_time()
        token = ledger.time_evidence_for(time_jsn)
        assert token is not None and token.verify(deployment.tsa.public_key)


class TestStorageStats:
    def test_stats_shape(self, populated):
        deployment, _receipts = populated
        stats = deployment.ledger.storage_stats()
        assert stats["journals"] == deployment.ledger.size
        assert stats["fam_nodes"] > 0
        assert stats["blocks"] == len(deployment.ledger.blocks)
        assert stats["occulted"] == 0 and stats["purged_prefix"] == 0
