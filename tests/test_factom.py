"""Factom-like baseline: rigorous what, non-judicial when, unrigorous who."""

import pytest

from repro.baselines.factom import FactomSimulator
from repro.crypto import KeyPair
from repro.timeauth import SimClock


@pytest.fixture()
def factom():
    clock = SimClock()
    simulator = FactomSimulator(clock, block_interval=600.0)
    return clock, simulator


class TestEntryLifecycle:
    def test_entries_seal_into_directory_blocks(self, factom):
        clock, simulator = factom
        entries = [simulator.add_entry("chain-A", b"doc-%d" % i) for i in range(5)]
        assert simulator.height == 0
        clock.advance(600.0)
        simulator.tick()
        assert simulator.height == 1
        for entry in entries:
            proof = simulator.prove_entry(entry)
            assert FactomSimulator.verify_entry(entry, proof)

    def test_multiple_chains_in_one_block(self, factom):
        clock, simulator = factom
        a = simulator.add_entry("chain-A", b"a")
        b = simulator.add_entry("chain-B", b"b")
        clock.advance(600.0)
        simulator.tick()
        assert FactomSimulator.verify_entry(a, simulator.prove_entry(a))
        assert FactomSimulator.verify_entry(b, simulator.prove_entry(b))

    def test_unsealed_entry_not_provable(self, factom):
        _clock, simulator = factom
        entry = simulator.add_entry("chain-A", b"fresh")
        with pytest.raises(KeyError):
            simulator.prove_entry(entry)

    def test_sequence_numbers_per_chain(self, factom):
        clock, simulator = factom
        first = simulator.add_entry("c", b"1")
        clock.advance(600.0)
        simulator.tick()
        second = simulator.add_entry("c", b"2")
        assert first.sequence == 0 and second.sequence == 1


class TestWhat:
    def test_tampered_content_fails(self, factom):
        import dataclasses

        clock, simulator = factom
        entry = simulator.add_entry("chain-A", b"original")
        clock.advance(600.0)
        simulator.tick()
        proof = simulator.prove_entry(entry)
        forged = dataclasses.replace(entry, content=b"tampered")
        assert not FactomSimulator.verify_entry(forged, proof)


class TestWhen:
    def test_anchor_gives_upper_bound_only(self, factom):
        clock, simulator = factom
        entry = simulator.add_entry("chain-A", b"doc")
        clock.advance(600.0)
        simulator.tick()
        clock.advance(600.0)  # Bitcoin block mined
        proof = simulator.prove_entry(entry)
        bound = FactomSimulator.time_bound(proof)
        assert bound is not None
        assert bound.upper < float("inf")
        assert bound.lower == float("-inf")  # non-judicial when: no floor

    def test_no_bound_before_anchor_mined(self):
        # Directory blocks every 300 s, Bitcoin blocks every 600 s: in the
        # gap the entry is sealed but its anchor is not yet mined.
        clock = SimClock()
        simulator = FactomSimulator(clock, block_interval=300.0)
        entry = simulator.add_entry("chain-A", b"doc")
        clock.advance(300.0)
        simulator.tick()
        proof = simulator.prove_entry(entry)
        assert FactomSimulator.verify_entry(entry, proof)  # what: provable
        assert FactomSimulator.time_bound(proof) is None  # when: not yet


class TestWho:
    def test_self_signed_entry_verifies_key_possession(self, factom):
        _clock, simulator = factom
        keypair = KeyPair.generate(seed="anon")
        entry = simulator.add_entry("chain-A", b"signed doc", keypair=keypair)
        assert entry.verify_signature()

    def test_who_is_unrigorous_no_identity_binding(self, factom):
        # Any freshly generated key works — no CA, no registration: the
        # signature proves key possession, not a real-world identity.
        _clock, simulator = factom
        throwaway = KeyPair.generate(seed="burner-key")
        entry = simulator.add_entry("chain-A", b"doc", keypair=throwaway)
        assert entry.verify_signature()
        assert entry.public_key is not None  # but bound to nothing

    def test_unsigned_entry_has_no_who(self, factom):
        _clock, simulator = factom
        entry = simulator.add_entry("chain-A", b"anonymous doc")
        assert not entry.verify_signature()


class TestStorage:
    def test_highest_overhead_rating(self, factom):
        clock, simulator = factom
        for block in range(4):
            for i in range(8):
                simulator.add_entry(f"chain-{i % 2}", b"e%d" % i)
            clock.advance(600.0)
            simulator.tick()
        units = simulator.storage_units()
        # Every layer retained: strictly more objects than entries alone.
        assert units["total"] > units["entries"]
        assert units["directory_blocks"] >= 4
        assert units["entry_blocks"] == 8  # 2 chains x 4 blocks
