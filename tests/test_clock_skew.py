"""Clock drift scenarios: Protocol 4's tolerance under skewed server clocks."""

import pytest

from repro.crypto.hashing import leaf_hash
from repro.timeauth import (
    SimClock,
    SkewedClock,
    StaleRequestError,
    TimeLedger,
    TimeStampAuthority,
)


@pytest.fixture()
def notary_world():
    clock = SimClock()
    tsa = TimeStampAuthority("tsa", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=1.0)
    return clock, tsa, tledger


class TestSkewedSubmitters:
    def test_slow_clock_within_tolerance_accepted(self, notary_world):
        clock, _tsa, tledger = notary_world
        ledger_clock = SkewedClock(clock, offset=-0.5)  # half a second behind
        clock.advance(10.0)
        receipt = tledger.submit("slow-ledger", leaf_hash(b"d"), ledger_clock.now())
        assert receipt.seq == 0

    def test_slow_clock_beyond_tolerance_rejected(self, notary_world):
        clock, _tsa, tledger = notary_world
        ledger_clock = SkewedClock(clock, offset=-2.5)  # drifted past tau_Delta
        clock.advance(10.0)
        with pytest.raises(StaleRequestError, match="stale"):
            tledger.submit("very-slow", leaf_hash(b"d"), ledger_clock.now())

    def test_fast_clock_beyond_tolerance_rejected(self, notary_world):
        # A fast clock claims future tau_c — a backdating setup for later.
        clock, _tsa, tledger = notary_world
        ledger_clock = SkewedClock(clock, offset=+2.5)
        clock.advance(10.0)
        with pytest.raises(StaleRequestError, match="future"):
            tledger.submit("fast", leaf_hash(b"d"), ledger_clock.now())

    def test_fast_clock_within_tolerance_accepted(self, notary_world):
        clock, _tsa, tledger = notary_world
        ledger_clock = SkewedClock(clock, offset=+0.5)
        clock.advance(10.0)
        receipt = tledger.submit("slightly-fast", leaf_hash(b"d"), ledger_clock.now())
        assert receipt.seq == 0

    def test_skewed_submitter_evidence_still_verifies(self, notary_world):
        clock, tsa, tledger = notary_world
        ledger_clock = SkewedClock(clock, offset=-0.4)
        clock.advance(5.0)
        receipt = tledger.submit("skewed", leaf_hash(b"d"), ledger_clock.now())
        clock.advance(1.5)
        evidence = tledger.get_evidence(receipt.seq)
        assert evidence.verify(tsa)
        bound = evidence.time_bound()
        # The *authoritative* window brackets the TSA's clock, regardless of
        # the submitter's drift.
        assert bound.contains(5.0)


class TestMixedFleet:
    def test_heterogeneous_drift_fleet(self, notary_world):
        """A fleet of ledgers with different drifts: only the in-tolerance
        ones get through, and every admitted entry verifies."""
        clock, tsa, tledger = notary_world
        offsets = {-3.0: False, -0.9: True, 0.0: True, 0.9: True, 3.0: False}
        clock.advance(20.0)
        admitted = []
        for offset, expect_ok in offsets.items():
            skewed = SkewedClock(clock, offset=offset)
            try:
                receipt = tledger.submit(f"drift{offset}", leaf_hash(b"%f" % offset), skewed.now())
            except StaleRequestError:
                assert not expect_ok, offset
                continue
            assert expect_ok, offset
            admitted.append(receipt.seq)
        clock.advance(1.5)
        for seq in admitted:
            assert tledger.get_evidence(seq).verify(tsa)
