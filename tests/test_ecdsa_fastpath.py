"""Fast-path ECDSA: window tables and Shamir cross-checked against the ladder.

The naive double-and-add ladder (``scalar_multiply``) is the audited
reference; every fast-path structure — the fixed-base generator table, the
per-public-key window tables, Strauss–Shamir dual-scalar multiplication, the
fast ``sign_digest``/``verify_digest`` — must agree with it bit-for-bit.
"""

import hashlib
import random

import pytest

from repro.crypto import ecdsa
from repro.crypto.ecdsa import (
    CURVE_P256,
    FixedWindowTable,
    Point,
    Signature,
    derive_public_key,
    point_add,
    precompute_public_key,
    scalar_multiply,
    scalar_multiply_base,
    shamir_multiply,
    sign_digest,
    sign_digest_naive,
    sign_digests,
    verify_digest,
    verify_digest_naive,
    verify_digests,
)
from repro.crypto.keys import KeyPair, verify_batch

G = CURVE_P256.generator
N = CURVE_P256.n

# Scalars that stress the window decomposition: tiny values, the group-order
# boundary, powers of two (single non-zero digit), and long zero runs.
EDGE_SCALARS = [
    1,
    2,
    3,
    (1 << ecdsa.GENERATOR_WINDOW) - 1,
    1 << ecdsa.GENERATOR_WINDOW,
    N - 1,
    N - 2,
    1 << 200,
    (1 << 255) + 1,
    (1 << 255) | (1 << 3),  # 250+ bit gap of zeros
    0x8000000000000000000000000000000000000000000000000000000000000001 % N,
]


@pytest.fixture(autouse=True)
def _fresh_caches():
    ecdsa.clear_fast_path_caches()
    yield
    ecdsa.clear_fast_path_caches()


# ---------------------------------------------------------------- fixed base


@pytest.mark.parametrize("k", EDGE_SCALARS)
def test_fixed_base_matches_ladder_on_edge_scalars(k):
    assert scalar_multiply_base(k) == scalar_multiply(k, G)


def test_fixed_base_matches_ladder_on_random_scalars():
    rng = random.Random(0xFA57)
    for _ in range(30):
        k = rng.randrange(1, N)
        assert scalar_multiply_base(k) == scalar_multiply(k, G)


def test_fixed_base_zero_scalar_is_infinity():
    assert scalar_multiply_base(0).is_infinity()
    assert scalar_multiply_base(N).is_infinity()


@pytest.mark.parametrize("width", [2, 3, 5, 8])
def test_window_table_widths_agree(width):
    table = FixedWindowTable(G, width)
    rng = random.Random(width)
    for k in [1, N - 1] + [rng.randrange(1, N) for _ in range(5)]:
        assert table.multiply(k) == scalar_multiply(k, G)


def test_window_table_for_arbitrary_point():
    q = scalar_multiply(0xABCDEF0123456789, G)
    table = FixedWindowTable(q, 5)
    rng = random.Random(7)
    for _ in range(10):
        k = rng.randrange(1, N)
        assert table.multiply(k) == scalar_multiply(k, q)


def test_window_table_rejects_bad_inputs():
    with pytest.raises(ValueError):
        FixedWindowTable(G, 1)
    with pytest.raises(ValueError):
        FixedWindowTable(G, 11)
    with pytest.raises(ValueError):
        FixedWindowTable(Point(0, 0), 4)


# -------------------------------------------------------------------- shamir


def test_shamir_matches_two_ladders_random():
    rng = random.Random(0x5A417)
    d = rng.randrange(1, N)
    q = derive_public_key(d)
    for _ in range(15):
        u1, u2 = rng.randrange(N), rng.randrange(N)
        expected = point_add(scalar_multiply(u1, G), scalar_multiply(u2, q))
        assert shamir_multiply(u1, u2, q) == expected


@pytest.mark.parametrize("u1,u2", [(0, 0), (0, 5), (5, 0), (1, 1), (N - 1, N - 1)])
def test_shamir_edge_scalar_pairs(u1, u2):
    q = scalar_multiply(12345, G)
    expected = point_add(scalar_multiply(u1, G), scalar_multiply(u2, q))
    assert shamir_multiply(u1, u2, q) == expected


def test_shamir_with_q_equal_negated_g():
    # G + Q is the identity: the bits==3 branch must skip the merged point.
    neg_g = Point(G.x, (-G.y) % CURVE_P256.p)
    expected = point_add(scalar_multiply(7, G), scalar_multiply(7, neg_g))
    assert shamir_multiply(7, 7, neg_g) == expected


# ----------------------------------------------------------------- sign/verify


def test_fast_and_naive_signatures_are_identical():
    rng = random.Random(0x51611)
    for _ in range(5):
        secret = rng.randrange(1, N)
        digest = hashlib.sha256(rng.randbytes(32)).digest()
        assert sign_digest(secret, digest) == sign_digest_naive(secret, digest)


def test_rfc6979_known_answer_through_fast_path():
    # RFC 6979 A.2.5, message "sample" — the fast signer must hit the vector.
    key = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
    digest = hashlib.sha256(b"sample").digest()
    signature = sign_digest(key, digest)
    assert signature.r == 0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716
    expected_s = 0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8
    assert signature.s in (expected_s, N - expected_s)
    public = derive_public_key(key)
    assert public.x == 0x60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6
    assert verify_digest(public, digest, signature)
    assert verify_digest_naive(public, digest, signature)


def test_fast_verify_agrees_with_naive_on_accept_and_reject():
    rng = random.Random(0xACC)
    secret = rng.randrange(1, N)
    public = derive_public_key(secret)
    digest = hashlib.sha256(b"payload").digest()
    signature = sign_digest(secret, digest)
    cases = [
        (digest, signature, True),
        (hashlib.sha256(b"other").digest(), signature, False),
        (digest, Signature(signature.r, (signature.s + 1) % N), False),
        (digest, Signature((signature.r + 1) % N, signature.s), False),
        (digest, Signature(0, signature.s), False),
        (digest, Signature(signature.r, N), False),
    ]
    # Run twice: first pass exercises the cold (Shamir) path, second pass the
    # cached window-table path — both must agree with the reference verifier.
    for _ in range(2):
        for d, sig, expected in cases:
            assert verify_digest(public, d, sig) is expected
            assert verify_digest_naive(public, d, sig) is expected


def test_verify_rejects_off_curve_and_infinity_keys():
    digest = hashlib.sha256(b"x").digest()
    signature = sign_digest(7, digest)
    assert not verify_digest(Point(1, 1), digest, signature)
    assert not verify_digest(Point(0, 0), digest, signature)


# ------------------------------------------------------------ batch entry points


def test_sign_digests_matches_scalar_signer():
    rng = random.Random(0xBA7C4)
    secret = rng.randrange(1, N)
    digests = [hashlib.sha256(rng.randbytes(16)).digest() for _ in range(9)]
    assert sign_digests(secret, digests) == [sign_digest(secret, d) for d in digests]


def test_sign_digests_empty_and_bad_key():
    assert sign_digests(7, []) == []
    with pytest.raises(ValueError):
        sign_digests(0, [b"\x00" * 32])
    with pytest.raises(ValueError):
        sign_digests(N, [b"\x00" * 32])


def test_verify_digests_matches_individual_verdicts():
    rng = random.Random(0xBA7C5)
    secret_a, secret_b = rng.randrange(1, N), rng.randrange(1, N)
    pub_a, pub_b = derive_public_key(secret_a), derive_public_key(secret_b)
    digest = hashlib.sha256(b"batch").digest()
    good_a = sign_digest(secret_a, digest)
    good_b = sign_digest(secret_b, digest)
    checks = [
        (pub_a, digest, good_a),  # valid
        (pub_b, digest, good_b),  # valid, different key
        (pub_a, digest, good_b),  # wrong key for signature
        (pub_a, hashlib.sha256(b"other").digest(), good_a),  # wrong digest
        (pub_a, digest, Signature(0, good_a.s)),  # out-of-range r
        (pub_a, digest, Signature(good_a.r, N)),  # out-of-range s
        (Point(1, 1), digest, good_a),  # off-curve key
        (Point(0, 0), digest, good_a),  # identity key
    ]
    expected = [True, True, False, False, False, False, False, False]
    # First pass runs the cold (Shamir) path, second the cached-table path;
    # both must agree item-for-item with the scalar verifier.
    for _ in range(2):
        assert verify_digests(checks) == expected
        assert [verify_digest(k, d, s) for k, d, s in checks] == expected


def test_verify_digests_all_malformed_short_circuits():
    digest = hashlib.sha256(b"x").digest()
    checks = [
        (Point(1, 1), digest, Signature(1, 1)),
        (derive_public_key(5), digest, Signature(0, 1)),
    ]
    assert verify_digests(checks) == [False, False]


def test_keypair_sign_batch_and_verify_batch_roundtrip():
    pairs = [KeyPair.generate(seed=f"batch-api:{i}") for i in range(3)]
    digests = [hashlib.sha256(f"msg-{i}".encode()).digest() for i in range(3)]
    signatures = pairs[0].sign_batch(digests)
    assert signatures == [pairs[0].sign(d) for d in digests]
    checks = [(pair.public, d, pair.sign(d)) for pair, d in zip(pairs, digests)]
    checks.append((pairs[0].public, digests[1], signatures[0]))  # digest mismatch
    assert verify_batch(checks) == [True, True, True, False]


# ------------------------------------------------- aggregated batch (ECDSA*)


class TestAggregatedBatchVerify:
    """The randomized-aggregate path behind ``verify_digests``.

    Signatures carry the full R.y hint (ECDSA*, 96-byte wire form); same-key
    groups of >= BATCH_VERIFY_MIN verify through one aggregate equation, and
    *any* aggregate failure falls back to exact per-item verification — so
    verdicts must match ``verify_digest`` under every corruption.
    """

    def _group(self, count, seed=0xA66):
        rng = random.Random(seed)
        secret = rng.randrange(1, N)
        public = derive_public_key(secret)
        precompute_public_key(public)  # aggregation requires the window table
        digests = [hashlib.sha256(rng.randbytes(24)).digest() for _ in range(count)]
        checks = [(public, d, sign_digest(secret, d)) for d in digests]
        return secret, public, checks

    def test_signature_carries_valid_r_hint(self):
        _, _, checks = self._group(4)
        for _, _, signature in checks:
            assert signature.ry is not None
            point = ecdsa._r_point_from_hint(signature.r, signature.ry, CURVE_P256)
            assert point is not None
            x, y = point
            assert (
                y * y - (x * x * x + CURVE_P256.a * x + CURVE_P256.b)
            ) % CURVE_P256.p == 0

    def test_wire_format_roundtrip_and_legacy(self):
        _, _, checks = self._group(1)
        signature = checks[0][2]
        wire = signature.to_bytes()
        assert len(wire) == 96
        assert Signature.from_bytes(wire) == signature
        assert Signature.from_bytes(wire).ry == signature.ry
        legacy = Signature.from_bytes(wire[:64])
        assert legacy == signature  # equality ignores the hint
        assert legacy.ry is None
        with pytest.raises(ValueError):
            Signature.from_bytes(wire[:65])

    def test_aggregate_path_actually_taken(self):
        from repro import obs

        _, _, checks = self._group(ecdsa.BATCH_VERIFY_MIN + 2)
        obs.enable()
        try:
            assert verify_digests(checks) == [True] * len(checks)
            snap = obs.snapshot()
        finally:
            obs.disable()
            obs.reset()
        assert snap["counters"]["ecdsa.verify_batch.aggregated"] == len(checks)

    def test_tampered_digest_fails_exactly_at_its_index(self):
        _, public, checks = self._group(6)
        bad = hashlib.sha256(b"swapped payload").digest()
        checks[3] = (public, bad, checks[3][2])
        expected = [True, True, True, False, True, True]
        assert verify_digests(checks) == expected
        assert [verify_digest(k, d, s) for k, d, s in checks] == expected

    @pytest.mark.parametrize("corrupt", ["off_curve", "negated", "zero"])
    def test_corrupt_hint_never_changes_the_verdict(self, corrupt):
        # The hint is an untrusted accelerator: breaking it may cost the
        # fast path but the verdict comes from (r, s) alone.
        _, public, checks = self._group(4, seed=0xC0)
        target = checks[2][2]
        ry = {
            "off_curve": (target.ry + 1) % CURVE_P256.p,
            "negated": CURVE_P256.p - target.ry,  # valid point, wrong sign
            "zero": 0,
        }[corrupt]
        checks[2] = (public, checks[2][1], Signature(target.r, target.s, ry))
        assert verify_digests(checks) == [True] * 4
        assert verify_digest(public, checks[2][1], checks[2][2])

    def test_legacy_signatures_without_hint_still_batch_correctly(self):
        _, public, checks = self._group(5, seed=0x1E6)
        checks = [
            (public, d, Signature(s.r, s.s)) for public, d, s in checks
        ]  # strip every hint: group is not aggregable, falls back per-item
        assert verify_digests(checks) == [True] * 5

    def test_forged_signature_in_group_rejected(self):
        secret, public, checks = self._group(5, seed=0xF06)
        mallory = random.Random(1).randrange(1, N)
        forged = sign_digest(mallory, checks[1][1])
        checks[1] = (public, checks[1][1], forged)
        expected = [True, False, True, True, True]
        assert verify_digests(checks) == expected
        assert [verify_digest(k, d, s) for k, d, s in checks] == expected

    def test_low_s_flip_keeps_hint_consistent(self):
        # sign normalises s -> n - s; the hint must track the negated R.
        rng = random.Random(0x10)
        for _ in range(8):
            secret = rng.randrange(1, N)
            digest = hashlib.sha256(rng.randbytes(16)).digest()
            signature = sign_digest(secret, digest)
            assert signature.s <= N // 2
            assert (
                ecdsa._r_point_from_hint(signature.r, signature.ry, CURVE_P256)
                is not None
            )


# ----------------------------------------------------------------- LRU cache


def _cache_key(point):
    return (CURVE_P256.name, point.x, point.y)


def test_pubkey_table_built_on_second_use():
    secret = 0xB0B
    public = derive_public_key(secret)
    digest = hashlib.sha256(b"m").digest()
    signature = sign_digest(secret, digest)
    assert verify_digest(public, digest, signature)
    assert _cache_key(public) not in ecdsa._PUBKEY_TABLES  # one-shot: Shamir
    assert verify_digest(public, digest, signature)
    assert _cache_key(public) in ecdsa._PUBKEY_TABLES  # hot: table built


def test_precompute_public_key_skips_threshold():
    public = derive_public_key(0xCAFE)
    precompute_public_key(public)
    assert _cache_key(public) in ecdsa._PUBKEY_TABLES
    digest = hashlib.sha256(b"m").digest()
    assert verify_digest(public, digest, sign_digest(0xCAFE, digest))


def test_pubkey_cache_lru_eviction(monkeypatch):
    # Shrink the cache and window so the test builds tiny tables quickly.
    monkeypatch.setattr(ecdsa, "PUBKEY_CACHE_SIZE", 4)
    monkeypatch.setattr(ecdsa, "PUBKEY_WINDOW", 3)
    old = derive_public_key(1001)
    precompute_public_key(old)
    for i in range(4):
        precompute_public_key(scalar_multiply(2000 + i, G))
    assert len(ecdsa._PUBKEY_TABLES) == 4
    assert _cache_key(old) not in ecdsa._PUBKEY_TABLES  # oldest evicted
    # A re-used key moves to the back and survives the next insertion.
    survivor = scalar_multiply(2000, G)
    precompute_public_key(survivor)
    precompute_public_key(scalar_multiply(3000, G))
    assert _cache_key(survivor) in ecdsa._PUBKEY_TABLES
    # Eviction must not affect correctness, only speed.
    digest = hashlib.sha256(b"m").digest()
    assert verify_digest(old, digest, sign_digest(1001, digest))


def test_keypair_precompute_hook():
    pair = KeyPair.generate(seed=b"precompute-hook")
    assert pair.public.precompute() is pair.public
    assert _cache_key(pair.public.point) in ecdsa._PUBKEY_TABLES
    digest = hashlib.sha256(b"hook").digest()
    assert pair.public.verify(digest, pair.sign(digest))


def test_clear_fast_path_caches():
    precompute_public_key(derive_public_key(0xD00D))
    scalar_multiply_base(5)
    assert ecdsa._PUBKEY_TABLES and ecdsa._GEN_TABLES
    ecdsa.clear_fast_path_caches()
    assert not ecdsa._PUBKEY_TABLES and not ecdsa._GEN_TABLES
    assert scalar_multiply_base(5) == scalar_multiply(5, G)  # rebuilds lazily
