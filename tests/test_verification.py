"""Client-side Dasein verification: what / when / who, honest and adversarial."""

import dataclasses

import pytest

from repro.core import DaseinVerifier
from repro.core.verification import parse_time_journal


@pytest.fixture()
def verifier_setup(populated):
    deployment, receipts = populated
    view = deployment.ledger.export_view()
    verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
    return deployment, receipts, view, verifier


class TestWhat:
    def test_honest_journal_verifies(self, verifier_setup):
        deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[2].jsn)
        proof = deployment.ledger.get_proof(journal.jsn, anchored=False)
        assert verifier.verify_what(journal, proof)

    def test_tampered_journal_fails(self, verifier_setup):
        deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[2].jsn)
        proof = deployment.ledger.get_proof(journal.jsn, anchored=False)
        forged = dataclasses.replace(journal, payload=b"foopar")
        assert not verifier.verify_what(forged, proof)

    def test_trusted_root_is_receipt_root_by_default(self, verifier_setup):
        deployment, _receipts, view, verifier = verifier_setup
        assert verifier.trusted_root == view.latest_receipt.ledger_root

    def test_view_without_receipt_needs_explicit_root(self, verifier_setup):
        deployment, _receipts, view, _verifier = verifier_setup
        stripped = dataclasses.replace(view, latest_receipt=None)
        with pytest.raises(ValueError):
            DaseinVerifier(stripped)
        explicit = DaseinVerifier(stripped, trusted_root=deployment.ledger.current_root())
        journal = explicit.journal_at(2)
        proof = deployment.ledger.get_proof(2, anchored=False)
        assert explicit.verify_what(journal, proof)


class TestWhen:
    def test_bracketed_journal_has_bound(self, verifier_setup):
        deployment, _receipts, _view, verifier = verifier_setup
        # Journal 2 precedes the first time anchor.
        bound, valid = verifier.verify_when(2)
        assert valid and bound is not None
        assert bound.upper < float("inf")

    def test_bound_is_consistent_with_commit_time(self, verifier_setup):
        deployment, _receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(3)
        bound, valid = verifier.verify_when(3)
        assert valid
        assert bound.contains(journal.timestamp)

    def test_journal_after_last_anchor_has_no_ceiling(self, verifier_setup):
        deployment, _receipts, _view, _verifier = verifier_setup
        # Append beyond the last time journal, then re-export.
        deployment.append("alice", b"late")
        view = deployment.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
        bound, valid = verifier.verify_when(deployment.ledger.size - 1)
        assert not valid and bound is None

    def test_unknown_tsa_key_invalidates_when(self, verifier_setup):
        deployment, _receipts, view, _verifier = verifier_setup
        verifier = DaseinVerifier(view, tsa_keys={})  # auditor knows no TSA
        _bound, valid = verifier.verify_when(2)
        assert not valid

    def test_forged_evidence_invalidates_when(self, verifier_setup):
        deployment, _receipts, view, _verifier = verifier_setup
        # Swap the evidence of the first time journal with a mismatched one.
        time_jsns = sorted(view.time_evidence)
        first, second = time_jsns[0], time_jsns[1]
        forged_evidence = dict(view.time_evidence)
        forged_evidence[first] = forged_evidence[second]
        forged_view = dataclasses.replace(view, time_evidence=forged_evidence)
        verifier = DaseinVerifier(forged_view, tsa_keys=deployment.tsa_keys)
        _bound, valid = verifier.verify_when(2)
        assert not valid

    def test_lower_bound_from_preceding_anchor(self, verifier_setup):
        deployment, _receipts, view, verifier = verifier_setup
        time_jsns = deployment.ledger.time_journals
        assert len(time_jsns) >= 2
        target = time_jsns[0] + 1  # a journal right after the first anchor
        bound, valid = verifier.verify_when(target)
        assert valid and bound.lower > float("-inf")

    def test_tampered_lower_evidence_weakens_floor_but_stays_valid(self, verifier_setup):
        # Bad *lower* evidence is soundly skipped: the floor falls back (to
        # -inf here, no earlier anchor exists) while the intact ceiling keeps
        # the bound valid — a weaker bracket is still a true statement.
        deployment, _receipts, view, honest = verifier_setup
        time_jsns = sorted(view.time_evidence)
        first, second = time_jsns[0], time_jsns[1]
        target = first + 1  # bracketed: `first` below, `second` above
        honest_bound, honest_valid = honest.verify_when(target)
        assert honest_valid and honest_bound.lower > float("-inf")
        forged_evidence = dict(view.time_evidence)
        forged_evidence[first] = forged_evidence[second]  # digest mismatch
        forged_view = dataclasses.replace(view, time_evidence=forged_evidence)
        verifier = DaseinVerifier(forged_view, tsa_keys=deployment.tsa_keys)
        bound, valid = verifier.verify_when(target)
        assert valid
        assert bound.lower == float("-inf")
        assert bound.upper == honest_bound.upper  # ceiling untouched

    def test_missing_lower_evidence_weakens_floor_but_stays_valid(self, verifier_setup):
        deployment, _receipts, view, honest = verifier_setup
        time_jsns = sorted(view.time_evidence)
        first, second = time_jsns[0], time_jsns[1]
        target = first + 1
        honest_bound, _ = honest.verify_when(target)
        stripped_evidence = dict(view.time_evidence)
        del stripped_evidence[first]
        stripped_view = dataclasses.replace(view, time_evidence=stripped_evidence)
        verifier = DaseinVerifier(stripped_view, tsa_keys=deployment.tsa_keys)
        bound, valid = verifier.verify_when(target)
        assert valid
        assert bound == dataclasses.replace(
            honest_bound, lower=float("-inf")
        )

    def test_no_ceiling_returns_exactly_none_false(self, verifier_setup):
        # Past the last anchor there is no credible ceiling: the result is
        # exactly (None, False) even though valid *lower* anchors abound —
        # verify_when never fabricates a one-sided TimeBound.
        deployment, _receipts, _view, _verifier = verifier_setup
        deployment.append("alice", b"tail-1")
        deployment.append("bob", b"tail-2")
        view = deployment.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
        assert len(view.time_evidence) >= 2  # plenty of valid lower anchors
        for jsn in (deployment.ledger.size - 2, deployment.ledger.size - 1):
            bound, valid = verifier.verify_when(jsn)
            assert bound is None
            assert valid is False


class TestWho:
    def test_honest_signature_verifies(self, verifier_setup):
        _deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[0].jsn)
        assert verifier.verify_who(journal)

    def test_with_receipt_checks_lsp_signature(self, verifier_setup):
        _deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[0].jsn)
        assert verifier.verify_who(journal, receipts[0])

    def test_forged_receipt_fails(self, verifier_setup):
        _deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[0].jsn)
        forged = dataclasses.replace(receipts[0], jsn=receipts[0].jsn, timestamp=999.0)
        assert not verifier.verify_who(journal, forged)

    def test_receipt_tx_hash_mismatch_fails(self, verifier_setup):
        # LSP cannot present a valid receipt for a *different* journal body.
        _deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[0].jsn)
        tampered_journal = dataclasses.replace(journal, payload=b"swapped")
        assert not verifier.verify_who(tampered_journal, receipts[0])

    def test_receipt_for_other_journal_fails(self, verifier_setup):
        # Regression: a perfectly genuine LSP receipt — valid signature,
        # honest content — for a *different* jsn proves nothing about this
        # journal and must not yield who=True.
        _deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[0].jsn)
        other = receipts[1]
        assert other.jsn != journal.jsn
        assert not verifier.verify_who(journal, other)

    def test_receipt_with_relabelled_jsn_fails(self, verifier_setup):
        # Relabelling another journal's receipt to the target jsn breaks the
        # LSP signature; forging the tx_hash too trips the cross-check.
        _deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[0].jsn)
        relabelled = dataclasses.replace(receipts[1], jsn=journal.jsn)
        assert not verifier.verify_who(journal, relabelled)

    def test_unknown_member_fails(self, verifier_setup):
        _deployment, receipts, view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[0].jsn)
        impostor = dataclasses.replace(journal, client_id="nobody")
        assert not verifier.verify_who(impostor)

    def test_signature_by_other_member_fails(self, verifier_setup):
        deployment, receipts, _view, verifier = verifier_setup
        journal = verifier.journal_at(receipts[0].jsn)  # signed by alice
        as_bob = dataclasses.replace(journal, client_id="bob")
        assert not verifier.verify_who(as_bob)


class TestDaseinReport:
    def test_complete_report(self, verifier_setup):
        deployment, receipts, _view, verifier = verifier_setup
        jsn = receipts[2].jsn
        proof = deployment.ledger.get_proof(jsn, anchored=False)
        report = verifier.verify_dasein(jsn, proof, receipts[2])
        assert report.what and report.when_valid and report.who
        assert report.dasein_complete

    def test_occulted_journal_report(self, populated):
        # A mutated journal can still prove *what* (used-to-exist via the
        # retained hash) but its *who* is gone with the payload.
        deployment, _receipts = populated
        from repro.core import OccultMode

        record = deployment.ledger.prepare_occult(3, OccultMode.SYNC, reason="r")
        approvals = deployment.sign_approval(["dba", "regulator"], record.approval_digest())
        deployment.ledger.execute_occult(record, approvals)
        view = deployment.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
        proof = deployment.ledger.get_proof(3, anchored=False)
        report = verifier.verify_dasein(3, proof)
        assert report.what  # used-to-exist verification
        assert not report.who  # signature went with the payload
        assert report.when_valid

    def test_report_incomplete_without_when(self, verifier_setup):
        deployment, receipts, _view, _verifier = verifier_setup
        deployment.append("alice", b"tail")
        view = deployment.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
        jsn = deployment.ledger.size - 1
        proof = deployment.ledger.get_proof(jsn, anchored=False)
        report = verifier.verify_dasein(jsn, proof)
        assert report.what and report.who
        assert not report.when_valid
        assert not report.dasein_complete


class TestParseTimeJournal:
    def test_parse_round_trip(self, populated):
        deployment, _receipts = populated
        time_jsn = deployment.ledger.time_journals[0]
        journal = deployment.ledger.get_journal(time_jsn)
        info = parse_time_journal(journal)
        assert info["mode"] == "tledger"
        assert info["as_of_jsn"] == time_jsn
        assert len(info["anchored_root"]) == 32

    def test_rejects_non_time_journal(self, populated):
        deployment, receipts = populated
        journal = deployment.ledger.get_journal(receipts[0].jsn)
        with pytest.raises(ValueError):
            parse_time_journal(journal)
