"""Paged node store: KV semantics, page commits, crash/corruption behaviour.

The §9 contract applied to page files: a visible ``page-*.pg`` is complete by
construction (tmp -> fsync -> rename -> dir fsync), torn commits leave only
ignorable ``.tmp``s, and every section of a page is checksummed — header and
index verified at open, blob verified at first cache fault.
"""

import pytest

from repro.storage.faults import (
    FaultPlan,
    FaultyPagedStore,
    InjectedCrash,
    flip_byte,
)
from repro.storage.kv import KeyNotFoundError
from repro.storage.pagestore import PageCorruptionError, PagedNodeStore


def fill(store, count, prefix=b"k"):
    pairs = {}
    for i in range(count):
        key = prefix + b"%04d" % i
        value = b"value-%04d-" % i + bytes([i % 251]) * (i % 40)
        store.put(key, value)
        pairs[key] = value
    return pairs


class TestKVSemantics:
    def test_get_put_delete_contains_len(self, tmp_path):
        store = PagedNodeStore(tmp_path)
        pairs = fill(store, 25)
        assert len(store) == 25
        for key, value in pairs.items():
            assert key in store
            assert store.get(key) == value
        store.delete(b"k0003")
        assert b"k0003" not in store
        assert len(store) == 24
        with pytest.raises(KeyNotFoundError):
            store.get(b"k0003")
        with pytest.raises(KeyNotFoundError):
            store.delete(b"missing")
        assert sorted(store.keys()) == sorted(k for k in pairs if k != b"k0003")

    def test_overwrite_same_length_different_bytes(self, tmp_path):
        # The content-addressed dedupe fast path must compare bytes, not
        # lengths: a same-length overwrite has to win.
        store = PagedNodeStore(tmp_path)
        store.put(b"k", b"aaaa")
        store.flush()
        store.put(b"k", b"bbbb")
        assert store.get(b"k") == b"bbbb"
        store.flush()
        assert store.get(b"k") == b"bbbb"

    def test_dedupe_skips_rewrite_of_identical_value(self, tmp_path):
        store = PagedNodeStore(tmp_path)
        store.put(b"k", b"payload")
        store.flush()
        written = store.pages_written
        store.put(b"k", b"payload")  # identical: replayed delta pattern
        assert store.flush() == 0
        assert store.pages_written == written

    def test_reopen_round_trip(self, tmp_path):
        store = PagedNodeStore(tmp_path, page_bytes=256)
        pairs = fill(store, 60)
        store.delete(b"k0010")
        del pairs[b"k0010"]
        store.close()
        reopened = PagedNodeStore(tmp_path)
        assert len(reopened) == len(pairs)
        for key, value in pairs.items():
            assert reopened.get(key) == value
        assert b"k0010" not in reopened

    def test_unflushed_writes_die_without_flush(self, tmp_path):
        # Write-behind means durability arrives at flush(), not put().
        store = PagedNodeStore(tmp_path)
        store.put(b"durable", b"1")
        store.flush()
        store.put(b"buffered", b"2")
        # Simulated crash: drop the handle without close()/flush().
        del store
        reopened = PagedNodeStore(tmp_path)
        assert b"durable" in reopened
        assert b"buffered" not in reopened

    def test_tombstone_survives_reopen(self, tmp_path):
        store = PagedNodeStore(tmp_path)
        fill(store, 5)
        store.flush()
        store.delete(b"k0002")
        store.flush()
        reopened = PagedNodeStore(tmp_path)
        assert b"k0002" not in reopened
        assert len(reopened) == 4

    def test_pages_split_by_page_bytes(self, tmp_path):
        store = PagedNodeStore(tmp_path, page_bytes=128)
        fill(store, 40)
        store.flush()
        assert store.pages_written > 1
        assert len(list(tmp_path.glob("page-*.pg"))) == store.pages_written


class TestCacheAndStats:
    def test_lru_eviction_and_hit_accounting(self, tmp_path):
        store = PagedNodeStore(tmp_path, cache_pages=2, page_bytes=64)
        pairs = fill(store, 30)
        store.flush()
        store.close()
        reopened = PagedNodeStore(tmp_path, cache_pages=2)
        for key, value in sorted(pairs.items()):
            assert reopened.get(key) == value
        assert len(reopened._mmaps) <= 2
        first_loads = reopened.page_loads
        # A second sequential sweep re-faults evicted pages.
        for key, value in sorted(pairs.items()):
            assert reopened.get(key) == value
        assert reopened.page_loads > first_loads
        stats = reopened.stats()
        assert stats["cache_hits"] == reopened.cache_hits
        assert stats["cache_misses"] == reopened.cache_misses
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert stats["backend_reads"] == len(pairs) * 2

    def test_warm_cache_hits(self, tmp_path):
        store = PagedNodeStore(tmp_path, cache_pages=8)
        fill(store, 10)
        store.flush()
        store.close()
        reopened = PagedNodeStore(tmp_path, cache_pages=8)
        reopened.get(b"k0001")
        misses = reopened.cache_misses
        for _ in range(5):
            reopened.get(b"k0001")
        assert reopened.cache_misses == misses
        assert reopened.cache_hits >= 5


class TestCompaction:
    def test_compact_drops_shadowed_entries(self, tmp_path):
        store = PagedNodeStore(tmp_path, page_bytes=128)
        for round_ in range(5):
            for i in range(10):
                store.put(b"k%02d" % i, b"round-%d-%02d" % (round_, i))
            store.flush()
        before = len(list(tmp_path.glob("page-*.pg")))
        result = store.compact()
        assert result["pages_after"] < before
        assert result["entries_after"] == 10
        for i in range(10):
            assert store.get(b"k%02d" % i) == b"round-4-%02d" % i
        reopened = PagedNodeStore(tmp_path)
        assert len(reopened) == 10

    def test_compact_with_live_set_drops_garbage(self, tmp_path):
        store = PagedNodeStore(tmp_path)
        pairs = fill(store, 20)
        store.flush()
        live = set(sorted(pairs)[:5])
        result = store.compact(live)
        assert result["entries_after"] == 5
        assert sorted(store.keys()) == sorted(live)
        assert result["bytes_after"] < result["bytes_before"]


class TestManifest:
    def test_manifest_round_trip(self, tmp_path):
        store = PagedNodeStore(tmp_path, page_bytes=128)
        fill(store, 20)
        store.flush()
        manifest = store.manifest()
        assert store.verify_manifest(manifest)
        # Newer pages beyond the manifest are fine.
        store.put(b"new", b"post-snapshot")
        store.flush()
        assert store.verify_manifest(manifest)
        store.close()
        assert PagedNodeStore(tmp_path).verify_manifest(manifest)

    def test_manifest_detects_missing_page(self, tmp_path):
        store = PagedNodeStore(tmp_path, page_bytes=64)
        fill(store, 30)
        store.flush()
        manifest = store.manifest()
        store.close()
        victim = sorted(tmp_path.glob("page-*.pg"))[0]
        victim.unlink()
        assert not PagedNodeStore(tmp_path).verify_manifest(manifest)


class TestCorruption:
    def _one_page(self, tmp_path):
        store = PagedNodeStore(tmp_path)
        fill(store, 10)
        store.flush()
        store.close()
        (page,) = tmp_path.glob("page-*.pg")
        return page

    def test_header_bit_rot_refused_at_open(self, tmp_path):
        page = self._one_page(tmp_path)
        flip_byte(page, 10)  # inside the fixed header
        with pytest.raises(PageCorruptionError):
            PagedNodeStore(tmp_path)

    def test_index_bit_rot_refused_at_open(self, tmp_path):
        page = self._one_page(tmp_path)
        flip_byte(page, 33)  # first index byte
        with pytest.raises(PageCorruptionError):
            PagedNodeStore(tmp_path)

    def test_blob_bit_rot_detected_at_read(self, tmp_path):
        page = self._one_page(tmp_path)
        flip_byte(page, page.stat().st_size - 1)  # last blob byte
        store = PagedNodeStore(tmp_path)  # open is lazy about the blob
        with pytest.raises(PageCorruptionError):
            store.get(b"k0000")

    def test_truncated_page_refused_at_open(self, tmp_path):
        page = self._one_page(tmp_path)
        with open(page, "r+b") as handle:
            handle.truncate(page.stat().st_size - 3)
        with pytest.raises(PageCorruptionError):
            PagedNodeStore(tmp_path)

    def test_rotted_entry_can_be_overwritten(self, tmp_path):
        # put() must not let a corrupt committed entry block the fresh value.
        page = self._one_page(tmp_path)
        flip_byte(page, page.stat().st_size - 1)
        store = PagedNodeStore(tmp_path)
        last = b"k0009"
        replacement = store_value = b"value-0009-" + bytes([9]) * 9
        assert len(store_value) > 0
        store.put(last, replacement)
        store.flush()
        assert store.get(last) == replacement


class TestCrashInjection:
    def test_every_crash_point_leaves_committed_pages_intact(self, tmp_path):
        # Dry run: enumerate the I/O ops of one flush.
        plan = FaultPlan()
        store = FaultyPagedStore(tmp_path / "dry", plan)
        fill(store, 12)
        store.flush()
        points = plan.crash_points()
        assert points, "flush issued no I/O operations"

        for point in points:
            plan = FaultPlan()
            directory = tmp_path / f"crash-{point.op_index}"
            store = FaultyPagedStore(directory, plan)
            store.put(b"committed", b"before the crash")
            store.flush()
            plan.reset()
            fill(store, 12)
            plan.arm(point.op_index, partial_bytes=point.size // 2)
            with pytest.raises(InjectedCrash):
                store.flush()
            # Restarted process: torn tmp swept, committed page intact.
            reopened = PagedNodeStore(directory)
            assert reopened.get(b"committed") == b"before the crash"
            assert not list(directory.glob("*.tmp"))

    def test_crash_then_rewrite_recovers(self, tmp_path):
        plan = FaultPlan()
        store = FaultyPagedStore(tmp_path, plan)
        pairs = fill(store, 12)
        plan.arm(1)
        with pytest.raises(InjectedCrash):
            store.flush()
        reopened = PagedNodeStore(tmp_path)
        # The writer replays its puts (content-addressed, idempotent).
        for key, value in pairs.items():
            reopened.put(key, value)
        reopened.flush()
        for key, value in pairs.items():
            assert reopened.get(key) == value
