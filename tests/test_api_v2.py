"""repro.api v2: session handles, structured verify, registry symmetry, shims."""

from __future__ import annotations

import dataclasses

import pytest

import repro.api as api
from repro.core import VerifyResult
from repro.core.verification import VerifyTarget
from repro.core.errors import LedgerError, UsageError
from repro.crypto import KeyPair, Role
from repro.service import LedgerService, ServiceConfig

URI = "ledger://api-v2"


@pytest.fixture()
def session():
    with api.scoped_ledger(URI) as session:
        keypair = KeyPair.generate(seed="v2:alice")
        session.ledger.registry.register("alice", Role.USER, keypair.public)
        session.client_id = "alice"
        session.keypair = keypair
        yield session


# ------------------------------------------------------------- registry


class TestRegistry:
    def test_create_connect_drop(self):
        ledger = api.create(URI)
        try:
            assert api.get_ledger(URI) is ledger
            assert api.connect(URI).ledger is ledger
            assert URI in api.list_ledgers()
        finally:
            api.drop_ledger(URI)
        assert URI not in api.list_ledgers()

    def test_symmetric_strictness(self):
        """create-on-duplicate and drop-on-unknown now fail alike."""
        api.create(URI)
        try:
            with pytest.raises(UsageError):
                api.create(URI)
        finally:
            api.drop_ledger(URI)
        with pytest.raises(UsageError):
            api.drop_ledger(URI)  # already gone: symmetric with create
        api.drop_ledger(URI, missing_ok=True)  # escape hatch is explicit

    def test_exist_ok_returns_existing(self):
        ledger = api.create(URI)
        try:
            assert api.create(URI, exist_ok=True) is ledger
            with pytest.raises(UsageError):
                # exist_ok must not silently ignore a conflicting config
                api.create(URI, exist_ok=True, config=object())
        finally:
            api.drop_ledger(URI)

    def test_connect_unknown_lgid(self):
        with pytest.raises(UsageError):
            api.connect("ledger://never-created")

    def test_scoped_ledger_cleans_up_after_exception(self):
        with pytest.raises(RuntimeError):
            with api.scoped_ledger(URI):
                assert URI in api.list_ledgers()
                raise RuntimeError("boom")
        assert URI not in api.list_ledgers()
        with api.scoped_ledger(URI):  # the lgid is reusable immediately
            pass

    def test_usage_error_is_ledger_error_and_value_error(self):
        with pytest.raises(LedgerError):
            api.get_ledger("ledger://nope")
        with pytest.raises(ValueError):
            api.get_ledger("ledger://nope")


# -------------------------------------------------------------- sessions


class TestLedgerSession:
    def test_bound_identity_append(self, session):
        receipt = session.append(b"hello", clue="C")
        assert receipt.jsn == 1
        journal = session.ledger.get_journal(1)
        assert journal.client_id == "alice" and journal.clues == ("C",)

    def test_append_argument_contract(self, session):
        with pytest.raises(UsageError):
            session.append()  # neither payload nor request
        with pytest.raises(UsageError):
            session.append(b"x", clue="a", clues=("b",))  # both clue forms
        request = session._build_request("alice", session.keypair, b"ok", ())
        with pytest.raises(UsageError):
            session.append(b"x", request=request)  # payload and request

    def test_append_without_identity(self):
        with api.scoped_ledger(URI) as anonymous:
            with pytest.raises(UsageError):
                anonymous.append(b"unsigned")

    def test_append_batch_items(self, session):
        receipts = session.append_batch([(b"a", "k"), (b"b", None), (b"c", "k")])
        assert [r.jsn for r in receipts] == [1, 2, 3]
        assert [j.payload for j in session.list_tx("k")] == [b"a", b"c"]
        with pytest.raises(UsageError):
            session.append_batch()  # neither items nor requests
        with pytest.raises(UsageError):
            session.append_batch([(b"d", None)], requests=[])  # both

    def test_get_proof_and_verify_roundtrip(self, session):
        receipt = session.append(b"doc")
        journal = session.ledger.get_journal(receipt.jsn)
        proof = session.get_proof(receipt.jsn, anchored=False)
        result = session.verify("tx", txdata=[journal], rho=proof, level="client")
        assert result
        assert result.proof is proof

    def test_get_proofs_matches_single_calls(self, session):
        receipts = [session.append(b"doc-%d" % i) for i in range(7)]
        jsns = [r.jsn for r in receipts]
        for anchored in (False, True):
            bulk = session.get_proofs(jsns, anchored=anchored)
            singles = [session.get_proof(jsn, anchored=anchored) for jsn in jsns]
            assert [p.to_bytes() for p in bulk] == [p.to_bytes() for p in singles]
        assert session.get_proofs([]) == []

    def test_session_owned_service_lifecycle(self):
        with api.scoped_ledger(URI, service=True) as session:
            keypair = KeyPair.generate(seed="v2:svc")
            session.ledger.registry.register("s", Role.USER, keypair.public)
            assert isinstance(session.service, LedgerService)
            receipt = session.append(b"via-service", client_id="s", keypair=keypair)
            assert receipt.jsn == 1
            owned = session.service
        assert owned.closed  # scoped exit drained and closed the owned service

    def test_session_with_service_config(self):
        with api.scoped_ledger(URI, service=ServiceConfig(max_batch=4)) as session:
            assert session.service.config.max_batch == 4

    def test_shared_service_not_closed_by_session(self):
        ledger = api.create(URI)
        try:
            shared = LedgerService(ledger)
            with api.connect(URI, service=shared):
                pass
            assert not shared.closed  # caller owns it
            shared.close()
        finally:
            api.drop_ledger(URI)

    def test_service_batch_append_coalesces(self):
        with api.scoped_ledger(URI, service=True) as session:
            keypair = KeyPair.generate(seed="v2:bulk")
            session.ledger.registry.register("bulk", Role.USER, keypair.public)
            receipts = session.append_batch(
                [(b"p%d" % i, None) for i in range(10)],
                client_id="bulk",
                keypair=keypair,
                timeout=30.0,
            )
            assert sorted(r.jsn for r in receipts) == list(range(1, 11))

    def test_bad_service_argument(self):
        with api.scoped_ledger(URI) as session:
            with pytest.raises(UsageError):
                api.LedgerSession(session.ledger, service="not-a-service")


# ------------------------------------------------------- structured verify


class TestVerifyResult:
    def test_tx_result_fields(self, session):
        receipt = session.append(b"payload", clue="C")
        journal = session.ledger.get_journal(receipt.jsn)
        result = session.verify("tx", txdata=[journal])
        assert isinstance(result, VerifyResult)
        assert result and result.ok and bool(result) is True
        assert result.target == "tx" and result.level == "server"
        assert result.what is True and result.when is None and result.who is None
        assert result.proof is not None
        assert result.trusted_root == session.ledger.current_root()
        assert result.jsn == receipt.jsn

    def test_failed_verify_is_falsy_not_raising(self, session):
        receipt = session.append(b"original")
        journal = session.ledger.get_journal(receipt.jsn)
        forged = dataclasses.replace(journal, payload=b"tampered")
        result = session.verify("tx", txdata=[forged])
        assert not result and result.ok is False
        assert result.what is False

    def test_clue_result_both_levels(self, session):
        for i in range(5):
            session.append(b"item-%d" % i, clue="LINE")
        journals = session.list_tx("LINE")
        server = session.verify("clue", key="LINE", txdata=journals)
        client = session.verify("clue", key="LINE", txdata=journals, level="client")
        assert server and client
        assert client.proof is not None and client.trusted_root is not None
        # Omission (completeness violation) must fail on both levels.
        assert not session.verify("clue", key="LINE", txdata=journals[:-1])

    def test_verify_argument_contract(self, session):
        with pytest.raises(UsageError):
            session.verify("tx", txdata=[])
        with pytest.raises(UsageError):
            session.verify("clue", key=None, txdata=None)
        with pytest.raises(UsageError):
            session.verify("existence")  # not a target
        with pytest.raises(UsageError):
            session.verify("tx", txdata=[object()], level="maybe")

    def test_verify_dasein_flows_through_result(self, deployment):
        deployment.populate(count=6, anchor_every=3)
        deployment.ledger.collect_time_evidence()
        session = api.LedgerSession(deployment.ledger)
        jsn = deployment.ledger.list_tx("CLUE-A")[0]
        result = session.verify_dasein(jsn, tsa_keys=deployment.tsa_keys)
        assert isinstance(result, VerifyResult)
        assert result.target == "dasein" and result.level == "client"
        assert result.ok and result.what and result.when and result.who
        assert result.when_bound is not None
        assert result.trusted_root is not None and result.proof is not None

    def test_verify_dasein_reports_failing_factor(self, deployment):
        # No time anchor at all: `when` has no credible ceiling -> not ok,
        # while what/who still hold. The per-factor surface shows exactly that.
        deployment.append("alice", b"untimed")
        session = api.LedgerSession(deployment.ledger)
        result = session.verify_dasein(1, tsa_keys=deployment.tsa_keys)
        assert not result
        assert result.what is True and result.who is True and result.when is False

    def test_from_dasein_truthiness(self):
        from repro.core.verification import DaseinReport

        complete = DaseinReport(jsn=3, what=True, when_valid=True, when_bound=None, who=True)
        partial = DaseinReport(jsn=3, what=True, when_valid=False, when_bound=None, who=True)
        assert VerifyResult.from_dasein(complete)
        assert not VerifyResult.from_dasein(partial)


# ------------------------------------------------------------- v1 shims
# ------------------------------------------------------- v1 tombstones


class TestSunsetFacade:
    """The v1 facade finished its deprecation window: every function is a
    tombstone raising UsageError with the mechanical migration hint."""

    SHIM_CALLS = [
        ("create", lambda v1: v1.create(URI)),
        ("get_ledger", lambda v1: v1.get_ledger(URI)),
        ("drop_ledger", lambda v1: v1.drop_ledger(URI)),
        ("append_tx", lambda v1: v1.append_tx(URI, "u", b"doc", clue="D")),
        ("append_tx_batch", lambda v1: v1.append_tx_batch(URI, "u", [(b"a", None)])),
        ("list_tx", lambda v1: v1.list_tx(URI, "D")),
        ("get_proof", lambda v1: v1.get_proof(URI, 0)),
        ("verify", lambda v1: v1.verify(URI, VerifyTarget.TX, txdata=[])),
    ]

    def test_every_shim_raises_with_migration_hint(self):
        from repro.core import api as v1

        for name, call in self.SHIM_CALLS:
            with pytest.raises(UsageError) as excinfo:
                call(v1)
            message = str(excinfo.value)
            assert f"repro.core.api.{name} was removed" in message
            assert "repro.api" in message  # names the v2 home
            assert "connect" in message  # ...and the mechanical migration

    def test_shims_raise_before_touching_the_registry(self):
        """A tombstone must not create, resolve, or drop anything."""
        from repro.core import api as v1

        with pytest.raises(UsageError):
            v1.create(URI)
        assert URI not in api.list_ledgers()
        api.create(URI)
        try:
            with pytest.raises(UsageError):
                v1.drop_ledger(URI)
            assert URI in api.list_ledgers()  # v1 can no longer drop it
        finally:
            api.drop_ledger(URI)

    def test_enum_reexports_stay_importable_and_silent(self):
        """Only the functions were removed: the v1-era enum import path
        still works, warning-free."""
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.core.api import VerifyLevel as L
            from repro.core.api import VerifyResult as R
            from repro.core.api import VerifyTarget as T

            assert T.TX.value == "tx" and T.CLUE.value == "clue"
            assert L.SERVER.value == "server" and L.CLIENT.value == "client"
            assert R is VerifyResult
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
        from repro.core.verification import VerifyTarget as home

        assert T is home  # same object, not a copy
