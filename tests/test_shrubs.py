"""Shrubs accumulator: frontier semantics, proofs, batch proofs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import EMPTY_DIGEST, leaf_hash, node_hash
from repro.merkle.proofs import bag_peaks
from repro.merkle.shrubs import FrontierAccumulator, ShrubsAccumulator, peak_positions


def digests(n, tag=b""):
    return [leaf_hash(tag + i.to_bytes(4, "big")) for i in range(n)]


class TestPeakPositions:
    def test_power_of_two_single_peak(self):
        assert peak_positions(8) == [(3, 0)]

    def test_paper_figure_3a_seven_leaves(self):
        # 7 leaves -> subtree roots of sizes 4, 2, 1: the paper's
        # {cell7, cell10, cell11} node-set.
        assert peak_positions(7) == [(2, 0), (1, 2), (0, 6)]

    def test_zero(self):
        assert peak_positions(0) == []

    def test_peak_count_is_popcount(self):
        for n in range(1, 300):
            assert len(peak_positions(n)) == bin(n).count("1")


class TestAppend:
    def test_empty_root_is_sentinel(self):
        assert ShrubsAccumulator().root() == EMPTY_DIGEST

    def test_single_leaf_root_is_leaf(self):
        acc = ShrubsAccumulator()
        d = leaf_hash(b"only")
        acc.append_leaf(d)
        assert acc.root() == d
        assert acc.peaks() == [d]

    def test_two_leaves_root_is_parent(self):
        acc = ShrubsAccumulator()
        a, b = leaf_hash(b"a"), leaf_hash(b"b")
        acc.append_leaf(a)
        acc.append_leaf(b)
        assert acc.root() == node_hash(a, b)

    def test_bagging_order_matches_figure(self):
        # With 3 leaves the commitment is H(parent(l0,l1), l2).
        acc = ShrubsAccumulator()
        ds = digests(3)
        acc.extend(ds)
        assert acc.root() == node_hash(node_hash(ds[0], ds[1]), ds[2])

    def test_rejects_short_digest(self):
        with pytest.raises(ValueError):
            ShrubsAccumulator().append_leaf(b"short")

    def test_node_count_is_2n_minus_popcount(self):
        acc = ShrubsAccumulator()
        for n in range(1, 100):
            acc.append_leaf(leaf_hash(n.to_bytes(2, "big")))
            assert acc.num_nodes() == 2 * n - bin(n).count("1")

    def test_interior_nodes_computed_exactly_once(self):
        # Amortised O(1): after appending 2^k leaves, exactly 2^(k+1)-1 nodes.
        acc = ShrubsAccumulator()
        acc.extend(digests(16))
        assert acc.num_nodes() == 31


class TestProofs:
    def test_all_leaves_prove_at_all_sizes(self):
        acc = ShrubsAccumulator()
        ds = digests(33)
        acc.extend(ds)
        for size in (1, 2, 3, 5, 8, 16, 31, 32, 33):
            root = acc.root(size)
            for i in range(size):
                proof = acc.prove(i, at_size=size)
                assert proof.verify(ds[i], root)

    def test_proof_rejects_wrong_leaf(self):
        acc = ShrubsAccumulator()
        ds = digests(20)
        acc.extend(ds)
        proof = acc.prove(7)
        assert not proof.verify(leaf_hash(b"forged"), acc.root())

    def test_proof_rejects_wrong_root(self):
        acc = ShrubsAccumulator()
        ds = digests(20)
        acc.extend(ds)
        proof = acc.prove(7)
        assert not proof.verify(ds[7], leaf_hash(b"not the root"))

    def test_proof_against_frontier_node_set(self):
        acc = ShrubsAccumulator()
        ds = digests(11)
        acc.extend(ds)
        proof = acc.prove(9)
        assert proof.verify_against_frontier(ds[9], acc.peaks())
        assert not proof.verify_against_frontier(ds[9], [leaf_hash(b"zz")])

    def test_proof_out_of_range(self):
        acc = ShrubsAccumulator()
        acc.extend(digests(4))
        with pytest.raises(IndexError):
            acc.prove(4)
        with pytest.raises(ValueError):
            acc.prove(0, at_size=9)

    def test_proof_path_length_is_logarithmic(self):
        acc = ShrubsAccumulator()
        acc.extend(digests(1024))
        assert len(acc.prove(0).path) == 10

    def test_serialization_round_trip(self):
        from repro.merkle.proofs import MembershipProof

        acc = ShrubsAccumulator()
        ds = digests(13)
        acc.extend(ds)
        proof = acc.prove(5)
        restored = MembershipProof.from_bytes(proof.to_bytes())
        assert restored.verify(ds[5], acc.root())


class TestBatchProofs:
    def test_full_range_batch(self):
        acc = ShrubsAccumulator()
        ds = digests(10)
        acc.extend(ds)
        batch = acc.prove_batch(list(range(10)))
        assert ShrubsAccumulator.verify_batch(dict(enumerate(ds)), batch, acc.root())

    def test_batch_rejects_missing_leaf(self):
        acc = ShrubsAccumulator()
        ds = digests(10)
        acc.extend(ds)
        batch = acc.prove_batch([2, 3, 4])
        short = {2: ds[2], 3: ds[3]}  # one leaf withheld
        assert not ShrubsAccumulator.verify_batch(short, batch, acc.root())

    def test_batch_rejects_tampered_leaf(self):
        acc = ShrubsAccumulator()
        ds = digests(10)
        acc.extend(ds)
        batch = acc.prove_batch([2, 3, 4])
        bad = {2: ds[2], 3: leaf_hash(b"evil"), 4: ds[4]}
        assert not ShrubsAccumulator.verify_batch(bad, batch, acc.root())

    def test_batch_omits_derivable_nodes(self):
        # Proving both children of a node must not ship that node (the
        # paper's N2 ∩ N3 optimisation, §IV-C).
        acc = ShrubsAccumulator()
        ds = digests(8)
        acc.extend(ds)
        pair = acc.prove_batch([0, 1])
        single = acc.prove_batch([0])
        assert len(pair.nodes) < len(single.nodes) + 1

    def test_paper_example_first_four_of_eight(self):
        # Figure 6: verifying the first 4 of 8 entries needs only one
        # non-derivable proof cell (the right half's subtree root).
        acc = ShrubsAccumulator()
        ds = digests(8)
        acc.extend(ds)
        batch = acc.prove_batch([0, 1, 2, 3])
        assert len(batch.nodes) == 1
        assert (2, 1) in batch.nodes  # root of leaves [4, 8)

    def test_batch_empty_rejected(self):
        acc = ShrubsAccumulator()
        acc.extend(digests(4))
        with pytest.raises(ValueError):
            acc.prove_batch([])

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_batch_property(self, data):
        n = data.draw(st.integers(min_value=1, max_value=64))
        acc = ShrubsAccumulator()
        ds = digests(n)
        acc.extend(ds)
        k = data.draw(st.integers(min_value=1, max_value=n))
        indices = sorted(data.draw(st.permutations(range(n)))[:k])
        batch = acc.prove_batch(indices)
        leaf_map = {i: ds[i] for i in indices}
        assert ShrubsAccumulator.verify_batch(leaf_map, batch, acc.root())
        # Tamper one leaf.
        victim = indices[0]
        bad = dict(leaf_map)
        bad[victim] = leaf_hash(b"tampered")
        assert not ShrubsAccumulator.verify_batch(bad, batch, acc.root())


class TestFrontierAccumulator:
    def test_matches_full_accumulator(self):
        full = ShrubsAccumulator()
        frontier = FrontierAccumulator()
        for d in digests(100):
            full.append_leaf(d)
            frontier.append_leaf(d)
            assert full.root() == frontier.root()
            assert full.peaks() == frontier.peaks()

    def test_resume_from_snapshot(self):
        full = ShrubsAccumulator()
        first, second = digests(40), digests(25, tag=b"2nd")
        full.extend(first)
        resumed = FrontierAccumulator(*full.frontier_snapshot())
        for d in second:
            full.append_leaf(d)
            resumed.append_leaf(d)
        assert full.root() == resumed.root()

    def test_snapshot_validation(self):
        with pytest.raises(ValueError):
            FrontierAccumulator(3, [EMPTY_DIGEST])  # 3 needs 2 peaks

    def test_empty_root(self):
        assert FrontierAccumulator().root() == EMPTY_DIGEST


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=200))
def test_incremental_root_equals_from_scratch(n):
    acc = ShrubsAccumulator()
    acc.extend(digests(n))
    assert acc.root() == acc.recompute_root_from_scratch()
    assert acc.root() == bag_peaks(acc.peaks())
