"""Canonical encoding: determinism, round-trips, and malformed input."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding import EncodingError, decode, encode


def test_scalar_round_trips():
    scalars = (
        None, True, False, 0, 1, -1, 2**300, -(2**300), b"", b"\x00xyz", "", "héllo", 0.0, -2.5
    )
    for value in scalars:
        assert decode(encode(value)) == value


def test_list_and_dict_round_trip():
    value = {"a": [1, 2, [3, b"x"]], "b": None, "c": {"nested": "yes"}}
    assert decode(encode(value)) == value


def test_tuple_encodes_as_list():
    assert decode(encode((1, 2))) == [1, 2]


def test_dict_keys_sorted_canonically():
    assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})


def test_distinct_values_encode_distinctly():
    # Values that naive concatenation would confuse.
    pairs = [
        (["ab", "c"], ["a", "bc"]),
        ([b"", b""], [b"\x00"]),
        (1, "1"),
        (1, True),
        (0, False),
        (b"1", "1"),
        ([], {}),
    ]
    for left, right in pairs:
        assert encode(left) != encode(right)


def test_int_bool_distinction_preserved():
    assert decode(encode(True)) is True
    assert decode(encode(1)) == 1
    assert decode(encode(1)) is not True


def test_unsupported_type_rejected():
    with pytest.raises(EncodingError):
        encode({"x": set()})
    with pytest.raises(EncodingError):
        encode(object())


def test_non_string_dict_keys_rejected():
    with pytest.raises(EncodingError):
        encode({1: "x"})


def test_trailing_garbage_rejected():
    data = encode([1, 2]) + b"\x00"
    with pytest.raises(EncodingError):
        decode(data)


def test_truncated_input_rejected():
    data = encode({"key": b"value bytes"})
    with pytest.raises(EncodingError):
        decode(data[:-3])


def test_unknown_tag_rejected():
    with pytest.raises(EncodingError):
        decode(b"Z")


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.binary(max_size=64)
    | st.text(max_size=32)
    | st.floats(allow_nan=False),
    lambda children: st.lists(children, max_size=6)
    | st.dictionaries(st.text(max_size=8), children, max_size=6),
    max_leaves=24,
)


@given(json_like)
def test_round_trip_property(value):
    assert decode(encode(value)) == value


@given(json_like, json_like)
def test_injective_property(a, b):
    if encode(a) == encode(b):
        assert a == b
