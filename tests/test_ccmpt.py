"""ccMPT baseline: counter proofs + m existence proofs (O(m log n))."""

import dataclasses

import pytest

from repro.crypto.hashing import leaf_hash
from repro.merkle.ccmpt import ClueCounterMPT
from repro.merkle.tim import TimAccumulator


@pytest.fixture()
def setup():
    tim = TimAccumulator()
    cc = ClueCounterMPT(tim)
    digests: dict[str, list[bytes]] = {"a": [], "b": []}
    all_digests = {}
    for i in range(30):
        clue = "a" if i % 3 else "b"
        digest = leaf_hash(b"journal-%d" % i)
        jsn = tim.append_digest(digest)
        cc.add(clue, jsn)
        digests[clue].append(digest)
        all_digests[jsn] = digest
    return tim, cc, digests, all_digests


def test_counter_tracks_adds(setup):
    _tim, cc, digests, _all = setup
    assert cc.count("a") == len(digests["a"])
    assert cc.count("b") == len(digests["b"])
    assert cc.count("ghost") == 0


def test_clue_proof_verifies(setup):
    tim, cc, digests, all_digests = setup
    proof = cc.prove_clue("a")
    leaf_digests = [all_digests[jsn] for jsn in proof.jsns]
    assert ClueCounterMPT.verify_clue(proof, leaf_digests, cc.root, tim.root())


def test_proof_size_scales_with_m(setup):
    tim, cc, _digests, _all = setup
    proof_a = cc.prove_clue("a")
    proof_b = cc.prove_clue("b")
    # The m-fold existence proofs are the linear-expansion cost.
    assert len(proof_a.existence_proofs) == cc.count("a")
    assert len(proof_b.existence_proofs) == cc.count("b")


def test_tampered_journal_fails(setup):
    tim, cc, _digests, all_digests = setup
    proof = cc.prove_clue("a")
    leaf_digests = [all_digests[jsn] for jsn in proof.jsns]
    leaf_digests[0] = leaf_hash(b"evil")
    assert not ClueCounterMPT.verify_clue(proof, leaf_digests, cc.root, tim.root())


def test_wrong_counter_fails(setup):
    tim, cc, _digests, all_digests = setup
    proof = cc.prove_clue("a")
    leaf_digests = [all_digests[jsn] for jsn in proof.jsns]
    forged = dataclasses.replace(
        proof,
        counter=proof.counter - 1,
        jsns=proof.jsns[:-1],
        existence_proofs=proof.existence_proofs[:-1],
    )
    assert not ClueCounterMPT.verify_clue(forged, leaf_digests[:-1], cc.root, tim.root())


def test_wrong_ledger_root_fails(setup):
    tim, cc, _digests, all_digests = setup
    proof = cc.prove_clue("a")
    leaf_digests = [all_digests[jsn] for jsn in proof.jsns]
    assert not ClueCounterMPT.verify_clue(proof, leaf_digests, cc.root, leaf_hash(b"x"))


def test_wrong_mpt_root_fails(setup):
    tim, cc, _digests, all_digests = setup
    proof = cc.prove_clue("a")
    leaf_digests = [all_digests[jsn] for jsn in proof.jsns]
    assert not ClueCounterMPT.verify_clue(proof, leaf_digests, leaf_hash(b"y"), tim.root())


def test_unknown_clue_raises(setup):
    _tim, cc, _digests, _all = setup
    with pytest.raises(KeyError):
        cc.prove_clue("ghost")


def test_jsns_in_append_order(setup):
    _tim, cc, _digests, _all = setup
    jsns = cc.jsns("a")
    assert jsns == sorted(jsns)
