"""Consistency proofs: append-only evolution of Shrubs accumulators."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import leaf_hash
from repro.merkle.consistency import ConsistencyProof, prove_consistency
from repro.merkle.shrubs import ShrubsAccumulator


def build(n, tag=b""):
    acc = ShrubsAccumulator()
    for i in range(n):
        acc.append_leaf(leaf_hash(tag + i.to_bytes(4, "big")))
    return acc


class TestHonestProofs:
    def test_basic_consistency(self):
        acc = build(100)
        proof = prove_consistency(acc, 40, 100)
        assert proof.verify(acc.root(40), acc.root(100))

    def test_equal_sizes(self):
        acc = build(10)
        proof = prove_consistency(acc, 10, 10)
        assert proof.verify(acc.root(), acc.root())
        assert proof.complement == {}

    def test_power_of_two_boundaries(self):
        acc = build(64)
        for old, new in ((32, 64), (16, 32), (1, 64), (32, 33)):
            proof = prove_consistency(acc, old, new)
            assert proof.verify(acc.root(old), acc.root(new)), (old, new)

    def test_serialization_round_trip(self):
        acc = build(37)
        proof = prove_consistency(acc, 17, 37)
        restored = ConsistencyProof.from_bytes(proof.to_bytes())
        assert restored.verify(acc.root(17), acc.root(37))

    def test_invalid_ranges_rejected(self):
        acc = build(10)
        with pytest.raises(ValueError):
            prove_consistency(acc, 0, 10)
        with pytest.raises(ValueError):
            prove_consistency(acc, 5, 20)
        with pytest.raises(ValueError):
            prove_consistency(acc, 8, 5)


class TestForgery:
    def test_rewritten_history_detected(self):
        honest = build(60)
        forged = ShrubsAccumulator()
        for i in range(60):
            digest = leaf_hash(b"EVIL" if i == 7 else i.to_bytes(4, "big"))
            forged.append_leaf(digest)
        # A proof from the forged tree cannot link the honest old root to
        # the forged new root.
        proof = prove_consistency(forged, 20, 60)
        assert not proof.verify(honest.root(20), forged.root(60))

    def test_wrong_roots_rejected(self):
        acc = build(50)
        proof = prove_consistency(acc, 20, 50)
        assert not proof.verify(leaf_hash(b"x"), acc.root(50))
        assert not proof.verify(acc.root(20), leaf_hash(b"x"))
        assert not proof.verify(acc.root(21), acc.root(50))

    def test_complement_may_not_cover_old_leaves(self):
        # An adversary shipping a complement tile over trusted history (to
        # substitute it) must be rejected structurally.
        acc = build(40)
        proof = prove_consistency(acc, 20, 40)
        poisoned = dataclasses.replace(
            proof,
            complement={**proof.complement, (0, 3): leaf_hash(b"substituted")},
        )
        assert not poisoned.verify(acc.root(20), acc.root(40))

    def test_truncated_complement_rejected(self):
        acc = build(40)
        proof = prove_consistency(acc, 20, 40)
        if proof.complement:
            first_key = next(iter(proof.complement))
            truncated = dict(proof.complement)
            del truncated[first_key]
            broken = dataclasses.replace(proof, complement=truncated)
            assert not broken.verify(acc.root(20), acc.root(40))

    def test_tampered_old_peak_rejected(self):
        acc = build(40)
        proof = prove_consistency(acc, 20, 40)
        forged = dataclasses.replace(
            proof, old_peaks=[leaf_hash(b"z")] + proof.old_peaks[1:]
        )
        assert not forged.verify(acc.root(20), acc.root(40))


class TestFamIntegration:
    def test_live_epoch_consistency(self):
        from repro.merkle.fam import FamAccumulator

        fam = FamAccumulator(4)
        for i in range(20):
            fam.append(leaf_hash(i.to_bytes(4, "big")))
        old_size = fam.snapshot()[1]
        old_root = fam.current_root()
        for i in range(20, 25):
            fam.append(leaf_hash(i.to_bytes(4, "big")))
        if fam.snapshot()[1] > old_size:  # still the same epoch
            proof = fam.prove_live_consistency(old_size)
            assert proof.verify(old_root, fam.current_root())

    def test_epoch_link_advances_anchors(self):
        from repro.merkle.fam import AnchorStore, FamAccumulator

        fam = FamAccumulator(3)
        for i in range(40):
            fam.append(leaf_hash(i.to_bytes(4, "big")))
        anchors = AnchorStore()
        anchors.add(0, fam.epoch_root(0))
        for epoch in range(1, fam.num_epochs - 1):
            link = fam.prove_epoch_link(epoch)
            assert anchors.advance(epoch, fam.epoch_root(epoch), link), epoch
        assert len(anchors) == fam.num_epochs - 1

    def test_epoch_link_rejects_forged_root(self):
        from repro.merkle.fam import AnchorStore, FamAccumulator

        fam = FamAccumulator(3)
        for i in range(40):
            fam.append(leaf_hash(i.to_bytes(4, "big")))
        anchors = AnchorStore()
        anchors.add(0, fam.epoch_root(0))
        link = fam.prove_epoch_link(1)
        assert not anchors.advance(1, leaf_hash(b"forged epoch root"), link)
        assert anchors.get(1) is None  # nothing was stored

    def test_epoch_link_range_validation(self):
        from repro.merkle.fam import FamAccumulator

        fam = FamAccumulator(3)
        for i in range(20):
            fam.append(leaf_hash(i.to_bytes(4, "big")))
        with pytest.raises(ValueError):
            fam.prove_epoch_link(0)  # genesis epoch has no merged leaf
        with pytest.raises(ValueError):
            fam.prove_epoch_link(99)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_consistency_property(data):
    n = data.draw(st.integers(min_value=1, max_value=120))
    acc = build(n)
    old = data.draw(st.integers(min_value=1, max_value=n))
    new = data.draw(st.integers(min_value=old, max_value=n))
    proof = prove_consistency(acc, old, new)
    assert proof.verify(acc.root(old), acc.root(new))
    # Verification against any other old size's root must fail.
    other = data.draw(st.integers(min_value=1, max_value=n))
    if acc.root(other) != acc.root(old):
        assert not proof.verify(acc.root(other), acc.root(new))
