"""Table I capability matrix — probe the implemented systems' actual behaviour."""

from repro.baselines import TABLE_I, Level, render_table_i


def row(system):
    return next(cap for cap in TABLE_I if cap.system == system)


class TestMatrixShape:
    def test_six_systems(self):
        assert len(TABLE_I) == 6
        assert {cap.system for cap in TABLE_I} == {
            "LedgerDB", "SQL Ledger", "QLDB", "ProvenDB", "Hyperledger", "Factom",
        }

    def test_only_ledgerdb_has_everything(self):
        full = [
            cap.system
            for cap in TABLE_I
            if cap.dasein_complete and cap.verifiable_mutation and cap.verifiable_n_lineage
        ]
        assert full == ["LedgerDB"]

    def test_render_contains_all_rows(self):
        text = render_table_i()
        for cap in TABLE_I:
            assert cap.system in text


class TestLedgerDBClaims:
    """Probe the real implementation against its Table-I row."""

    def test_dasein_complete(self, populated):
        cap = row("LedgerDB")
        assert cap.dasein_complete
        deployment, receipts = populated
        from repro.core import DaseinVerifier

        view = deployment.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=deployment.tsa_keys)
        jsn = receipts[2].jsn
        proof = deployment.ledger.get_proof(jsn, anchored=False)
        report = verifier.verify_dasein(jsn, proof, receipts[2])
        assert report.dasein_complete  # the probe behind the claim

    def test_verifiable_mutation(self, populated):
        assert row("LedgerDB").verifiable_mutation
        deployment, _receipts = populated
        from repro.core import OccultMode, dasein_audit

        record = deployment.ledger.prepare_occult(3, OccultMode.SYNC, reason="probe")
        approvals = deployment.sign_approval(["dba", "regulator"], record.approval_digest())
        deployment.ledger.execute_occult(record, approvals)
        assert dasein_audit(
            deployment.ledger.export_view(), tsa_keys=deployment.tsa_keys
        ).passed

    def test_verifiable_n_lineage(self, populated):
        assert row("LedgerDB").verifiable_n_lineage
        deployment, _receipts = populated
        proof = deployment.ledger.prove_clue("CLUE-A")
        jsns = deployment.ledger.list_tx("CLUE-A")
        digests = {
            i: deployment.ledger.get_journal(j).tx_hash() for i, j in enumerate(jsns)
        }
        assert proof.verify(digests, deployment.ledger.state_root())

    def test_trust_is_tsa_not_lsp(self):
        dependency = row("LedgerDB").trusted_dependency
        assert dependency.startswith("TSA")
        assert "non-LSP" in dependency  # explicitly *not* the LSP


class TestQLDBClaims:
    def test_what_only(self):
        assert row("QLDB").dasein_support == ("what",)
        assert not row("QLDB").dasein_complete

    def test_no_mutation_api(self):
        from repro.baselines import QLDBSimulator

        qldb = QLDBSimulator()
        assert not hasattr(qldb, "occult") and not hasattr(qldb, "purge")
        assert not row("QLDB").verifiable_mutation

    def test_what_verification_works(self):
        # QLDB does satisfy *what*: the probe.
        from repro.baselines import QLDBSimulator

        qldb = QLDBSimulator()
        qldb.insert("t", "k", b"v")
        result = qldb.get_revision("t", "k", 0)
        assert result.value[1].tree_size == 1


class TestProvenDBClaims:
    def test_when_is_claimed_but_weak(self):
        # ProvenDB claims what-when; our attack tests show when is weak
        # (infinite amplification) — the matrix row reflects the claim, the
        # timeauth tests document the weakness.
        assert row("ProvenDB").dasein_support == ("what", "when")

    def test_lower_bound_unprovable(self):
        from repro.baselines import ProvenDBSimulator
        from repro.timeauth import SimClock

        clock = SimClock()
        prov = ProvenDBSimulator(clock, peg_interval=10.0)
        prov.insert("d", b"x")
        clock.advance(650.0)
        prov.tick()
        bound = prov.time_bound_for_root(prov._accumulator.root())
        assert bound.lower == float("-inf")


class TestHyperledgerClaims:
    def test_no_when(self):
        assert "when" not in row("Hyperledger").dasein_support

    def test_low_verify_efficiency_is_measured(self):
        # ~1 s reads vs LedgerDB's ~25 ms: the Low rating is behavioural.
        from repro.baselines import FabricNetwork

        fabric = FabricNetwork()
        fabric.invoke("k", b"v")
        assert fabric.get_state("k").latency_ms > 50
        assert row("Hyperledger").verify_efficiency is Level.LOW
