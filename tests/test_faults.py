"""Self-tests of the fault-injection harness (repro.storage.faults).

The crash-recovery suite trusts the harness to model a power loss
faithfully; these tests pin that model down: op counting lines up between
dry runs and armed runs, torn writes persist exactly the scheduled prefix,
and the crash exception cannot be swallowed by ``except Exception``.
"""

import os

import pytest

from repro.storage import FileStream
from repro.storage.faults import (
    FaultPlan,
    FaultyStream,
    InjectedCrash,
    flip_bit,
    flip_byte,
)


class TestFaultPlan:
    def test_dry_run_traces_all_ops(self, tmp_path):
        plan = FaultPlan()
        stream = FaultyStream(tmp_path / "s", plan)
        plan.reset()
        stream.append(b"hello")
        kinds = [point.kind for point in plan.crash_points()]
        assert kinds == ["write", "flush", "fsync"]
        assert plan.crash_points()[0].size == 13 + 5
        stream.close()

    def test_armed_indices_match_dry_run(self, tmp_path):
        plan = FaultPlan()
        stream = FaultyStream(tmp_path / "s", plan)
        plan.reset()
        stream.append(b"first")
        trace = plan.crash_points()
        plan.arm(crash_op=trace[-1].op_index)  # the fsync
        with pytest.raises(InjectedCrash) as exc_info:
            stream.append(b"second")
        assert exc_info.value.kind == "fsync"
        assert exc_info.value.op_index == trace[-1].op_index
        stream.abandon()

    def test_non_durable_stream_never_fsyncs(self, tmp_path):
        plan = FaultPlan()
        stream = FaultyStream(tmp_path / "s", plan, durable=False)
        plan.reset()
        stream.append(b"x")
        assert [p.kind for p in plan.crash_points()] == ["write", "flush"]
        stream.close()


class TestTornWrites:
    def test_exact_prefix_survives(self, tmp_path):
        path = tmp_path / "s"
        plan = FaultPlan()
        stream = FaultyStream(path, plan)
        stream.append(b"committed")
        size_before = os.path.getsize(path)
        plan.arm(crash_op=0, partial_bytes=7)
        with pytest.raises(InjectedCrash):
            stream.append(b"torn-away")
        stream.abandon()
        assert os.path.getsize(path) == size_before + 7
        with FileStream(path) as reopened:  # and the tail rolls back
            assert len(reopened) == 1
            assert os.path.getsize(path) == size_before

    def test_zero_prefix_persists_nothing(self, tmp_path):
        path = tmp_path / "s"
        plan = FaultPlan()
        stream = FaultyStream(path, plan)
        stream.append(b"committed")
        size_before = os.path.getsize(path)
        plan.arm(crash_op=0, partial_bytes=0)
        with pytest.raises(InjectedCrash):
            stream.append(b"lost")
        stream.abandon()
        assert os.path.getsize(path) == size_before

    def test_injected_crash_pierces_broad_except(self, tmp_path):
        """InjectedCrash is a BaseException: commit-path 'except Exception'
        blocks must not be able to absorb a simulated power loss."""
        plan = FaultPlan()
        stream = FaultyStream(tmp_path / "s", plan)
        plan.arm(crash_op=0, partial_bytes=0)
        with pytest.raises(InjectedCrash):
            try:
                stream.append(b"x")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("InjectedCrash was swallowed by 'except Exception'")
        stream.abandon()


class TestBitFlips:
    def test_flip_byte_round_trips(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"\x00\x0f\xf0")
        flip_byte(path, 1, 0xFF)
        assert path.read_bytes() == b"\x00\xf0\xf0"
        flip_byte(path, 1, 0xFF)
        assert path.read_bytes() == b"\x00\x0f\xf0"

    def test_flip_bit_addresses_bits(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(bytes(2))
        flip_bit(path, 9)  # bit 1 of byte 1
        assert path.read_bytes() == b"\x00\x02"

    def test_flip_past_eof_rejected(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"ab")
        with pytest.raises(ValueError, match="past EOF"):
            flip_byte(path, 2)
