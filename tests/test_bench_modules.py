"""Regression tests for the paper-figure reproduction modules.

These do not re-run the full sweeps (the benchmark suite does); they run
the cheap modules end-to-end and assert the *shapes* EXPERIMENTS.md claims,
so a refactor that silently breaks a reproduced result fails CI.
"""

import pytest

from repro.bench import fig5, fig10, table1, table2
from repro.bench.fig9 import modeled_latency_ms
from repro.bench.fig10 import (
    fabric_lineage_latency_ms,
    fabric_lineage_tps,
    ledgerdb_lineage_latency_ms,
    ledgerdb_lineage_tps,
    ledgerdb_write_latency_ms,
    ledgerdb_write_tps,
)
from repro.baselines.fabric import FabricNetwork


class TestTable1Module:
    def test_runs_and_renders(self):
        result = table1.run()
        text = table1.render(result)
        assert "LedgerDB" in text and "Factom" in text
        assert (
            result.storage_nodes["fam after purge (erased epochs)"]
            < result.storage_nodes["fam (LedgerDB)"]
        )


class TestTable2Module:
    def test_shapes(self):
        result = table2.run()
        rows = {op: (qldb, ledger) for _s, op, qldb, ledger in result.rows}
        # Verify is the dominant gap; lineage is linear in versions.
        assert rows["Verify"][0] > 1.0  # QLDB verify is seconds-scale
        assert rows["Verify"][1] < 0.1  # LedgerDB stays tens of ms
        v5, v100 = rows["Verify (5 versions)"][0], rows["Verify (100 versions)"][0]
        assert 15 < v100 / v5 < 25  # ~20x: linear in version count
        l5, l100 = rows["Verify (5 versions)"][1], rows["Verify (100 versions)"][1]
        assert l100 / l5 < 2  # LedgerDB flat


class TestFig5Module:
    def test_one_way_unbounded_two_way_bounded(self):
        result = fig5.run()
        one_way = [result.one_way_windows[d] for d in result.delays]
        assert one_way == sorted(one_way)  # grows with delay
        assert one_way[-1] > 600_000
        assert all(w <= result.bound + 1e-9 for w in result.two_way_windows.values())
        assert result.tledger_acceptance[0.2] and not result.tledger_acceptance[60.0]


class TestFig9Model:
    def test_cmtree_flat_ccmpt_grows(self):
        cm = [modeled_latency_ms("CM-Tree", n, 50) for n in (1 << 5, 1 << 25)]
        cc = [modeled_latency_ms("ccMPT", n, 50) for n in (1 << 5, 1 << 25)]
        assert cm[0] == pytest.approx(cm[1])  # flat in ledger size
        assert cc[1] > cc[0] * 3  # grows with ledger size
        # The paper's band: speedup between ~9x and ~45x across scales.
        assert 5 < cc[0] / cm[0] < 20
        assert 25 < cc[1] / cm[1] < 60


class TestFig10Model:
    def test_notarization_ratio_near_23x(self):
        fabric = FabricNetwork()
        for volume in (1 << 5, 1 << 30):
            ratio = ledgerdb_write_tps(volume) / fabric.estimate_write_tps(volume)
            assert 18 < ratio < 30  # paper: 23x

    def test_notarization_latency_ratio(self):
        fabric = FabricNetwork()
        invoke_ms = fabric.invoke("k", b"x" * 4096).latency_ms
        ratio = invoke_ms / ledgerdb_write_latency_ms(4096)
        assert 300 < ratio < 700  # paper: ~500x

    def test_lineage_crossover_near_50(self):
        fabric = FabricNetwork()
        # LedgerDB dominates at m=1, Fabric wins by m=100: crossover between.
        assert ledgerdb_lineage_tps(1) > 3 * fabric_lineage_tps(fabric, 1)
        assert ledgerdb_lineage_tps(100) < fabric_lineage_tps(fabric, 100)
        assert ledgerdb_lineage_tps(50) == pytest.approx(
            fabric_lineage_tps(fabric, 50), rel=0.35
        )

    def test_lineage_latency_ratio_near_300x(self):
        fabric = FabricNetwork()
        ratios = [
            fabric_lineage_latency_ms(fabric, m) / ledgerdb_lineage_latency_ms(m)
            for m in (1, 5, 10, 25, 50, 100)
        ]
        average = sum(ratios) / len(ratios)
        assert 200 < average < 450  # paper: ~300x

    def test_run_quick_executes(self):
        result = fig10.run(quick=True)
        assert result.measured_python_tps > 0
        text = fig10.render(result)
        assert "crossover" in text
