"""Offline export bundles: container round-trip, standalone verification,
bit-rot refusal, and the import-isolation guarantee (DESIGN.md §17)."""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import LedgerSession
from repro.core import Ledger, LedgerConfig
from repro.crypto import KeyPair, Role
from repro.export.bundle import (
    BundleCorruptionError,
    BundleError,
    ExportBundle,
    export_bundle,
)
from repro.export.verifier import verify_bundle, verify_bundle_path
from repro.timeauth import SimClock, TimeStampAuthority

SRC = str(Path(__file__).resolve().parent.parent / "src")


def build_deployment(journals=18, shards=1, data_dir=None):
    """Deterministic TSA-anchored deployment; trailing anchor bounds every tx."""
    clock = SimClock()
    tsa = TimeStampAuthority("bundle-tsa", clock)
    kwargs = {}
    if data_dir is not None:
        kwargs = {"node_store": "paged", "data_dir": str(data_dir)}
    config = LedgerConfig(
        uri="ledger://bundle-test",
        fractal_height=3,
        block_size=4,
        shards=shards,
        **kwargs,
    )
    if shards > 1:
        from repro.shard import ShardedLedger

        ledger = ShardedLedger(config, clock=clock)
    else:
        ledger = Ledger(config, clock=clock)
    ledger.attach_tsa(tsa)
    user = KeyPair.generate(seed="bundle-user")
    ledger.registry.register("bundle-user", Role.USER, user.public)
    session = LedgerSession(ledger, client_id="bundle-user", keypair=user)
    for index in range(journals):
        session.append(
            b"bundle record %04d" % index, clues=(f"BND-{index % (3 * shards)}",)
        )
        clock.advance(0.25)
        if index % 6 == 5:
            ledger.anchor_time()
    ledger.anchor_time()
    ledger.commit_block()
    return ledger, {"bundle-tsa": tsa.public_key}


@pytest.fixture(scope="module")
def solo():
    ledger, tsa_keys = build_deployment()
    bundle = export_bundle(ledger, clues=("BND-0", "BND-2"))
    return ledger, tsa_keys, bundle


@pytest.fixture(scope="module")
def sharded():
    ledger, tsa_keys = build_deployment(journals=30, shards=3)
    bundle = export_bundle(ledger, clues=("BND-1", "BND-5"))
    return ledger, tsa_keys, bundle


# --------------------------------------------------------------- container


def test_round_trips_through_bytes(solo):
    _ledger, _keys, bundle = solo
    assert ExportBundle.from_bytes(bundle.to_bytes()) == bundle


def test_round_trips_through_file(solo, tmp_path):
    _ledger, _keys, bundle = solo
    path = tmp_path / "solo.bundle"
    bundle.write(path)
    loaded = ExportBundle.read(path)
    assert loaded == bundle
    assert loaded.source_path == path


def test_alien_file_is_typed(tmp_path):
    path = tmp_path / "alien.bundle"
    path.write_bytes(b"not a bundle at all")
    with pytest.raises(BundleCorruptionError):
        ExportBundle.read(path)


def test_truncated_bundle_is_typed(solo):
    _ledger, _keys, bundle = solo
    blob = bundle.to_bytes()
    with pytest.raises(BundleCorruptionError):
        ExportBundle.from_bytes(blob[: len(blob) // 2])


# ------------------------------------------------------------ verification


def test_solo_bundle_verifies_standalone(solo):
    _ledger, tsa_keys, bundle = solo
    result = verify_bundle(bundle, tsa_keys=tsa_keys)
    assert result
    assert (result.what, result.when, result.who) == (True, True, True)
    assert result.level == "standalone"
    assert result.trusted_root is not None


def test_when_is_tristate_without_tsa_keys(solo):
    _ledger, _keys, bundle = solo
    result = verify_bundle(bundle)
    assert result.ok
    assert result.when is None  # "not checked", never a silent pass


def test_sharded_bundle_verifies_standalone(sharded):
    _ledger, tsa_keys, bundle = sharded
    result = verify_bundle(bundle, tsa_keys=tsa_keys)
    assert result, result.detail
    assert bundle.num_shards == 3
    assert bundle.composite_sth


def test_wrong_lsp_pin_fails(solo):
    _ledger, _keys, bundle = solo
    stranger = KeyPair.generate(seed="stranger").public
    result = verify_bundle(bundle, lsp_public_key=stranger)
    assert not result
    assert "lsp" in result.detail.lower()


def test_wrong_ca_pin_fails(solo):
    _ledger, _keys, bundle = solo
    stranger = KeyPair.generate(seed="stranger").public
    result = verify_bundle(bundle, ca_public_key=stranger)
    assert not result
    assert result.who is False


def test_wrong_pinned_root_fails(solo):
    _ledger, _keys, bundle = solo
    result = verify_bundle(bundle, pinned_roots={0: b"\x00" * 32})
    assert not result
    assert result.what is False


def test_unknown_tsa_key_fails_when(solo):
    _ledger, _keys, bundle = solo
    wrong = {"bundle-tsa": KeyPair.generate(seed="stranger").public}
    result = verify_bundle(bundle, tsa_keys=wrong)
    assert not result
    assert result.when is False
    assert result.what is True  # only the time factor is poisoned


# --------------------------------------------------- tampering, typed always


def _tamper_entry(bundle, shard=0, slot=1):
    """Flip one payload byte inside a decoded bundle (post-container layer)."""
    section = bundle.shards[shard]
    entry = section.entries[slot]
    assert entry.data is not None
    mutated = dataclasses.replace(
        entry, data=entry.data[:-1] + bytes([entry.data[-1] ^ 0x40])
    )
    entries = list(section.entries)
    entries[slot] = mutated
    sections = list(bundle.shards)
    sections[shard] = dataclasses.replace(section, entries=tuple(entries))
    return dataclasses.replace(bundle, shards=tuple(sections))


def test_tampered_journal_bytes_fail_falsy(solo):
    _ledger, tsa_keys, bundle = solo
    result = verify_bundle(_tamper_entry(bundle), tsa_keys=tsa_keys)
    assert not result
    assert result.what is False
    assert "retained digest" in result.detail


def test_tampered_receipt_fails_falsy(solo):
    _ledger, _keys, bundle = solo
    blob = bundle.shards[0].latest_receipt
    forged = dataclasses.replace(
        bundle,
        shards=(
            dataclasses.replace(
                bundle.shards[0],
                latest_receipt=blob[:-1] + bytes([blob[-1] ^ 0x01]),
            ),
        ),
    )
    result = verify_bundle(forged)
    assert not result
    assert result.who is False


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_any_flipped_bit_is_typed_never_a_false_pass(solo, data):
    """The acceptance property: corrupt any bit of the container and the
    outcome is a typed BundleError or a falsy result — never a crash,
    never a PASS."""
    _ledger, tsa_keys, bundle = solo
    blob = bundle.to_bytes()
    bit = data.draw(st.integers(min_value=0, max_value=len(blob) * 8 - 1))
    corrupted = bytearray(blob)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    try:
        decoded = ExportBundle.from_bytes(bytes(corrupted))
    except BundleError:
        return  # typed refusal at the container layer — the expected path
    result = verify_bundle(decoded, tsa_keys=tsa_keys)
    assert not result.ok


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_flipped_file_bit_keeps_verify_bundle_path_typed(solo, tmp_path_factory, data):
    _ledger, tsa_keys, bundle = solo
    path = tmp_path_factory.mktemp("rot") / "bundle.bin"
    blob = bytearray(bundle.to_bytes())
    bit = data.draw(st.integers(min_value=0, max_value=len(blob) * 8 - 1))
    blob[bit // 8] ^= 1 << (bit % 8)
    path.write_bytes(bytes(blob))
    try:
        result = verify_bundle_path(path, tsa_keys=tsa_keys)
    except BundleError:
        return
    assert not result.ok


# ------------------------------------------------- standalone == in-process


_STANDALONE = """\
import json, sys
sys.path.insert(0, {src!r})
from repro.crypto.keys import PublicKey
from repro.export.verifier import verify_bundle_path

result = verify_bundle_path(
    {path!r}, tsa_keys={{"bundle-tsa": PublicKey.from_bytes(bytes.fromhex({key!r}))}}
)
banned = sorted(
    name for name in sys.modules
    if name in ("repro.core.ledger", "repro.service", "repro.net")
    or name.startswith(("repro.service.", "repro.net."))
)
print(json.dumps({{"blob": result.to_bytes().hex(), "banned": banned}}))
"""


def test_standalone_process_agrees_and_never_loads_the_kernel(solo, tmp_path):
    """The same bundle verifies byte-identically in a subprocess that never
    imports the ledger kernel, the service layer, or the network stack."""
    _ledger, tsa_keys, bundle = solo
    path = tmp_path / "carry-away.bundle"
    bundle.write(path)
    local = verify_bundle_path(path, tsa_keys=tsa_keys)
    assert local.ok

    script = _STANDALONE.format(
        src=SRC, path=str(path), key=tsa_keys["bundle-tsa"].to_bytes().hex()
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
        check=True,
    )
    report = json.loads(proc.stdout)
    assert report["banned"] == []
    assert report["blob"] == local.to_bytes().hex()


# ------------------------------------------------------------- API surface


def test_bundle_is_an_artifact(solo):
    from repro.artifacts import is_artifact

    _ledger, tsa_keys, bundle = solo
    assert is_artifact(bundle)
    assert bundle.verify(tsa_keys=tsa_keys).ok


def test_session_export_matches_export_bundle(solo, tmp_path):
    ledger, _keys, bundle = solo
    session = LedgerSession(ledger)
    exported = session.export(tmp_path / "session.bundle", clues=("BND-0", "BND-2"))
    assert exported.source_path == tmp_path / "session.bundle"
    # created_at aside, the evidence is identical for an identical ledger state
    assert exported.to_bytes() == bundle.to_bytes()


def test_lazy_top_level_exports():
    import repro

    assert repro.ExportBundle is ExportBundle
    assert repro.export_bundle is export_bundle
    assert repro.verify_bundle is verify_bundle
    assert repro.RebuildReport.__name__ == "RebuildReport"
