"""End-to-end integration scenarios spanning every subsystem."""

import pytest

from repro.core import (
    ClientRequest,
    DaseinVerifier,
    JournalOccultedError,
    JournalPurgedError,
    Ledger,
    LedgerConfig,
    OccultMode,
    dasein_audit,
)
from repro.crypto import KeyPair, MultiSignature, Role
from repro.timeauth import SimClock, TimeLedger, TimeStampAuthority, TSAPool


class TestGCOSupplyChain:
    """The paper's motivating Grain-Cotton-Oil scenario (§I): multiple
    corporations append records; any external party audits what-when-who."""

    @pytest.fixture()
    def world(self):
        clock = SimClock()
        tsa_pool = TSAPool(
            [TimeStampAuthority(f"tsa-{i}", clock) for i in range(3)]
        )
        tledger = TimeLedger(clock, tsa_pool, finalize_interval=1.0, admission_tolerance=2.0)
        ledger = Ledger(
            LedgerConfig(uri="ledger://gco", fractal_height=4, block_size=8),
            clock=clock,
        )
        ledger.attach_time_ledger(tledger)
        parties = {}
        for name in ("bank", "oil-mfg", "cotton-retail", "grain-warehouse"):
            keypair = KeyPair.generate(seed=f"gco:{name}")
            parties[name] = keypair
            ledger.registry.register(name, Role.USER, keypair.public)
        dba = KeyPair.generate(seed="gco:dba")
        ledger.registry.register("dba", Role.DBA, dba.public)
        regulator = KeyPair.generate(seed="gco:reg")
        ledger.registry.register("regulator", Role.REGULATOR, regulator.public)
        parties["dba"], parties["regulator"] = dba, regulator
        return clock, tsa_pool, tledger, ledger, parties

    def append(self, ledger, clock, parties, who, payload, clues=()):
        request = ClientRequest.build(
            "ledger://gco", who, payload, clues=tuple(clues),
            nonce=payload[:4], client_timestamp=clock.now(),
        ).signed_by(parties[who])
        return ledger.append(request)

    def test_full_supply_chain_lifecycle(self, world):
        clock, tsa_pool, tledger, ledger, parties = world

        # Phase 1: each party appends manuscripts/invoices/receipts under
        # a shipment clue; the ledger anchors time every simulated second.
        shipment = "SHIPMENT-2022-001"
        receipts = []
        for round_number in range(6):
            for who in ("grain-warehouse", "oil-mfg", "cotton-retail", "bank"):
                receipts.append(
                    self.append(
                        ledger, clock, parties, who,
                        f"{who} record r{round_number}".encode(),
                        clues=(shipment,) if who != "bank" else (shipment, "SETTLEMENT"),
                    )
                )
                clock.advance(0.21)
            ledger.anchor_time()
        clock.advance(2.0)
        ledger.collect_time_evidence()
        ledger.commit_block()

        # Phase 2: lineage — all shipment records verify, in order, complete.
        jsns = ledger.list_tx(shipment)
        assert len(jsns) == 24
        journals = [ledger.get_journal(j) for j in jsns]
        assert ledger.verify_clue(shipment, journals)
        proof = ledger.prove_clue(shipment)
        digests = {i: j.tx_hash() for i, j in enumerate(journals)}
        assert proof.verify(digests, ledger.state_root())

        # Phase 3: external auditor downloads the view and runs the full
        # Dasein-complete audit with TSA keys obtained out-of-band.
        tsa_keys = {f"tsa-{i}": tsa_pool.public_key_of(f"tsa-{i}") for i in range(3)}
        view = ledger.export_view()
        report = dasein_audit(view, tsa_keys=tsa_keys)
        assert report.passed

        # Phase 4: per-journal Dasein verification by a distrusting client.
        verifier = DaseinVerifier(view, tsa_keys=tsa_keys)
        target = receipts[5]
        fam_proof = ledger.get_proof(target.jsn, anchored=False)
        dasein = verifier.verify_dasein(target.jsn, fam_proof, target)
        assert dasein.dasein_complete
        assert dasein.when_bound.width < 3.0  # tight window from T-Ledger

    def test_regulated_data_occult_then_audit(self, world):
        clock, tsa_pool, tledger, ledger, parties = world
        bad = self.append(
            ledger, clock, parties, "bank", b"PII: leaked identity", clues=("SETTLEMENT",)
        )
        for i in range(5):
            self.append(ledger, clock, parties, "oil-mfg", b"rec%d" % i)
        ledger.anchor_time()
        clock.advance(2.0)
        ledger.collect_time_evidence()

        record = ledger.prepare_occult(bad.jsn, OccultMode.ASYNC, reason="PII violation")
        approvals = MultiSignature(digest=record.approval_digest())
        approvals.add("dba", parties["dba"].sign(record.approval_digest()))
        approvals.add("regulator", parties["regulator"].sign(record.approval_digest()))
        ledger.execute_occult(record, approvals)
        with pytest.raises(JournalOccultedError):
            ledger.get_journal(bad.jsn)
        ledger.reorganize()

        tsa_keys = {f"tsa-{i}": tsa_pool.public_key_of(f"tsa-{i}") for i in range(3)}
        assert dasein_audit(ledger.export_view(), tsa_keys=tsa_keys).passed
        # Lineage for the settlement clue still verifies, count intact.
        assert ledger.clue_entry_count("SETTLEMENT") == 1

    def test_year_end_purge_then_audit(self, world):
        clock, tsa_pool, tledger, ledger, parties = world
        for i in range(15):
            self.append(ledger, clock, parties, "bank", b"old-%d" % i)
            clock.advance(0.1)
        ledger.anchor_time()
        clock.advance(2.0)
        ledger.collect_time_evidence()
        ledger.commit_block()
        boundary = ledger.blocks[0].end_jsn

        milestone = 3  # keep one historical block trade
        pseudo, record = ledger.prepare_purge(boundary, survivors=(milestone,), reason="year-end")
        approvals = MultiSignature(digest=record.approval_digest())
        for member in ledger.purge_required_signers(boundary):
            keypair = parties.get(member) or ledger._lsp_keypair
            approvals.add(member, keypair.sign(record.approval_digest()))
        ledger.execute_purge(pseudo, record, approvals)

        with pytest.raises(JournalPurgedError):
            ledger.get_journal(1)
        assert ledger.get_journal(milestone).payload == b"old-2"  # survivor

        for i in range(5):
            self.append(ledger, clock, parties, "oil-mfg", b"new-%d" % i)
        ledger.anchor_time()
        clock.advance(2.0)
        ledger.collect_time_evidence()

        tsa_keys = {f"tsa-{i}": tsa_pool.public_key_of(f"tsa-{i}") for i in range(3)}
        report = dasein_audit(ledger.export_view(), tsa_keys=tsa_keys)
        assert report.passed


class TestTSAFailover:
    def test_anchoring_survives_tsa_outage(self):
        clock = SimClock()
        authorities = [TimeStampAuthority(f"t{i}", clock) for i in range(3)]
        pool = TSAPool(authorities)
        tledger = TimeLedger(clock, pool, finalize_interval=1.0, admission_tolerance=2.0)
        ledger = Ledger(LedgerConfig(uri="ledger://ha"), clock=clock)
        ledger.attach_time_ledger(tledger)
        user = KeyPair.generate(seed="ha-user")
        ledger.registry.register("u", Role.USER, user.public)

        authorities[0].available = False  # one authority down
        request = ClientRequest.build(
            "ledger://ha", "u", b"x", client_timestamp=clock.now()
        ).signed_by(user)
        ledger.append(request)
        ledger.anchor_time()
        clock.advance(1.5)
        assert ledger.collect_time_evidence() == 1


class TestDurableLedger:
    def test_ledger_over_file_stream(self, tmp_path):
        from repro.storage import FileStream

        clock = SimClock()
        stream = FileStream(tmp_path / "journals.stream")
        ledger = Ledger(
            LedgerConfig(uri="ledger://disk", block_size=2),
            clock=clock,
            journal_stream=stream,
        )
        user = KeyPair.generate(seed="disk-user")
        ledger.registry.register("u", Role.USER, user.public)
        for i in range(6):
            request = ClientRequest.build(
                "ledger://disk", "u", b"record-%d" % i, client_timestamp=clock.now()
            ).signed_by(user)
            ledger.append(request)
        for jsn in range(ledger.size):
            journal = ledger.get_journal(jsn)
            assert ledger.verify_journal(journal)
        stream.close()
        # Reopen the stream: the raw journals survive the process.
        with FileStream(tmp_path / "journals.stream") as reopened:
            assert len(reopened) == 7  # genesis + 6
