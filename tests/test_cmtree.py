"""CM-Tree: two-layer insertion and §IV-C clue-oriented verification."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import leaf_hash
from repro.merkle.cmtree import CMTree, decode_clue_value, encode_clue_value


def build_tree(entries_per_clue: dict[str, int]) -> tuple[CMTree, dict[str, list[bytes]]]:
    tree = CMTree()
    digests: dict[str, list[bytes]] = {clue: [] for clue in entries_per_clue}
    # Interleave insertions across clues, as real traffic would.
    remaining = dict(entries_per_clue)
    index = 0
    while any(remaining.values()):
        for clue in sorted(remaining):
            if remaining[clue]:
                digest = leaf_hash(f"{clue}:{index}".encode())
                version = tree.add(clue, digest)
                assert version == len(digests[clue])
                digests[clue].append(digest)
                remaining[clue] -= 1
                index += 1
    return tree, digests


class TestInsertion:
    def test_versions_are_sequential_per_clue(self):
        tree, digests = build_tree({"a": 3, "b": 5})
        assert tree.entry_count("a") == 3
        assert tree.entry_count("b") == 5
        assert tree.entry_count("unknown") == 0

    def test_root_changes_per_insert(self):
        tree = CMTree()
        roots = set()
        for i in range(10):
            tree.add("clue", leaf_hash(b"%d" % i))
            roots.add(tree.root)
        assert len(roots) == 10

    def test_entry_digest_retrieval(self):
        tree, digests = build_tree({"x": 4})
        for version, digest in enumerate(digests["x"]):
            assert tree.entry_digest("x", version) == digest

    def test_clue_listing(self):
        tree, _digests = build_tree({"b": 1, "a": 1, "c": 2})
        assert tree.clues() == ["a", "b", "c"]

    def test_unknown_clue_raises(self):
        tree = CMTree()
        with pytest.raises(KeyError):
            tree.prove_clue("ghost")


class TestClueValueEncoding:
    def test_round_trip(self):
        frontier = [leaf_hash(b"p1"), leaf_hash(b"p2")]
        size, decoded = decode_clue_value(encode_clue_value(3, frontier))
        assert size == 3 and decoded == frontier


class TestClueVerification:
    @pytest.fixture()
    def loaded(self):
        return build_tree({"DCI001": 8, "DCI002": 3, "DCI003": 13})

    def test_entire_clue_verifies(self, loaded):
        tree, digests = loaded
        for clue, ds in digests.items():
            proof = tree.prove_clue(clue)
            leaf_map = dict(enumerate(ds))
            assert proof.verify(leaf_map, tree.root), clue

    def test_version_range_verifies(self, loaded):
        tree, digests = loaded
        proof = tree.prove_clue("DCI003", 4, 9)
        leaf_map = {v: digests["DCI003"][v] for v in range(4, 9)}
        assert proof.verify(leaf_map, tree.root)

    def test_invalid_range_rejected(self, loaded):
        tree, _digests = loaded
        with pytest.raises(IndexError):
            tree.prove_clue("DCI002", 0, 9)
        with pytest.raises(IndexError):
            tree.prove_clue("DCI002", 2, 2)

    def test_tampered_digest_fails(self, loaded):
        tree, digests = loaded
        proof = tree.prove_clue("DCI001")
        leaf_map = dict(enumerate(digests["DCI001"]))
        leaf_map[3] = leaf_hash(b"tampered")
        assert not proof.verify(leaf_map, tree.root)

    def test_missing_version_fails(self, loaded):
        # Completeness: omitting any record fails the whole verification.
        tree, digests = loaded
        proof = tree.prove_clue("DCI001")
        leaf_map = dict(enumerate(digests["DCI001"]))
        del leaf_map[5]
        assert not proof.verify(leaf_map, tree.root)

    def test_wrong_cm_tree1_root_fails(self, loaded):
        tree, digests = loaded
        proof = tree.prove_clue("DCI002")
        leaf_map = dict(enumerate(digests["DCI002"]))
        assert not proof.verify(leaf_map, leaf_hash(b"other root"))

    def test_forged_entry_count_fails(self, loaded):
        # An LSP hiding lineage records by lying about the count must fail:
        # the count is committed inside CM-Tree1's value.
        tree, digests = loaded
        proof = tree.prove_clue("DCI002")
        forged = dataclasses.replace(
            proof,
            entry_count=2,
            version_end=2,
        )
        leaf_map = {v: digests["DCI002"][v] for v in range(2)}
        assert not forged.verify(leaf_map, tree.root)

    def test_substituted_clue_value_fails(self, loaded):
        tree, digests = loaded
        proof = tree.prove_clue("DCI002")
        other_value = encode_clue_value(3, [leaf_hash(b"fake peak")])
        forged = dataclasses.replace(proof, clue_value=other_value)
        leaf_map = dict(enumerate(digests["DCI002"]))
        assert not forged.verify(leaf_map, tree.root)

    def test_proof_for_wrong_clue_fails(self, loaded):
        tree, digests = loaded
        proof = tree.prove_clue("DCI002")
        forged = dataclasses.replace(proof, clue="DCI001")
        leaf_map = dict(enumerate(digests["DCI002"]))
        assert not forged.verify(leaf_map, tree.root)

    def test_server_side_verification(self, loaded):
        tree, digests = loaded
        leaf_map = dict(enumerate(digests["DCI001"]))
        assert tree.verify_clue_server("DCI001", leaf_map)
        leaf_map[0] = leaf_hash(b"bad")
        assert not tree.verify_clue_server("DCI001", leaf_map)
        assert not tree.verify_clue_server("ghost", {})

    def test_historical_root_still_verifies_old_state(self, loaded):
        tree, digests = loaded
        old_root = tree.root
        old_count = tree.entry_count("DCI001")
        proof = tree.prove_clue("DCI001")
        tree.add("DCI001", leaf_hash(b"new entry"))
        # The proof taken before the insert verifies against the old root
        # (CM-Tree1 snapshots per block version) but not the new one.
        leaf_map = {v: digests["DCI001"][v] for v in range(old_count)}
        assert proof.verify(leaf_map, old_root)
        assert not proof.verify(leaf_map, tree.root)


class TestSnapshots:
    def test_clue_snapshots_rebuild_values(self):
        tree, _digests = build_tree({"a": 5, "b": 2})
        for clue, size, peaks in tree.clue_snapshots():
            assert size == tree.entry_count(clue)
            value = encode_clue_value(size, list(peaks))
            from repro.crypto.hashing import clue_key_hash

            assert tree._mpt.get(clue_key_hash(clue)) == value

    def test_clue_snapshot_at_historical_size(self):
        tree = CMTree()
        digests = [leaf_hash(b"%d" % i) for i in range(8)]
        for d in digests:
            tree.add("c", d)
        clue, size, peaks = tree.clue_snapshot_at("c", 4)
        from repro.merkle.shrubs import FrontierAccumulator

        resumed = FrontierAccumulator(size, list(peaks))
        for d in digests[4:]:
            resumed.append_leaf(d)
        from repro.crypto.hashing import clue_key_hash

        full = tree._accumulators[clue_key_hash("c")]
        assert resumed.root() == full.root()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=40), st.data())
def test_any_range_verifies_property(count, data):
    tree = CMTree()
    digests = [leaf_hash(b"e%d" % i) for i in range(count)]
    for d in digests:
        tree.add("clue", d)
    start = data.draw(st.integers(min_value=0, max_value=count - 1))
    end = data.draw(st.integers(min_value=start + 1, max_value=count))
    proof = tree.prove_clue("clue", start, end)
    leaf_map = {v: digests[v] for v in range(start, end)}
    assert proof.verify(leaf_map, tree.root)
    # Shifting the range by one without regenerating the proof must fail.
    if end < count:
        shifted = {v + 1: digests[v + 1] for v in range(start, end)}
        assert not proof.verify(shifted, tree.root)
