"""Audit fuzzing: random tampering anywhere in an exported view must fail.

The §V audit's promise is a conjunction over *everything*: any bit an
adversary flips in journal bytes, block headers, or retained hashes must
surface as a failed sub-proof.  These property tests drive that with
hypothesis-chosen tamper locations.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import dasein_audit

from conftest import Deployment


@pytest.fixture(scope="module")
def frozen_deployment():
    deployment = Deployment()
    deployment.populate(count=16, anchor_every=5)
    return deployment


def fresh_view(deployment):
    return deployment.ledger.export_view()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_any_journal_byte_flip_fails_audit(frozen_deployment, data):
    deployment = frozen_deployment
    view = fresh_view(deployment)
    live = [i for i, e in enumerate(view.entries) if e.data is not None]
    index = data.draw(st.sampled_from(live))
    entry = view.entries[index]
    position = data.draw(st.integers(min_value=0, max_value=len(entry.data) - 1))
    mutated = bytearray(entry.data)
    mutated[position] ^= data.draw(st.integers(min_value=1, max_value=255))
    view.entries[index] = dataclasses.replace(entry, data=bytes(mutated))
    report = dasein_audit(view, tsa_keys=deployment.tsa_keys)
    assert not report.passed


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_any_retained_hash_flip_fails_audit(frozen_deployment, data):
    deployment = frozen_deployment
    view = fresh_view(deployment)
    index = data.draw(st.integers(min_value=0, max_value=len(view.entries) - 1))
    entry = view.entries[index]
    position = data.draw(st.integers(min_value=0, max_value=31))
    mutated = bytearray(entry.retained_hash)
    mutated[position] ^= 0x01
    view.entries[index] = dataclasses.replace(entry, retained_hash=bytes(mutated))
    report = dasein_audit(view, tsa_keys=deployment.tsa_keys)
    assert not report.passed


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_any_block_field_tamper_fails_audit(frozen_deployment, data):
    deployment = frozen_deployment
    view = fresh_view(deployment)
    index = data.draw(st.integers(min_value=0, max_value=len(view.blocks) - 1))
    block = view.blocks[index]
    field_name = data.draw(
        st.sampled_from(["previous_hash", "journal_root", "state_root"])
    )
    original = getattr(block, field_name)
    mutated = bytes([original[0] ^ 1]) + original[1:]
    view.blocks[index] = dataclasses.replace(block, **{field_name: mutated})
    report = dasein_audit(view, tsa_keys=deployment.tsa_keys)
    assert not report.passed


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_journal_reorder_fails_audit(frozen_deployment, data):
    deployment = frozen_deployment
    view = fresh_view(deployment)
    count = len(view.entries)
    a = data.draw(st.integers(min_value=0, max_value=count - 2))
    b = data.draw(st.integers(min_value=a + 1, max_value=count - 1))
    view.entries[a], view.entries[b] = view.entries[b], view.entries[a]
    report = dasein_audit(view, tsa_keys=deployment.tsa_keys)
    assert not report.passed


def test_untouched_view_still_passes(frozen_deployment):
    """Control: the fixture ledger itself is honest."""
    report = dasein_audit(
        fresh_view(frozen_deployment), tsa_keys=frozen_deployment.tsa_keys
    )
    assert report.passed
