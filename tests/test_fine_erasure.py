"""Fine-grained purge erasure: "all left nodes on this path can be erased"."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import leaf_hash
from repro.merkle.fam import FamAccumulator
from repro.merkle.shrubs import ShrubsAccumulator


def digests(n):
    return [leaf_hash(i.to_bytes(4, "big")) for i in range(n)]


class TestShrubsErasePrefix:
    def test_root_unchanged(self):
        acc = ShrubsAccumulator()
        ds = digests(25)
        acc.extend(ds)
        root = acc.root()
        acc.erase_prefix(13)
        assert acc.root() == root

    def test_retained_leaves_still_prove(self):
        acc = ShrubsAccumulator()
        ds = digests(25)
        acc.extend(ds)
        acc.erase_prefix(13)
        for i in range(13, 25):
            proof = acc.prove(i)
            assert proof.verify(ds[i], acc.root()), i

    def test_erased_leaves_unprovable(self):
        acc = ShrubsAccumulator()
        ds = digests(25)
        acc.extend(ds)
        acc.erase_prefix(13)
        with pytest.raises(KeyError):
            acc.leaf(3)
        with pytest.raises(KeyError):
            acc.prove(3)

    def test_appends_continue_after_erasure(self):
        acc = ShrubsAccumulator()
        reference = ShrubsAccumulator()
        ds = digests(20)
        acc.extend(ds)
        reference.extend(ds)
        acc.erase_prefix(11)
        more = [leaf_hash(b"more-%d" % i) for i in range(30)]
        for digest in more:
            acc.append_leaf(digest)
            reference.append_leaf(digest)
            assert acc.root() == reference.root()

    def test_storage_reclaimed(self):
        acc = ShrubsAccumulator()
        acc.extend(digests(64))
        before = acc.num_nodes()
        erased = acc.erase_prefix(48)
        assert erased > 0
        assert acc.num_nodes() == before - erased
        assert acc.num_nodes() < before // 2  # most of the prefix is gone

    def test_erase_is_idempotent_and_monotone(self):
        acc = ShrubsAccumulator()
        acc.extend(digests(32))
        assert acc.erase_prefix(10) > 0
        assert acc.erase_prefix(10) == 0
        second = acc.erase_prefix(20)  # extend the erased region
        assert second > 0

    def test_bounds(self):
        acc = ShrubsAccumulator()
        acc.extend(digests(4))
        assert acc.erase_prefix(0) == 0
        with pytest.raises(ValueError):
            acc.erase_prefix(5)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_erasure_property(self, data):
        n = data.draw(st.integers(min_value=2, max_value=80))
        cut = data.draw(st.integers(min_value=1, max_value=n - 1))
        acc = ShrubsAccumulator()
        ds = digests(n)
        acc.extend(ds)
        root = acc.root()
        acc.erase_prefix(cut)
        assert acc.root() == root
        # Every retained leaf still proves; batch over the suffix too.
        for i in range(cut, n):
            assert acc.prove(i).verify(ds[i], root)
        batch = acc.prove_batch(list(range(cut, n)))
        assert ShrubsAccumulator.verify_batch(
            {i: ds[i] for i in range(cut, n)}, batch, root
        )


class TestFamFineErasure:
    def test_within_epoch_erasure(self):
        fam = FamAccumulator(3)  # capacity 8
        ds = digests(20)
        for d in ds:
            fam.append(d)
        root = fam.current_root()
        # Purge up to jsn 12 (inside epoch 1): epoch 0 fully erased, the
        # purge epoch loses its left nodes.
        erased = fam.erase_up_to(12, within_epoch=True)
        assert erased > 0
        assert fam.current_root() == root
        # Retained journals still provable (anchored path).
        for jsn in range(12, 20):
            proof = fam.get_proof(jsn, anchored=True)
            assert proof.epoch_proof.computed_root(ds[jsn]) is not None

    def test_purged_journal_digests_gone(self):
        fam = FamAccumulator(3)
        ds = digests(20)
        for d in ds:
            fam.append(d)
        fam.erase_up_to(12, within_epoch=True)
        epoch_12, slot_12 = fam.locate(12)
        epoch_9, _ = fam.locate(9)
        if epoch_9 == epoch_12:  # same epoch, before the purge slot
            with pytest.raises(KeyError):
                fam.leaf_digest(9)

    def test_coarse_mode_keeps_purge_epoch_whole(self):
        fam = FamAccumulator(3)
        ds = digests(20)
        for d in ds:
            fam.append(d)
        fam.erase_up_to(12, within_epoch=False)
        epoch_index, slot = fam.locate(12)
        if slot > 0:
            # Journals just before the purge point in the same epoch keep
            # their digests under the coarse option.
            same_epoch_jsn = fam.jsn_of(epoch_index, max(slot - 1, 1))
            assert len(fam.leaf_digest(same_epoch_jsn)) == 32
