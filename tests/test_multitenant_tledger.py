"""Multi-tenant T-Ledger: many ledgers sharing one public time notary.

The T-Ledger is "a public TSA notary anchoring service for all ledgers"
(§III-B2) — one Δτ-periodic TSA finalization covers digests from every
registered ledger.  These tests drive several ledgers against one T-Ledger
and check isolation, amortisation, and that each ledger's audit stands on
the shared evidence.
"""

import pytest

from repro.core import ClientRequest, Ledger, LedgerConfig, dasein_audit
from repro.crypto import KeyPair, Role
from repro.timeauth import SimClock, TimeLedger, TimeStampAuthority


@pytest.fixture()
def shared_world():
    clock = SimClock()
    tsa = TimeStampAuthority("shared-tsa", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    ledgers = {}
    users = {}
    for name in ("tenant-a", "tenant-b", "tenant-c"):
        ledger = Ledger(
            LedgerConfig(uri=f"ledger://{name}", fractal_height=3, block_size=4),
            clock=clock,
        )
        ledger.attach_time_ledger(tledger)
        user = KeyPair.generate(seed=f"user-{name}")
        ledger.registry.register("u", Role.USER, user.public)
        ledgers[name] = ledger
        users[name] = user
    return clock, tsa, tledger, ledgers, users


def drive(clock, ledgers, users, rounds=6):
    for round_number in range(rounds):
        for name, ledger in ledgers.items():
            request = ClientRequest.build(
                ledger.config.uri, "u", b"%s r%d" % (name.encode(), round_number),
                nonce=bytes([round_number]), client_timestamp=clock.now(),
            ).signed_by(users[name])
            ledger.append(request)
            ledger.anchor_time()
            clock.advance(0.11)
    clock.advance(2.0)
    for ledger in ledgers.values():
        ledger.collect_time_evidence()
        ledger.commit_block()


def test_one_tsa_serves_all_tenants(shared_world):
    clock, tsa, tledger, ledgers, users = shared_world
    drive(clock, ledgers, users)
    total_anchors = sum(len(l.time_journals) for l in ledgers.values())
    assert total_anchors == 18  # 3 tenants x 6 rounds
    # TSA stamps are per-finalization, shared by all tenants' submissions.
    assert tsa.stamps_issued < total_anchors
    assert tledger.size == total_anchors


def test_every_tenant_audits_independently(shared_world):
    clock, tsa, tledger, ledgers, users = shared_world
    drive(clock, ledgers, users)
    for name, ledger in ledgers.items():
        report = dasein_audit(
            ledger.export_view(), tsa_keys={"shared-tsa": tsa.public_key}
        )
        assert report.passed, (name, report.failures())


def test_tenant_evidence_isolated(shared_world):
    """One tenant's evidence cannot stand in for another's anchor."""
    clock, tsa, tledger, ledgers, users = shared_world
    drive(clock, ledgers, users)
    ledger_a = ledgers["tenant-a"]
    ledger_b = ledgers["tenant-b"]
    jsn_a = ledger_a.time_journals[0]
    jsn_b = ledger_b.time_journals[0]
    evidence_b = ledger_b.time_evidence_for(jsn_b)
    # Graft tenant-b's evidence onto tenant-a's view: the anchored-root
    # cross-check in the verifier must reject it.
    import dataclasses

    view = ledger_a.export_view()
    grafted = dict(view.time_evidence)
    grafted[jsn_a] = evidence_b
    forged_view = dataclasses.replace(view, time_evidence=grafted)
    from repro.core import DaseinVerifier

    verifier = DaseinVerifier(forged_view, tsa_keys={"shared-tsa": tsa.public_key})
    _bound, valid = verifier.verify_when(1)
    assert not valid


def test_tenant_ledger_ids_recorded(shared_world):
    clock, _tsa, tledger, ledgers, users = shared_world
    drive(clock, ledgers, users, rounds=2)
    recorded = {tledger.entry(seq).ledger_id for seq in range(tledger.size)}
    assert recorded == {f"ledger://tenant-{x}" for x in "abc"}
