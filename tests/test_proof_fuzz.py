"""Structural proof fuzzing: mutated proof objects must never verify.

Complements the wire-level fuzz in test_proof_serialization: here the
mutations are applied to the *decoded* proof structures (as a malicious
server would), covering MPT proofs, batch proofs, and fam proofs.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import leaf_hash
from repro.merkle.fam import FamAccumulator
from repro.merkle.mpt import MPT
from repro.merkle.proofs import PathStep
from repro.merkle.shrubs import ShrubsAccumulator


@pytest.fixture(scope="module")
def mpt_world():
    trie = MPT()
    contents = {b"key-%02d" % i: b"value-%02d" % i for i in range(40)}
    for key, value in contents.items():
        trie.put(key, value)
    return trie, contents


class TestMPTProofFuzz:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_node_byte_flip_fails(self, mpt_world, data):
        trie, contents = mpt_world
        key = data.draw(st.sampled_from(sorted(contents)))
        proof = trie.prove(key)
        node_index = data.draw(st.integers(min_value=0, max_value=len(proof.nodes) - 1))
        node = proof.nodes[node_index]
        position = data.draw(st.integers(min_value=0, max_value=len(node) - 1))
        mutated_node = bytearray(node)
        mutated_node[position] ^= data.draw(st.integers(min_value=1, max_value=255))
        mutated_nodes = list(proof.nodes)
        mutated_nodes[node_index] = bytes(mutated_node)
        forged = dataclasses.replace(proof, nodes=mutated_nodes)
        assert not forged.verify(trie.root)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_key_substitution_fails(self, mpt_world, data):
        trie, contents = mpt_world
        keys = sorted(contents)
        key = data.draw(st.sampled_from(keys))
        other = data.draw(st.sampled_from(keys))
        if key == other:
            return
        proof = trie.prove(key)
        forged = dataclasses.replace(proof, key=other)
        assert not forged.verify(trie.root)


class TestMembershipProofFuzz:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_structural_mutations_fail(self, data):
        n = data.draw(st.integers(min_value=2, max_value=64))
        acc = ShrubsAccumulator()
        digests = [leaf_hash(b"%d" % i) for i in range(n)]
        acc.extend(digests)
        index = data.draw(st.integers(min_value=0, max_value=n - 1))
        proof = acc.prove(index)
        root = acc.root()
        mutation = data.draw(st.sampled_from(["index", "flip_step", "drop_step", "flip_side"]))
        # Note: tree_size is deliberately NOT fuzzed here — the bagged root
        # does not bind the leaf count (see MembershipProof docstring), so a
        # size-metadata mutation can legitimately still verify.  The layers
        # where counts matter bind them explicitly and are tested there
        # (test_cmtree forged-entry-count, test_timeauth tampered evidence).
        if mutation == "index":
            forged = dataclasses.replace(proof, leaf_index=(index + 1) % n)
            if (index + 1) % n == index:
                return
        elif mutation == "flip_step" and proof.path:
            step_index = data.draw(st.integers(min_value=0, max_value=len(proof.path) - 1))
            step = proof.path[step_index]
            new_path = list(proof.path)
            new_path[step_index] = PathStep(leaf_hash(b"evil"), step.sibling_on_left)
            forged = dataclasses.replace(proof, path=new_path)
        elif mutation == "drop_step" and proof.path:
            forged = dataclasses.replace(proof, path=proof.path[:-1])
        elif mutation == "flip_side" and proof.path:
            step = proof.path[0]
            new_path = [PathStep(step.digest, not step.sibling_on_left)] + list(proof.path[1:])
            forged = dataclasses.replace(proof, path=new_path)
        else:
            return
        # A mutated proof may accidentally become a *valid proof of a
        # different leaf digest*, but never of ours against our root.
        assert not forged.verify(digests[index], root) or forged == proof


class TestFamProofFuzz:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_link_chain_mutations_fail(self, data):
        fam = FamAccumulator(2)
        digests = [leaf_hash(b"j%d" % i) for i in range(30)]
        for digest in digests:
            fam.append(digest)
        jsn = data.draw(st.integers(min_value=0, max_value=3))  # early epoch
        proof = fam.get_proof(jsn, anchored=False)
        if not proof.link_proofs:
            return
        root = fam.current_root()
        mutation = data.draw(st.sampled_from(["drop_link", "swap_links", "wrong_leaf"]))
        if mutation == "drop_link":
            forged = dataclasses.replace(proof, link_proofs=proof.link_proofs[:-1])
        elif mutation == "swap_links" and len(proof.link_proofs) >= 2:
            links = list(reversed(proof.link_proofs))
            forged = dataclasses.replace(proof, link_proofs=links)
        elif mutation == "wrong_leaf":
            bad_link = dataclasses.replace(proof.link_proofs[0], leaf_index=1)
            forged = dataclasses.replace(
                proof, link_proofs=[bad_link] + list(proof.link_proofs[1:])
            )
        else:
            return
        assert not FamAccumulator.verify_full(digests[jsn], forged, root) or forged == proof
