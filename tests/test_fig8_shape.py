"""Figure-8 shape regression: the asymptotics, asserted with wide margins.

Wall-clock shape tests are inherently noisy; these assert only the robust,
order-of-magnitude facts EXPERIMENTS.md reports, with generous slack.
"""

import pytest

from repro.bench import fig8


@pytest.fixture(scope="module")
def result():
    return fig8.run(quick=True)


def test_all_models_present(result):
    expected = {f"fam-{h}" for h in (2, 4, 6, 8, 10)} | {"tim", "bamt"}
    assert set(result.append_tps) == expected
    assert set(result.proof_tps) == expected


def test_tim_proof_cost_grows_structurally():
    # Deterministic form of the decline: tim's proof paths keep lengthening
    # with ledger size (wall-clock TPS follows, but noisily).
    small = fig8.build_tim(1 << 8)
    large = fig8.build_tim(1 << 14)
    assert len(large.get_proof(0).path) > len(small.get_proof(0).path)


def test_tim_proof_throughput_does_not_grow(result):
    # The soft wall-clock counterpart, with a wide noise band.
    series = result.proof_tps["tim"]
    smallest, largest = min(series), max(series)
    assert series[largest] < 1.3 * series[smallest]


def test_fam_proof_throughput_stable(result):
    # Once the epoch threshold is crossed, fam verification is flat: allow
    # a generous 2x noise band across a 64x size range.
    series = result.proof_tps["fam-2"]
    values = list(series.values())
    assert max(values) < 2.0 * min(values)


def test_smaller_delta_verifies_faster(result):
    largest = max(result.sizes)
    assert result.proof_tps["fam-2"][largest] > result.proof_tps["fam-10"][largest]


def test_fam_beats_tim_at_scale(result):
    largest = max(result.sizes)
    assert result.proof_tps["fam-2"][largest] > 1.5 * result.proof_tps["tim"][largest]
    assert result.append_tps["fam-2"][largest] > result.append_tps["tim"][largest]


def test_bamt_slowest_verifier(result):
    # bAMT pays both an in-batch path and an accumulator path.
    largest = max(result.sizes)
    assert result.proof_tps["bamt"][largest] < result.proof_tps["tim"][largest]


def test_render_contains_both_figures(result):
    text = fig8.render(result)
    assert "Figure 8(a)" in text and "Figure 8(b)" in text
