"""Purge and occult: prerequisites, protocols, and post-mutation verifiability."""

import dataclasses

import pytest

from repro.core import (
    JournalOccultedError,
    JournalPurgedError,
    JournalType,
    OccultMode,
)
from repro.core.errors import MutationError


def do_occult(deployment, target, mode=OccultMode.SYNC, signers=("dba", "regulator")):
    record = deployment.ledger.prepare_occult(target, mode, reason="test")
    approvals = deployment.sign_approval(signers, record.approval_digest())
    return record, deployment.ledger.execute_occult(record, approvals)


def do_purge(deployment, point, **kwargs):
    pseudo, record = deployment.ledger.prepare_purge(point, **kwargs)
    signers = list(deployment.ledger.purge_required_signers(point))
    approvals = deployment.sign_approval(signers, record.approval_digest())
    return pseudo, record, deployment.ledger.execute_purge(pseudo, record, approvals)


class TestOccult:
    def test_sync_occult_hides_journal(self, populated):
        deployment, _receipts = populated
        _record, receipt = do_occult(deployment, 3)
        journal = deployment.ledger.get_journal(receipt.jsn)
        assert journal.journal_type is JournalType.OCCULT
        with pytest.raises(JournalOccultedError):
            deployment.ledger.get_journal(3)
        assert deployment.ledger.is_occulted(3)

    def test_retained_hash_survives(self, populated):
        deployment, _receipts = populated
        original_hash = deployment.ledger.get_journal(3).tx_hash()
        do_occult(deployment, 3)
        assert deployment.ledger.retained_hash(3) == original_hash

    def test_sync_occult_erases_payload_immediately(self, populated):
        deployment, _receipts = populated
        do_occult(deployment, 3, OccultMode.SYNC)
        assert deployment.ledger._stream.is_erased(3)

    def test_async_occult_defers_erasure(self, populated):
        deployment, _receipts = populated
        do_occult(deployment, 3, OccultMode.ASYNC)
        # Logically deleted at once...
        with pytest.raises(JournalOccultedError):
            deployment.ledger.get_journal(3)
        assert not deployment.ledger._stream.is_erased(3)
        assert deployment.ledger.pending_erasures == 1
        # ...physically erased by the idle-batch reorganisation.
        assert deployment.ledger.reorganize() == 1
        assert deployment.ledger._stream.is_erased(3)
        assert deployment.ledger.pending_erasures == 0

    def test_missing_regulator_signature_rejected(self, populated):
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(3)
        approvals = deployment.sign_approval(["dba"], record.approval_digest())
        with pytest.raises(MutationError, match="Prerequisite 2"):
            deployment.ledger.execute_occult(record, approvals)

    def test_missing_dba_signature_rejected(self, populated):
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(3)
        approvals = deployment.sign_approval(["regulator"], record.approval_digest())
        with pytest.raises(MutationError, match="Prerequisite 2"):
            deployment.ledger.execute_occult(record, approvals)

    def test_signatures_over_wrong_record_rejected(self, populated):
        deployment, _receipts = populated
        record = deployment.ledger.prepare_occult(3)
        other = deployment.ledger.prepare_occult(4)
        approvals = deployment.sign_approval(
            ["dba", "regulator"], other.approval_digest()
        )
        with pytest.raises(MutationError, match="different occult record"):
            deployment.ledger.execute_occult(record, approvals)

    def test_double_occult_rejected(self, populated):
        deployment, _receipts = populated
        do_occult(deployment, 3)
        with pytest.raises(MutationError, match="already occulted"):
            deployment.ledger.prepare_occult(3)

    def test_system_journals_not_occultable(self, populated):
        deployment, _receipts = populated
        with pytest.raises(MutationError, match="only normal journals"):
            deployment.ledger.prepare_occult(0)  # genesis

    def test_occulted_journal_existence_still_verifiable(self, populated):
        # Protocol 2: the retained hash keeps the accumulator chain intact.
        deployment, _receipts = populated
        retained = deployment.ledger.get_journal(3).tx_hash()
        do_occult(deployment, 3)
        from repro.merkle.fam import FamAccumulator

        proof = deployment.ledger.get_proof(3, anchored=False)
        assert FamAccumulator.verify_full(
            retained, proof, deployment.ledger.current_root()
        )

    def test_subsequent_journals_unaffected(self, populated):
        deployment, _receipts = populated
        do_occult(deployment, 3)
        journal = deployment.ledger.get_journal(4)
        assert deployment.ledger.verify_journal(journal)


class TestPurge:
    def test_purge_erases_prefix(self, populated):
        deployment, _receipts = populated
        do_purge(deployment, 8)
        for jsn in range(8):
            with pytest.raises((JournalPurgedError, JournalOccultedError)):
                deployment.ledger.get_journal(jsn)
        assert deployment.ledger.genesis_start == 8

    def test_purge_point_must_align_with_block(self, populated):
        deployment, _receipts = populated
        with pytest.raises(MutationError, match="block boundary"):
            deployment.ledger.prepare_purge(7)

    def test_purge_requires_all_owner_signatures(self, populated):
        deployment, _receipts = populated
        pseudo, record = deployment.ledger.prepare_purge(8)
        signers = [s for s in deployment.ledger.purge_required_signers(8) if s != "alice"]
        approvals = deployment.sign_approval(signers, record.approval_digest())
        with pytest.raises(MutationError, match="Prerequisite 1"):
            deployment.ledger.execute_purge(pseudo, record, approvals)

    def test_pseudo_genesis_snapshots_purge_point_state(self, populated):
        deployment, _receipts = populated
        expected_root = deployment.ledger._fam.root_at(8)
        boundary_block = next(b for b in deployment.ledger.blocks if b.end_jsn == 8)
        pseudo, _record, _receipt = do_purge(deployment, 8)
        assert pseudo.purge_point == 8
        assert pseudo.fam_root == expected_root
        assert pseudo.state_root == boundary_block.state_root

    def test_purge_journal_recorded_and_linked(self, populated):
        deployment, _receipts = populated
        pseudo, record, receipt = do_purge(deployment, 8)
        journal = deployment.ledger.get_journal(receipt.jsn)
        assert journal.journal_type is JournalType.PURGE
        from repro.core.purge import PurgeRecord

        stored = PurgeRecord.from_bytes(journal.payload)
        assert stored.pseudo_genesis_hash == pseudo.hash()  # the double link

    def test_record_pseudo_mismatch_rejected(self, populated):
        deployment, _receipts = populated
        pseudo, record = deployment.ledger.prepare_purge(8)
        forged = dataclasses.replace(record, purge_point=4)
        signers = list(deployment.ledger.purge_required_signers(8))
        approvals = deployment.sign_approval(signers, forged.approval_digest())
        with pytest.raises(MutationError, match="does not match"):
            deployment.ledger.execute_purge(pseudo, forged, approvals)

    def test_survivors_remain_retrievable(self, populated):
        deployment, _receipts = populated
        survivor_payload = deployment.ledger.get_journal(5).payload
        do_purge(deployment, 8, survivors=(5,))
        journal = deployment.ledger.get_journal(5)  # from the survival stream
        assert journal.payload == survivor_payload
        with pytest.raises(JournalPurgedError):
            deployment.ledger.get_journal(6)

    def test_survivor_outside_range_rejected(self, populated):
        deployment, _receipts = populated
        with pytest.raises(MutationError, match="not in the purged range"):
            deployment.ledger.prepare_purge(8, survivors=(9,))

    def test_post_purge_journals_verify(self, populated):
        deployment, _receipts = populated
        do_purge(deployment, 8)
        for jsn in range(8, deployment.ledger.size):
            if deployment.ledger.is_occulted(jsn):
                continue
            journal = deployment.ledger.get_journal(jsn)
            assert deployment.ledger.verify_journal(journal), jsn

    def test_purge_with_fam_erasure(self, populated):
        deployment, _receipts = populated
        nodes_before = deployment.ledger._fam.num_nodes()
        do_purge(deployment, 8, erase_fam_nodes=True)
        assert deployment.ledger._fam.num_nodes() <= nodes_before
        # Current commitments unchanged: later proofs still verify.
        journal = deployment.ledger.get_journal(10)
        assert deployment.ledger.verify_journal(journal)

    def test_second_purge_after_first(self, populated):
        deployment, _receipts = populated
        do_purge(deployment, 8)
        # Append more, commit, purge again at a later boundary.
        for i in range(6):
            deployment.append("alice", b"post-%d" % i)
        deployment.ledger.commit_block()
        boundary = deployment.ledger.blocks[-1].end_jsn
        do_purge(deployment, boundary)
        assert deployment.ledger.genesis_start == boundary
        assert deployment.ledger.pseudo_genesis.purge_point == boundary

    def test_purge_point_bounds(self, populated):
        deployment, _receipts = populated
        with pytest.raises(MutationError):
            deployment.ledger.prepare_purge(0)
        with pytest.raises(MutationError):
            deployment.ledger.prepare_purge(10_000)

    def test_purge_then_occult_interplay(self, populated):
        deployment, _receipts = populated
        do_purge(deployment, 8)
        do_occult(deployment, 10)
        with pytest.raises(JournalOccultedError):
            deployment.ledger.get_journal(10)
        # Occulting inside the purged region is impossible.
        with pytest.raises(MutationError):
            deployment.ledger.prepare_occult(3)

    def test_storage_stats_reflect_mutations(self, populated):
        deployment, _receipts = populated
        do_occult(deployment, 9)
        do_purge(deployment, 8)
        stats = deployment.ledger.storage_stats()
        assert stats["occulted"] == 1
        assert stats["purged_prefix"] == 8
