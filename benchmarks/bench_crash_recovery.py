"""Crash-recovery benchmark: open-scan, replay, and torn-tail rollback.

Standalone script, same shape as ``bench_throughput.py``::

    PYTHONPATH=src python benchmarks/bench_crash_recovery.py [--quick] [--out FILE]

Three sections:

* ``open_scan`` — cold-open cost of a populated ``FileStream``: every
  record's header and payload CRC32C is verified and the offset index is
  rebuilt, so this is the integrity-checking read bandwidth of the log
  (records/sec and MB/s).
* ``recover`` — ``Ledger.recover`` replay rate on top of that scan:
  journals/sec to rebuild fam, CM-Tree, and the clue index from the raw
  journal stream, plus per-journal verification cost.
* ``torn_tail`` — time to open a stream whose final record was cut mid-
  payload (the crash case): the scan must classify the tear, truncate it,
  and leave a clean file.  Reported alongside the clean-open time so the
  rollback overhead is visible.

None of these metrics are gated by ``compare_bench.py`` (recovery is a
cold path); the report is uploaded as a CI artifact for trend-watching.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ClientRequest, Ledger, LedgerConfig  # noqa: E402
from repro.core.members import MemberRegistry  # noqa: E402
from repro.crypto import KeyPair, Role  # noqa: E402
from repro.storage.stream import FileStream  # noqa: E402
from repro.timeauth import SimClock  # noqa: E402

URI = "ledger://bench-crash-recovery"
CONFIG = LedgerConfig(uri=URI, fractal_height=10, block_size=64)
LSP = KeyPair.generate(seed="bench:lsp")
CLIENTS = ("alice", "bob", "carol")
CLUES = ("buyer:77", "seller:12", "commodity:9")
KEYS = {name: KeyPair.generate(seed=f"bench:{name}") for name in CLIENTS}


def _registry() -> MemberRegistry:
    registry = MemberRegistry()
    for name, keypair in KEYS.items():
        registry.register(name, Role.USER, keypair.public)
    return registry


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _populate(directory: str, journals: int) -> Path:
    """Build a durable file-backed ledger with `journals` batched appends."""
    path = Path(directory) / "journal.log"
    stream = FileStream(path, durable=True)
    ledger = Ledger(
        CONFIG,
        clock=SimClock(),
        registry=_registry(),
        lsp_keypair=LSP,
        journal_stream=stream,
    )
    requests = []
    for i in range(journals):
        client = CLIENTS[i % len(CLIENTS)]
        requests.append(
            ClientRequest.build(
                URI,
                client,
                payload=f"tx-{i}".encode() * 4,
                clues=CLUES,
                nonce=i.to_bytes(8, "big"),
                client_timestamp=1.0,
            ).signed_by(KEYS[client])
        )
    for start in range(0, journals, 64):
        ledger.append_batch(requests[start : start + 64])
    stream.close()
    return path


def bench_open_scan(path: Path) -> dict:
    file_bytes = os.path.getsize(path)
    with FileStream(path) as stream:
        records = len(stream)  # appended journals + the genesis record

    def open_close():
        FileStream(path).close()

    elapsed = _best_of(open_close)
    return {
        "records": records,
        "file_bytes": file_bytes,
        "open_ms": elapsed * 1e3,
        "records_per_sec": records / elapsed,
        "scan_mb_per_sec": file_bytes / elapsed / 1e6,
    }


def bench_recover(path: Path, journals: int) -> dict:
    def recover():
        stream = FileStream(path)
        try:
            Ledger.recover(CONFIG, stream, _registry(), LSP, clock=SimClock())
        finally:
            stream.close()

    elapsed = _best_of(recover)

    def verify_all():
        stream = FileStream(path)
        try:
            ledger = Ledger.recover(CONFIG, stream, _registry(), LSP, clock=SimClock())
            for jsn in range(ledger.size):
                if not ledger.verify_journal(ledger.get_journal(jsn)):
                    raise RuntimeError(f"journal {jsn} failed verification")
        finally:
            stream.close()

    verify_elapsed = _best_of(verify_all, repeats=1)
    return {
        "journals": journals,
        "recover_ms": elapsed * 1e3,
        "journals_per_sec": journals / elapsed,
        "recover_and_verify_ms": verify_elapsed * 1e3,
        "verify_us_per_journal": (verify_elapsed - elapsed) / journals * 1e6,
    }


def bench_torn_tail(path: Path, clean_open_ms: float) -> dict:
    intact = path.read_bytes()
    timings = []
    try:
        for cut in (3, 9, 30):  # mid-payload tears of varying depth
            path.write_bytes(intact[:-cut])
            start = time.perf_counter()
            stream = FileStream(path)
            elapsed = time.perf_counter() - start
            report = stream.open_report
            stream.close()
            if report.clean or report.truncated_bytes == 0:
                raise RuntimeError("torn tail was not detected")  # bench is lying
            timings.append(elapsed)
    finally:
        path.write_bytes(intact)
    rollback_ms = min(timings) * 1e3
    return {
        "tears_exercised": len(timings),
        "rollback_open_ms": rollback_ms,
        "clean_open_ms": clean_open_ms,
        "rollback_overhead_ms": rollback_ms - clean_open_ms,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smoke-test scale (CI-friendly)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_crash_recovery.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()

    journals = 64 if args.quick else 512
    with tempfile.TemporaryDirectory() as tmp:
        path = _populate(tmp, journals)
        open_report = bench_open_scan(path)
        recover_report = bench_recover(path, journals)
        torn_report = bench_torn_tail(path, open_report["open_ms"])

    report = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "quick": args.quick,
        },
        "open_scan": open_report,
        "recover": recover_report,
        "torn_tail": torn_report,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    json.dump(report, sys.stdout, indent=2)
    print()
    print(
        f"\nopen scan {open_report['scan_mb_per_sec']:.1f} MB/s, "
        f"recover {recover_report['journals_per_sec']:.0f} journals/s, "
        f"torn-tail rollback +{torn_report['rollback_overhead_ms']:.2f} ms "
        f"(report: {args.out})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
