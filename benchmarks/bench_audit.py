"""Parallel audit benchmark: 4-worker Dasein audit vs the sequential fold.

Standalone script (same conventions as ``bench_service.py``)::

    PYTHONPATH=src python benchmarks/bench_audit.py [--quick] [--out FILE]

One section, ``audit``: a deterministic single-user ledger (seeded keys,
sim clock, direct TSA anchors) is exported once, then audited repeatedly —
sequentially (``workers=0``) and on the parallel engine (``workers=4``,
fork pool where available).  The per-journal client-signature checks, the
Π1/Π2 multi-signatures, and the TSA evidence checks all ride the pool; the
replay fold overlaps the in-flight chunks.  Per paper §VI the audit is
verification-bound, so the pool's speedup is the headline number
(``parallel_speedup`` — the acceptance floor is 2x at 4 workers; enforce
with ``--min-speedup 2.0``).

Sequential and parallel rounds alternate so machine-wide drift hits both
sides alike; the reported speedup is the *median* of per-round paired
ratios.  Every parallel report is checked byte-identical to the sequential
one before any timing is trusted.

``--quick`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import _audit_workload  # noqa: E402
from repro.audit import dasein_audit  # noqa: E402


def bench_audit(journals: int, rounds: int, workers: int) -> dict:
    session, tsa_keys = _audit_workload(journals)
    view = session.ledger.export_view()

    # Warm both paths once: JIT-free Python still pays first-touch costs
    # (window tables, module imports in forked children are COW'd after).
    baseline = dasein_audit(view, tsa_keys=tsa_keys)
    assert baseline.passed, "benchmark workload must audit clean"
    parallel = dasein_audit(view, tsa_keys=tsa_keys, workers=workers)
    if parallel.canonical() != baseline.canonical():
        raise SystemExit("parallel report diverged from sequential — not benching a lie")

    seq_times, par_times, ratios = [], [], []
    for _ in range(rounds):
        start = time.perf_counter()
        report = dasein_audit(view, tsa_keys=tsa_keys)
        seq = time.perf_counter() - start
        assert report.passed

        start = time.perf_counter()
        report = dasein_audit(view, tsa_keys=tsa_keys, workers=workers)
        par = time.perf_counter() - start
        assert report.passed

        seq_times.append(seq)
        par_times.append(par)
        ratios.append(seq / par)

    seq_med = statistics.median(seq_times)
    par_med = statistics.median(par_times)
    total = len(view.entries)
    return {
        "journals": journals,
        "entries_replayed": total,
        "rounds": rounds,
        "workers": workers,
        "sequential_us_per_journal": seq_med / total * 1e6,
        "parallel4_us_per_journal": par_med / total * 1e6,
        "sequential_audit_s": seq_med,
        "parallel_audit_s": par_med,
        "parallel_speedup": statistics.median(ratios),
        "reports_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke scale")
    parser.add_argument("--journals", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless parallel_speedup meets this floor",
    )
    args = parser.parse_args(argv)

    journals = args.journals or (96 if args.quick else 480)
    rounds = args.rounds or (2 if args.quick else 3)

    report = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "quick": bool(args.quick),
        },
        "audit": bench_audit(journals, rounds, args.workers),
    }

    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        args.out.write_text(text + "\n")

    speedup = report["audit"]["parallel_speedup"]
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: parallel_speedup {speedup:.2f}x below floor "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
