"""Shared fixtures for the pytest-benchmark suites.

Expensive structures (pre-filled accumulators, ledgers, clue worlds) are
built once per session and shared across benchmarks.
"""

import pytest

from repro.bench import fig8, fig9


@pytest.fixture(scope="session")
def fam_16k():
    """fam-6 pre-filled with 16K journal digests."""
    return fig8.build_fam(6, 1 << 14)


@pytest.fixture(scope="session")
def tim_16k():
    """tim pre-filled with 16K journal digests."""
    return fig8.build_tim(1 << 14)


@pytest.fixture(scope="session")
def clue_world_8k():
    """A CM-Tree/ccMPT world with 8K journals and 50-entry forced clues."""
    return fig9.build_world(1 << 13, forced_clue_sizes=(50,) * 4 + (1000,))
