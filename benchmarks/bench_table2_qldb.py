"""Table II benchmarks — QLDB-simulator operation kernels.

Full table: ``python -m repro.bench table2``.  These time the real Merkle
work behind each QLDB operation (the modelled API/service milliseconds are
accounted, not slept)."""

import pytest

from repro.baselines.qldb import QLDBSimulator


@pytest.fixture(scope="module")
def qldb():
    simulator = QLDBSimulator()
    for i in range(200):
        simulator.insert("notary", f"doc-{i % 20}", b"x" * 1024)
    return simulator


def test_qldb_insert(benchmark, qldb):
    counter = iter(range(10**9))
    benchmark(lambda: qldb.insert("notary", f"bench-{next(counter)}", b"x" * 1024))


def test_qldb_retrieve(benchmark, qldb):
    benchmark(lambda: qldb.retrieve("notary", "doc-3"))


def test_qldb_get_revision_verify(benchmark, qldb):
    benchmark(lambda: qldb.get_revision("notary", "doc-3", 0))


def test_qldb_lineage_verify_10_versions(benchmark, qldb):
    benchmark(lambda: qldb.verify_lineage("notary", "doc-3"))
