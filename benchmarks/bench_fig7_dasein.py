"""Figure 7 benchmarks — per-factor Dasein verification kernels.

Full breakdown: ``python -m repro.bench fig7``.  These cases time the unit
work behind each bar: one *what* (fam path + payload hash), one *who*
(ECDSA verify), and one *when* (TSA token vs T-Ledger evidence).
"""

import pytest

from repro.crypto.hashing import leaf_hash, sha256
from repro.crypto.keys import KeyPair
from repro.merkle.fam import FamAccumulator
from repro.timeauth.clock import SimClock
from repro.timeauth.tledger import TimeLedger
from repro.timeauth.tsa import TimeStampAuthority


@pytest.fixture(scope="module")
def dasein_world():
    fam = FamAccumulator(8)
    payloads = [bytes([i % 256]) * 256 for i in range(512)]
    digests = [leaf_hash(p) for p in payloads]
    for digest in digests:
        fam.append(digest)
    keypair = KeyPair.generate(seed="fig7-bench")
    request_digest = sha256(payloads[100])
    signature = keypair.sign(request_digest)
    clock = SimClock()
    tsa = TimeStampAuthority("tsa", clock)
    token = tsa.stamp(fam.current_root())
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    clock.advance(0.5)
    receipt = tledger.submit("ledger", fam.current_root(), clock.now())
    clock.advance(1.0)
    evidence = tledger.get_evidence(receipt.seq)
    return {
        "fam": fam,
        "payloads": payloads,
        "digests": digests,
        "keypair": keypair,
        "request_digest": request_digest,
        "signature": signature,
        "tsa": tsa,
        "token": token,
        "evidence": evidence,
    }


def test_what_single_journal(benchmark, dasein_world):
    world = dasein_world
    fam = world["fam"]
    root = fam.current_root()

    def verify_what():
        payload = world["payloads"][100]
        digest = leaf_hash(payload)  # re-hash the payload
        proof = fam.get_proof(100, anchored=False)
        return FamAccumulator.verify_full(digest, proof, root)

    assert benchmark(verify_what)


def test_who_single_signature(benchmark, dasein_world):
    world = dasein_world

    def verify_who():
        assert sha256(world["payloads"][100]) == world["request_digest"]
        return world["keypair"].public.verify(world["request_digest"], world["signature"])

    assert benchmark(verify_who)


def test_when_tsa_token(benchmark, dasein_world):
    world = dasein_world
    result = benchmark(lambda: world["token"].verify(world["tsa"].public_key))
    assert result


def test_when_tledger_evidence(benchmark, dasein_world):
    world = dasein_world
    result = benchmark(lambda: world["evidence"].verify(world["tsa"]))
    assert result


def test_when_tledger_inclusion_only(benchmark, dasein_world):
    """The amortised part of TL-10: membership without a fresh TSA verify."""
    world = dasein_world
    evidence = world["evidence"]
    result = benchmark(
        lambda: evidence.inclusion.verify(
            evidence.entry.leaf_digest(), evidence.finalization.root
        )
    )
    assert result
