"""Table I benchmarks — storage backing for the comparison matrix.

Rendered matrix: ``python -m repro.bench table1``.  Benchmarked kernels:
the append cost of each commitment model backing the "Verify-Efficiency /
Storage Overhead" columns, at equal journal counts.
"""

import pytest

from repro.crypto.hashing import leaf_hash
from repro.merkle.bim import BimLedger
from repro.merkle.fam import FamAccumulator
from repro.merkle.tim import TimAccumulator


@pytest.fixture()
def digests():
    return iter(leaf_hash(b"t1-%d" % i) for i in range(10**9))


def test_fam_append(benchmark, digests):
    fam = FamAccumulator(6)
    for _ in range(1024):
        fam.append(next(digests))
    benchmark(lambda: fam.append(next(digests)))


def test_tim_append(benchmark, digests):
    tim = TimAccumulator()
    for _ in range(1024):
        tim.append_digest(next(digests))
    benchmark(lambda: tim.append_digest(next(digests)))


def test_bim_append(benchmark):
    bim = BimLedger(block_capacity=32)
    counter = iter(range(10**9))
    for _ in range(1024):
        bim.append(b"tx-%d" % next(counter))
    benchmark(lambda: bim.append(b"tx-%d" % next(counter)))


def test_storage_overhead_ordering(benchmark):
    """fam-with-purge keeps the least; bim headers cost the most (Table I)."""

    def build_and_count():
        count = 1024
        local = [leaf_hash(i.to_bytes(4, "big")) for i in range(count)]
        fam = FamAccumulator(5)
        tim = TimAccumulator()
        for digest in local:
            fam.append(digest)
            tim.append_digest(digest)
        fam.erase_up_to(count // 2)
        return fam.num_nodes(), tim.num_nodes()

    fam_nodes, tim_nodes = benchmark(build_and_count)
    assert fam_nodes < tim_nodes  # purge makes fam the "Lowest" row
