"""Remote server benchmark: concurrent TCP clients vs in-process group commit.

Standalone script (not a pytest-benchmark module) so CI and developers get a
one-command JSON report::

    PYTHONPATH=src python benchmarks/bench_server.py [--quick] [--out FILE]

One section, ``server``: N :class:`repro.net.RemoteLedgerClient` instances
(each its own thread, its own TCP connection, each pipelining a window of
in-flight futures with the receipt verified client-side) race pre-signed
requests through a :class:`repro.net.ServerThread`, against the same thread
fan-out driving :class:`repro.service.LedgerService` futures directly on an
identical durable file-backed ledger.  Both sides coalesce through the same
group-commit writer and pay identical crypto per journal; what the remote
side adds is framing, the socket hop, and client-side receipt verification
— ``remote_slowdown`` is the headline number, and the acceptance ceiling is
2x (enforce it with ``--max-slowdown 2.0``).

In-process and remote segments alternate round by round so system-wide
speed drift (CPU throttling, fsync latency swings) hits both sides alike;
the reported slowdown is the *median* of per-round paired ratios.

``--quick`` shrinks the workload to a smoke-test scale for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ClientRequest, Ledger, LedgerConfig  # noqa: E402
from repro.crypto import KeyPair, Role  # noqa: E402
from repro.net import RemoteLedgerClient, ServerThread  # noqa: E402
from repro.service import LedgerService, ServiceConfig  # noqa: E402
from repro.storage.stream import FileStream  # noqa: E402

URI = "ledger://bench-server"
CLIENTS = ("alice", "bob", "carol", "dan")
CLUES = ("order:41", "shipment:8")


def _make_ledger(directory: str, tag: str) -> tuple[Ledger, dict[str, KeyPair]]:
    stream = FileStream(Path(directory) / f"{tag}.log", durable=True)
    ledger = Ledger(
        LedgerConfig(uri=URI, fractal_height=10, block_size=64),
        journal_stream=stream,
    )
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"bench:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    return ledger, keys


def _requests(keys: dict[str, KeyPair], count: int, start: int) -> list[ClientRequest]:
    out = []
    for i in range(start, start + count):
        client = CLIENTS[i % len(CLIENTS)]
        out.append(
            ClientRequest.build(
                URI,
                client,
                payload=f"tx-{i}".encode(),
                clues=CLUES,
                nonce=i.to_bytes(8, "big"),
                client_timestamp=1.0,
            ).signed_by(keys[client])
        )
    return out


def _drive(submit_fns, per_thread: list[list[ClientRequest]], window: int) -> float:
    """One submitter per thread, each keeping ``window`` futures in flight."""
    errors: list[BaseException] = []

    def worker(submit, requests: list[ClientRequest]) -> None:
        try:
            inflight: deque = deque()
            for request in requests:
                inflight.append(submit(request))
                if len(inflight) >= window:
                    inflight.popleft().result(timeout=60.0)
            while inflight:
                inflight.popleft().result(timeout=60.0)
        except BaseException as exc:  # benchmark must not swallow failures
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(submit, chunk))
        for submit, chunk in zip(submit_fns, per_thread)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def bench_server(
    clients: int, per_client: int, rounds: int, warmup: int, window: int = 48
) -> dict:
    round_size = clients * per_client
    round_times: list[tuple[float, float]] = []
    with tempfile.TemporaryDirectory() as tmp:
        local_ledger, keys = _make_ledger(tmp, "local")
        remote_ledger, _ = _make_ledger(tmp, "remote")
        service_config = ServiceConfig(max_batch=clients * window, max_wait_ms=2.0)
        local_service = LedgerService(local_ledger, service_config)
        served = ServerThread(remote_ledger, service_config=service_config)
        host, port = served.address
        remote_clients = [RemoteLedgerClient(host, port) for _ in range(clients)]
        local_submits = [
            (lambda request, s=local_service: s.submit(request, timeout=60.0))
        ] * clients
        remote_submits = [client.submit for client in remote_clients]
        try:
            # Warm both paths: window tables, pubkey LRU, connection setup.
            warm = _requests(keys, warmup, start=0)
            _drive(local_submits, [warm[t::clients] for t in range(clients)], window)
            warm = _requests(keys, warmup, start=warmup)
            _drive(remote_submits, [warm[t::clients] for t in range(clients)], window)

            for index in range(rounds):
                local_work = _requests(keys, round_size, start=10_000 + index * round_size)
                chunks = [
                    local_work[t * per_client : (t + 1) * per_client]
                    for t in range(clients)
                ]
                local_elapsed = _drive(local_submits, chunks, window)

                remote_work = _requests(keys, round_size, start=50_000 + index * round_size)
                chunks = [
                    remote_work[t * per_client : (t + 1) * per_client]
                    for t in range(clients)
                ]
                remote_elapsed = _drive(remote_submits, chunks, window)
                round_times.append((local_elapsed, remote_elapsed))
            verified = sum(len(c.state.receipts) for c in remote_clients)
        finally:
            for client in remote_clients:
                client.close()
            served.close()
            local_service.close()

    total = rounds * round_size
    local_total = sum(local for local, _remote in round_times)
    remote_total = sum(remote for _local, remote in round_times)
    ratios = sorted(remote / local for local, remote in round_times)
    return {
        "clients": clients,
        "per_client": per_client,
        "window": window,
        "rounds": rounds,
        "journals_per_side": total,
        "clues_per_journal": len(CLUES),
        "inprocess_us_per_append": local_total / total * 1e6,
        "remote_us_per_append": remote_total / total * 1e6,
        "inprocess_appends_per_sec": total / local_total,
        "remote_appends_per_sec": total / remote_total,
        "remote_slowdown": ratios[len(ratios) // 2],
        "receipts_verified_client_side": verified,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smoke-test scale (CI-friendly)"
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=None,
        help="exit non-zero if remote_slowdown exceeds this factor",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_server.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    # Fail on an unwritable report path *before* minutes of benchmarking.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()

    if args.quick:
        server_report = bench_server(clients=4, per_client=16, rounds=1, warmup=16)
    else:
        server_report = bench_server(clients=4, per_client=48, rounds=3, warmup=32)

    report = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "quick": args.quick,
        },
        "server": server_report,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    json.dump(report, sys.stdout, indent=2)
    print()
    slowdown = server_report["remote_slowdown"]
    print(
        f"\nremote {slowdown:.2f}x in-process "
        f"({server_report['remote_appends_per_sec']:.0f} vs "
        f"{server_report['inprocess_appends_per_sec']:.0f} appends/sec over "
        f"{server_report['clients']} TCP clients; report: {args.out})",
        file=sys.stderr,
    )
    if args.max_slowdown is not None and slowdown > args.max_slowdown:
        print(
            f"::error::remote append overhead above ceiling: {slowdown:.2f}x > "
            f"{args.max_slowdown:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
