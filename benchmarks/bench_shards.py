"""Sharded group-commit benchmark: N fsync pipelines vs the single-writer ceiling.

Standalone script (not a pytest-benchmark module) so CI and developers get a
one-command JSON report::

    PYTHONPATH=src python benchmarks/bench_shards.py [--quick] [--out FILE]

One section, ``shards``: the identical pre-signed workload is driven through
a :class:`repro.shard.ShardedLedgerService` over a 1-shard deployment (the
single-writer baseline — one coalescing loop, one journal stream, one fsync
at a time) and over a 4-shard deployment (N writer loops whose durable
fsyncs overlap in real time).  Requests route by clue hash, the workload's
clues spread uniformly, and every shard folds under the same composite root
— so the 4-shard side does strictly more verification-relevant work (the
shard map) while paying the same per-journal crypto.

**What the knob models.**  On this container ``fsync`` returns in ~0.5ms, so
an in-process benchmark would measure the GIL, not the durable-device
ceiling the sharded deployment exists to break.  ``--fsync-us`` (default
15000) adds a modelled device-latency sleep *after* each real fsync — the
sleep releases the GIL exactly as a hardware durability wait does, and both
sides pay it identically per fsync.  15ms is ordinary spinning-disk /
network-block-storage territory; pass ``--fsync-us 0`` to measure the bare
container disk.  ``shard_speedup`` is the headline number (the acceptance
floor is 2x at 4 shards — enforce it with ``--min-speedup 2.0``).

Baseline and sharded segments alternate round by round so system-wide speed
drift hits both sides alike; the reported speedup is the *median* of
per-round paired ratios.

``--quick`` shrinks the workload to a smoke-test scale for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ClientRequest, LedgerConfig  # noqa: E402
from repro.core.ledger import JOURNAL_FILE  # noqa: E402
from repro.crypto import KeyPair, Role  # noqa: E402
from repro.service import ServiceConfig  # noqa: E402
from repro.shard import ShardedLedger, ShardedLedgerService  # noqa: E402
from repro.storage.stream import FileStream  # noqa: E402

URI = "ledger://bench-shards"
CLIENTS = ("alice", "bob", "carol", "dan")


class LatencyFileStream(FileStream):
    """A durable FileStream on a modelled slow device.

    The added sleep sits *after* the real fsync and releases the GIL, the
    same way a hardware durability wait does — which is exactly what lets
    per-shard writer loops overlap their commits.
    """

    def __init__(self, path: Path, fsync_us: float) -> None:
        self._extra_s = fsync_us / 1e6
        super().__init__(path, durable=True)

    def _fsync(self) -> None:
        super()._fsync()
        if self._extra_s > 0.0:
            time.sleep(self._extra_s)


def _make_deployment(
    directory: str, shards: int, fsync_us: float, max_batch: int
) -> tuple[ShardedLedgerService, dict[str, KeyPair]]:
    ledger = ShardedLedger(
        LedgerConfig(
            uri=URI,
            fractal_height=10,
            block_size=64,
            shards=shards,
            data_dir=f"{directory}/shards-{shards}",
        ),
        stream_factory=lambda _index, shard_dir: LatencyFileStream(
            Path(shard_dir) / JOURNAL_FILE, fsync_us
        ),
    )
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"bench:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    service = ShardedLedgerService(
        ledger, ServiceConfig(max_batch=max_batch, max_wait_ms=2.0)
    )
    return service, keys


def _requests(keys: dict[str, KeyPair], count: int, start: int) -> list[ClientRequest]:
    out = []
    for i in range(start, start + count):
        client = CLIENTS[i % len(CLIENTS)]
        out.append(
            ClientRequest.build(
                URI,
                client,
                payload=f"tx-{i}".encode(),
                # One clue per request: the route key, hash-spread uniformly.
                clues=(f"order:{i}",),
                nonce=i.to_bytes(8, "big"),
                client_timestamp=1.0,
            ).signed_by(keys[client])
        )
    return out


def _run_threads(
    service: ShardedLedgerService, chunks: list[list[ClientRequest]], window: int
) -> float:
    """Drive one request list per thread through the service; seconds elapsed."""
    errors: list[BaseException] = []

    def worker(requests: list[ClientRequest]) -> None:
        try:
            inflight: deque = deque()
            for request in requests:
                inflight.append(service.submit(request, timeout=120.0))
                if len(inflight) >= window:
                    inflight.popleft().result(timeout=120.0)
            while inflight:
                inflight.popleft().result(timeout=120.0)
        except BaseException as exc:  # benchmark must not swallow failures
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(chunk,)) for chunk in chunks]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def bench_shards(
    shards: int,
    threads: int,
    per_thread: int,
    rounds: int,
    warmup: int,
    window: int,
    fsync_us: float,
    max_batch: int,
) -> dict:
    round_size = threads * per_thread
    round_times: list[tuple[float, float]] = []
    with tempfile.TemporaryDirectory() as tmp:
        base_service, keys = _make_deployment(tmp, 1, fsync_us, max_batch)
        shard_service, _ = _make_deployment(tmp, shards, fsync_us, max_batch)
        try:
            # Warm both sides through the same fan-out: window tables,
            # pubkey LRU, per-shard writer threads, lazy structures.
            for service in (base_service, shard_service):
                warm = _requests(keys, warmup, start=0)
                _run_threads(service, [warm[t::threads] for t in range(threads)], window)

            for index in range(rounds):
                base_work = _requests(keys, round_size, start=10_000 + index * round_size)
                base_chunks = [base_work[t::threads] for t in range(threads)]
                base_elapsed = _run_threads(base_service, base_chunks, window)

                shard_work = _requests(keys, round_size, start=20_000 + index * round_size)
                shard_chunks = [shard_work[t::threads] for t in range(threads)]
                shard_elapsed = _run_threads(shard_service, shard_chunks, window)
                round_times.append((base_elapsed, shard_elapsed))
            shard_stats = shard_service.stats()
            composite_root = shard_service.ledger.composite_root().hex()
        finally:
            base_service.close()
            shard_service.close()

    total = rounds * round_size
    base_total = sum(base for base, _sharded in round_times)
    shard_total = sum(sharded for _base, sharded in round_times)
    ratios = sorted(base / sharded for base, sharded in round_times)
    return {
        "num_shards": shards,
        "threads": threads,
        "per_thread": per_thread,
        "window": window,
        "rounds": rounds,
        "journals_per_side": total,
        "fsync_us": fsync_us,
        "max_batch": max_batch,
        "baseline_us_per_append": base_total / total * 1e6,
        "sharded_us_per_append": shard_total / total * 1e6,
        "baseline_appends_per_sec": total / base_total,
        "sharded_appends_per_sec": total / shard_total,
        "shard_speedup": ratios[len(ratios) // 2],
        "mean_batch_size": shard_stats["mean_batch_size"],
        "batches": shard_stats["batches"],
        "composite_root": composite_root,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smoke-test scale (CI-friendly)"
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count for the sharded side"
    )
    parser.add_argument(
        "--fsync-us",
        type=float,
        default=15_000.0,
        help="modelled device durability latency per fsync (0 = bare disk)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless shard_speedup reaches this factor",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_shards.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    # Fail on an unwritable report path *before* minutes of benchmarking.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()

    if args.quick:
        shards_report = bench_shards(
            shards=args.shards, threads=8, per_thread=10, rounds=1, warmup=16,
            window=8, fsync_us=args.fsync_us, max_batch=4,
        )
    else:
        shards_report = bench_shards(
            shards=args.shards, threads=8, per_thread=40, rounds=3, warmup=32,
            window=8, fsync_us=args.fsync_us, max_batch=4,
        )

    report = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "quick": args.quick,
        },
        "shards": shards_report,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    json.dump(report, sys.stdout, indent=2)
    print()
    speedup = shards_report["shard_speedup"]
    print(
        f"\n{args.shards}-shard {speedup:.2f}x single-writer "
        f"({shards_report['sharded_appends_per_sec']:.0f} vs "
        f"{shards_report['baseline_appends_per_sec']:.0f} appends/sec, "
        f"fsync {args.fsync_us:.0f}us; report: {args.out})",
        file=sys.stderr,
    )
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: shard_speedup {speedup:.2f}x below floor {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
