"""Figure 8 benchmarks — fam vs tim append and GetProof kernels.

The full paper-style sweep (all fractal heights x all ledger sizes) is
produced by ``python -m repro.bench fig8``; these pytest-benchmark cases
time the representative kernels at the 16K-journal point so regressions in
either model's asymptotics are caught.
"""

import random

import pytest

from repro.bench import fig8
from repro.crypto.hashing import leaf_hash
from repro.merkle.fam import FamAccumulator


@pytest.mark.parametrize("height", [2, 6, 10])
def test_fam_append_with_root_publication(benchmark, height):
    fam = fig8.build_fam(height, 1 << 12)
    digests = iter(leaf_hash(b"extra-%d" % i) for i in range(1_000_000))

    def append_one():
        fam.append(next(digests))
        fam.current_root()

    benchmark(append_one)


def test_tim_append_with_root_publication(benchmark, tim_16k):
    digests = iter(leaf_hash(b"extra-%d" % i) for i in range(1_000_000))
    benchmark(lambda: tim_16k.append_digest(next(digests)))


def test_fam_get_proof_anchored(benchmark, fam_16k):
    rng = random.Random(1)
    jsns = [rng.randrange(fam_16k.size) for _ in range(64)]
    position = iter(range(10**9))

    def prove_one():
        jsn = jsns[next(position) % len(jsns)]
        proof = fam_16k.get_proof(jsn, anchored=True)
        return proof.epoch_proof.computed_root(fam_16k.leaf_digest(jsn))

    benchmark(prove_one)


def test_fam_get_proof_full_chain(benchmark, fam_16k):
    rng = random.Random(2)
    jsns = [rng.randrange(fam_16k.size) for _ in range(64)]
    root = fam_16k.current_root()
    position = iter(range(10**9))

    def prove_one():
        jsn = jsns[next(position) % len(jsns)]
        proof = fam_16k.get_proof(jsn, anchored=False)
        assert FamAccumulator.verify_full(fam_16k.leaf_digest(jsn), proof, root)

    benchmark(prove_one)


def test_tim_get_proof(benchmark, tim_16k):
    rng = random.Random(3)
    jsns = [rng.randrange(1 << 14) for _ in range(64)]
    root = tim_16k.root(at_size=1 << 14)
    position = iter(range(10**9))

    def prove_one():
        jsn = jsns[next(position) % len(jsns)]
        proof = tim_16k.get_proof(jsn, at_size=1 << 14)
        assert proof.verify(tim_16k.leaf(jsn), root)

    benchmark(prove_one)
