"""Ablation benchmarks — mutation operations (occult modes, purge, audit).

Report form: ``python -m repro.bench ablations``.
"""

import pytest

from repro.core import ClientRequest, Ledger, LedgerConfig, OccultMode, dasein_audit
from repro.crypto import KeyPair, MultiSignature, Role


def build_deployment(journal_count=48):
    ledger = Ledger(LedgerConfig(uri="ledger://mut-bench", fractal_height=4, block_size=8))
    user = KeyPair.generate(seed="mut-user")
    dba = KeyPair.generate(seed="mut-dba")
    regulator = KeyPair.generate(seed="mut-reg")
    ledger.registry.register("user", Role.USER, user.public)
    ledger.registry.register("dba", Role.DBA, dba.public)
    ledger.registry.register("reg", Role.REGULATOR, regulator.public)
    for i in range(journal_count):
        request = ClientRequest.build(
            "ledger://mut-bench", "user", b"payload-%03d" % i, nonce=bytes([i])
        ).signed_by(user)
        ledger.append(request)
    ledger.commit_block()
    return ledger, user, dba, regulator


def occult_approvals(ledger, dba, regulator, record):
    approvals = MultiSignature(digest=record.approval_digest())
    approvals.add("dba", dba.sign(record.approval_digest()))
    approvals.add("reg", regulator.sign(record.approval_digest()))
    return approvals


@pytest.mark.parametrize("mode", [OccultMode.SYNC, OccultMode.ASYNC])
def test_occult_execution(benchmark, mode):
    state = {}

    def setup():
        ledger, _user, dba, regulator = build_deployment()
        record = ledger.prepare_occult(5, mode, reason="bench")
        state["args"] = (ledger, record, occult_approvals(ledger, dba, regulator, record))
        return (), {}

    def execute():
        ledger, record, approvals = state["args"]
        ledger.execute_occult(record, approvals)

    benchmark.pedantic(execute, setup=setup, rounds=5, iterations=1)


def test_reorganize_after_async_occults(benchmark):
    state = {}

    def setup():
        ledger, _user, dba, regulator = build_deployment()
        for jsn in (3, 5, 7, 9):
            record = ledger.prepare_occult(jsn, OccultMode.ASYNC, reason="bench")
            ledger.execute_occult(record, occult_approvals(ledger, dba, regulator, record))
        state["ledger"] = ledger
        return (), {}

    benchmark.pedantic(lambda: state["ledger"].reorganize(), setup=setup, rounds=5, iterations=1)


@pytest.mark.parametrize("erase_fam", [False, True])
def test_purge_execution(benchmark, erase_fam):
    state = {}

    def setup():
        ledger, user, dba, _regulator = build_deployment()
        boundary = ledger.blocks[2].end_jsn
        pseudo, record = ledger.prepare_purge(boundary, erase_fam_nodes=erase_fam)
        approvals = MultiSignature(digest=record.approval_digest())
        for member in ledger.purge_required_signers(boundary):
            keypair = {"user": user, "dba": dba}.get(member) or ledger._lsp_keypair
            approvals.add(member, keypair.sign(record.approval_digest()))
        state["args"] = (ledger, pseudo, record, approvals)
        return (), {}

    def execute():
        ledger, pseudo, record, approvals = state["args"]
        ledger.execute_purge(pseudo, record, approvals)

    benchmark.pedantic(execute, setup=setup, rounds=5, iterations=1)


def test_audit_cost_after_mutations(benchmark):
    ledger, user, dba, regulator = build_deployment()
    record = ledger.prepare_occult(5, OccultMode.SYNC, reason="bench")
    ledger.execute_occult(record, occult_approvals(ledger, dba, regulator, record))
    view = ledger.export_view()

    def audit():
        return dasein_audit(view, verify_client_signatures=False)

    report = benchmark(audit)
    assert report.passed
