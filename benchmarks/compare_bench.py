"""Bench-regression gate: compare a fresh run against the committed baseline.

CI runs ``bench_throughput.py --quick`` and then::

    python benchmarks/compare_bench.py bench-quick.json \
        --baseline BENCH_throughput.json

Per-operation timings (microseconds, lower is better) are compared as
``current / baseline`` ratios.  A ratio above ``--warn`` (default 1.5x)
prints a warning but keeps the gate green — shared CI runners are noisy; a
ratio above ``--fail`` (default 3x) is a real regression (or a real machine
problem) and exits non-zero, turning the pipeline red.  Speedups (ratios
below 1) are reported but never gate.

``--scale`` multiplies every current timing before comparison.  It exists
so the gate can prove it *would* fail — ``--scale 3.5`` simulates a 3.5x
slowdown without committing one — and is what ``tests/test_compare_bench.py``
pins the red path with.

``--metric section.metric`` (repeatable) overrides the default gated set, so
the same gate serves any benchmark report that nests timings two levels
deep — e.g. the service benchmark::

    python benchmarks/compare_bench.py bench-service.json \
        --baseline BENCH_service.json \
        --metric service.sequential_us_per_append \
        --metric service.coalesced_us_per_append
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

# (section, metric) pairs gated on: every per-op timing the throughput
# benchmark emits.  Counts/speedups are derived values and not compared.
GATED_METRICS = (
    ("ecdsa", "sign_fast_us"),
    ("ecdsa", "verify_fast_us"),
    ("append", "sequential_us_per_append"),
    ("append", "batch_us_per_append"),
)


def compare(
    current: dict,
    baseline: dict,
    warn_ratio: float = 1.5,
    fail_ratio: float = 3.0,
    scale: float = 1.0,
    metrics: tuple[tuple[str, str], ...] = GATED_METRICS,
) -> tuple[list[str], list[str], list[str]]:
    """Returns (report_lines, warnings, failures)."""
    lines, warnings, failures = [], [], []
    lines.append(
        f"{'metric':<38} {'baseline':>12} {'current':>12} {'ratio':>8}  status"
    )
    for section, metric in metrics:
        try:
            base_value = float(baseline[section][metric])
            current_value = float(current[section][metric]) * scale
        except KeyError as exc:
            failures.append(f"{section}.{metric}: missing from report ({exc})")
            continue
        if base_value <= 0:
            failures.append(f"{section}.{metric}: non-positive baseline {base_value}")
            continue
        ratio = current_value / base_value
        if ratio > fail_ratio:
            status = f"FAIL (> {fail_ratio:g}x)"
            failures.append(
                f"{section}.{metric}: {ratio:.2f}x slower than baseline "
                f"({current_value:.1f}us vs {base_value:.1f}us)"
            )
        elif ratio > warn_ratio:
            status = f"warn (> {warn_ratio:g}x)"
            warnings.append(
                f"{section}.{metric}: {ratio:.2f}x slower than baseline"
            )
        else:
            status = "ok"
        lines.append(
            f"{section + '.' + metric:<38} {base_value:>10.1f}us {current_value:>10.1f}us "
            f"{ratio:>7.2f}x  {status}"
        )
    return lines, warnings, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh bench JSON (e.g. bench-quick.json)")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_throughput.json",
        help="committed baseline JSON",
    )
    parser.add_argument("--warn", type=float, default=1.5, help="warn ratio (default 1.5)")
    parser.add_argument("--fail", type=float, default=3.0, help="fail ratio (default 3.0)")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply current timings (gate self-test: --scale 3.5 must fail)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        dest="metrics",
        metavar="SECTION.METRIC",
        help="gate on this metric instead of the defaults (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.metrics:
        metrics = []
        for spec in args.metrics:
            section, _, metric = spec.partition(".")
            if not section or not metric:
                parser.error(f"--metric takes SECTION.METRIC, got {spec!r}")
            metrics.append((section, metric))
        metrics = tuple(metrics)
    else:
        metrics = GATED_METRICS

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    lines, warnings, failures = compare(
        current,
        baseline,
        warn_ratio=args.warn,
        fail_ratio=args.fail,
        scale=args.scale,
        metrics=metrics,
    )
    print("\n".join(lines))
    for warning in warnings:
        print(f"::warning::bench regression: {warning}")
    for failure in failures:
        print(f"::error::bench regression: {failure}")
    if failures:
        print(f"bench gate: FAILED ({len(failures)} metric(s) > {args.fail:g}x)")
        return 1
    print(
        "bench gate: ok"
        + (f" ({len(warnings)} warning(s) > {args.warn:g}x)" if warnings else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
