"""Ablation benchmarks — trusted-anchor schemes (fam-aoa vs alternatives).

Report form: ``python -m repro.bench ablations``.  Kernels: the same random
verification against each anchor scheme on an 8K-journal ledger.
"""

import random

import pytest

from repro.crypto.hashing import leaf_hash
from repro.merkle.bim import BimLedger, LightClient
from repro.merkle.fam import AnchorStore, FamAccumulator
from repro.merkle.tim import TimAccumulator

SIZE = 1 << 13


@pytest.fixture(scope="module")
def world():
    digests = [leaf_hash(i.to_bytes(4, "big")) for i in range(SIZE)]
    fam = FamAccumulator(6)
    tim = TimAccumulator()
    for digest in digests:
        fam.append(digest)
        tim.append_digest(digest)
    anchors = AnchorStore()
    for epoch in range(fam.num_epochs - 1):
        anchors.add(epoch, fam.epoch_root(epoch))
    bim = BimLedger(block_capacity=64)
    positions = [bim.append(b"tx-%d" % i) for i in range(SIZE)]
    bim.commit_block()
    light = LightClient()
    light.sync_headers(bim.headers())
    rng = random.Random(17)
    jsns = [rng.randrange(SIZE) for _ in range(256)]
    return {
        "digests": digests, "fam": fam, "tim": tim, "anchors": anchors,
        "bim": bim, "positions": positions, "light": light, "jsns": jsns,
    }


def _cycle(values):
    index = iter(range(10**9))
    return lambda: values[next(index) % len(values)]


def test_fam_aoa_verification(benchmark, world):
    next_jsn = _cycle(world["jsns"])

    def verify():
        jsn = next_jsn()
        proof = world["fam"].get_proof(jsn, anchored=True)
        return world["fam"].verify_with_anchors(world["digests"][jsn], proof, world["anchors"])

    assert benchmark(verify)


def test_fam_full_chain_verification(benchmark, world):
    next_jsn = _cycle(world["jsns"])
    root = world["fam"].current_root()

    def verify():
        jsn = next_jsn()
        proof = world["fam"].get_proof(jsn, anchored=False)
        return FamAccumulator.verify_full(world["digests"][jsn], proof, root)

    assert benchmark(verify)


def test_tim_verification(benchmark, world):
    next_jsn = _cycle(world["jsns"])
    root = world["tim"].root()

    def verify():
        jsn = next_jsn()
        return world["tim"].get_proof(jsn).verify(world["digests"][jsn], root)

    assert benchmark(verify)


def test_bim_spv_verification(benchmark, world):
    next_jsn = _cycle(world["jsns"])

    def verify():
        jsn = next_jsn()
        height, index = world["positions"][jsn]
        return world["light"].verify(b"tx-%d" % jsn, world["bim"].get_proof(height, index))

    assert benchmark(verify)
