"""Consistency-proof benchmarks: anchor advancement vs full re-verification.

The §III-A1 anchor contract says all data before an anchor must have been
verified.  Naively that is an O(n) replay per advancement; with consistency
and merged-leaf link proofs it is O(log n) / O(delta).  These kernels
quantify that gap — the argument for the client SDK's sync strategy.
"""

import pytest

from repro.crypto.hashing import leaf_hash
from repro.merkle.consistency import prove_consistency
from repro.merkle.fam import AnchorStore, FamAccumulator
from repro.merkle.shrubs import FrontierAccumulator, ShrubsAccumulator

SIZE = 1 << 13


@pytest.fixture(scope="module")
def accumulator():
    acc = ShrubsAccumulator()
    for i in range(SIZE):
        acc.append_leaf(leaf_hash(i.to_bytes(4, "big")))
    return acc


def test_consistency_prove(benchmark, accumulator):
    benchmark(lambda: prove_consistency(accumulator, SIZE // 2, SIZE))


def test_consistency_verify(benchmark, accumulator):
    proof = prove_consistency(accumulator, SIZE // 2, SIZE)
    old_root = accumulator.root(SIZE // 2)
    new_root = accumulator.root(SIZE)
    result = benchmark(lambda: proof.verify(old_root, new_root))
    assert result


def test_naive_full_reverification(benchmark, accumulator):
    """The baseline the proofs replace: replay every leaf digest."""
    leaves = [accumulator.leaf(i) for i in range(SIZE)]
    expected = accumulator.root()

    def replay():
        frontier = FrontierAccumulator()
        for digest in leaves:
            frontier.append_leaf(digest)
        return frontier.root() == expected

    assert benchmark(replay)


def test_fam_epoch_link_advance(benchmark):
    fam = FamAccumulator(6)
    for i in range(1 << 13):
        fam.append(leaf_hash(i.to_bytes(4, "big")))

    def advance_all():
        anchors = AnchorStore()
        anchors.add(0, fam.epoch_root(0))
        for epoch in range(1, fam.num_epochs - 1):
            link = fam.prove_epoch_link(epoch)
            assert anchors.advance(epoch, fam.epoch_root(epoch), link)
        return len(anchors)

    count = benchmark(advance_all)
    assert count == fam.num_epochs - 1
