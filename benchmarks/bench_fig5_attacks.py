"""Figure 5 benchmarks — attack-scenario simulation kernels.

Report form: ``python -m repro.bench fig5``.  Benchmarked here because the
attack harness runs inside the audit hot path of security regressions: if
a change makes the protocol simulations meaningfully slower (or changes
their outcomes — asserted below), these catch it.
"""

from repro.timeauth import (
    run_one_way_amplification,
    run_tledger_stale_submission,
    run_two_way_window,
)


def test_one_way_amplification_scenario(benchmark):
    result = benchmark(lambda: run_one_way_amplification(3600.0))
    assert result.malicious_window > 3600.0  # unbounded growth


def test_two_way_window_scenario(benchmark):
    result = benchmark(lambda: run_two_way_window(3600.0, peg_interval=1.0))
    assert result.bounded
    assert result.malicious_window <= 2.0 + 1e-9


def test_tledger_stale_rejection_scenario(benchmark):
    accepted = benchmark(lambda: run_tledger_stale_submission(hold_back=5.0))
    assert not accepted
