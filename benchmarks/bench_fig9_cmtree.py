"""Figure 9 benchmarks — CM-Tree vs ccMPT clue verification kernels.

Full sweep: ``python -m repro.bench fig9``.  These cases pin the two
models' per-verification cost on identical 50-entry clues (the Fig 9(a)
comparison point) and the 1000-entry latency point of Fig 9(b).
"""

from repro.bench import fig9


def _forced_clue(world, entries):
    for name, count in world.forced_clues:
        if count == entries:
            return name
    raise LookupError(f"no forced clue with {entries} entries")


def test_cmtree_verify_50_entry_clue(benchmark, clue_world_8k):
    clue = _forced_clue(clue_world_8k, 50)
    result = benchmark(lambda: fig9.verify_cmtree_once(clue_world_8k, clue))
    assert result


def test_ccmpt_verify_50_entry_clue(benchmark, clue_world_8k):
    clue = _forced_clue(clue_world_8k, 50)
    result = benchmark(lambda: fig9.verify_ccmpt_once(clue_world_8k, clue))
    assert result


def test_cmtree_verify_1000_entry_clue(benchmark, clue_world_8k):
    clue = _forced_clue(clue_world_8k, 1000)
    result = benchmark(lambda: fig9.verify_cmtree_once(clue_world_8k, clue))
    assert result


def test_ccmpt_verify_1000_entry_clue(benchmark, clue_world_8k):
    clue = _forced_clue(clue_world_8k, 1000)
    result = benchmark(lambda: fig9.verify_ccmpt_once(clue_world_8k, clue))
    assert result


def test_cmtree_insertion(benchmark, clue_world_8k):
    from repro.crypto.hashing import leaf_hash

    counter = iter(range(10**9))
    benchmark(
        lambda: clue_world_8k.cmtree.add("bench-insert-clue", leaf_hash(b"%d" % next(counter)))
    )


def test_ccmpt_insertion(benchmark, clue_world_8k):
    counter = iter(range(10**9))

    def insert_one():
        jsn = clue_world_8k.tim.append_digest(
            __import__("repro.crypto.hashing", fromlist=["leaf_hash"]).leaf_hash(
                b"cc-%d" % next(counter)
            )
        )
        clue_world_8k.ccmpt.add("bench-insert-clue", jsn)

    benchmark(insert_one)
