"""Export-bundle benchmark: build, standalone verify, and rebuild cost.

Standalone script (same conventions as ``bench_proof_read.py``)::

    PYTHONPATH=src python benchmarks/bench_export.py [--quick] [--out FILE]

One section, ``export``, over a seeded TSA-anchored deployment:

* ``build_us_per_journal`` — ``export_bundle()`` wall time amortised over
  the journals carried (proof generation dominates: one full-chain fam
  proof per journal plus the STH/consistency chain).
* ``verify_us_per_journal`` — the standalone verifier over the decoded
  bundle (``verify_bundle``, TSA keys supplied so all three Dasein
  factors run).  This is the auditor's cost — no ledger, no service, no
  network — and the ``verify_speedup`` ratio pins it against rebuilding.
* ``decode_us_per_journal`` — ``ExportBundle.from_bytes`` including the
  crc32c integrity sweep; the floor cost of *opening* a bundle at all.
* ``rebuild_us_per_journal`` — ``rebuild_from_bundle()``: full journal
  replay through ``Ledger.recover`` plus every cross-check.  Note the
  inversion: rebuild *beats* standalone verification per journal,
  because recovery trusts the retained digests it re-derives and batches
  its crypto, while the standalone verifier pays one ECDSA verify per
  journal signature plus one full-chain proof fold — the price of
  trusting nothing.  ``rebuild_vs_verify`` records the ratio
  (informational; the CI gate compares each timing against the
  committed baseline via ``compare_bench --metric export.*``).
* ``bundle_bytes_per_journal`` — container size amortised per journal.

Every timed phase is checked before it is trusted: the bundle must
verify ``ok``, the rebuild must report zero divergences, and the rebuilt
root must equal the source's.  ``--quick`` shrinks the workload for CI
smoke runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import LedgerSession  # noqa: E402
from repro.core import Ledger, LedgerConfig  # noqa: E402
from repro.crypto import KeyPair, Role  # noqa: E402
from repro.export.bundle import ExportBundle, export_bundle  # noqa: E402
from repro.export.rebuild import rebuild_from_bundle  # noqa: E402
from repro.export.verifier import verify_bundle  # noqa: E402
from repro.timeauth import SimClock, TimeStampAuthority  # noqa: E402

URI = "ledger://bench-export"


def build_deployment(journals: int):
    clock = SimClock()
    tsa = TimeStampAuthority("bench-tsa", clock)
    ledger = Ledger(
        LedgerConfig(uri=URI, fractal_height=4, block_size=16), clock=clock
    )
    ledger.attach_tsa(tsa)
    user = KeyPair.generate(seed="bench-export-user")
    ledger.registry.register("user", Role.USER, user.public)
    session = LedgerSession(ledger, client_id="user", keypair=user)
    for index in range(journals):
        session.append(b"export bench record %06d" % index, clues=(f"B-{index % 8}",))
        clock.advance(0.05)
        if index % 32 == 31:
            ledger.anchor_time()
    ledger.anchor_time()
    ledger.commit_block()
    return ledger, {"bench-tsa": tsa.public_key}


def bench_export(journals: int, rounds: int) -> dict:
    ledger, tsa_keys = build_deployment(journals)
    carried = ledger.size  # journals + time anchors

    build_times, decode_times, verify_times, rebuild_times = [], [], [], []
    blob = b""
    for _ in range(rounds):
        start = time.perf_counter()
        bundle = export_bundle(ledger, clues=("B-0", "B-3"))
        build_times.append(time.perf_counter() - start)
        blob = bundle.to_bytes()

        start = time.perf_counter()
        decoded = ExportBundle.from_bytes(blob)
        decode_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        result = verify_bundle(decoded, tsa_keys=tsa_keys)
        verify_times.append(time.perf_counter() - start)
        if not result.ok:
            raise SystemExit(f"bundle failed verification: {result.detail}")

        start = time.perf_counter()
        rebuilt, report = rebuild_from_bundle(decoded)
        rebuild_times.append(time.perf_counter() - start)
        if not report.ok:
            raise SystemExit(f"rebuild diverged: {report.divergences}")
        if rebuilt.current_root() != ledger.current_root():
            raise SystemExit("rebuilt root does not match the source")

    scale = 1e6 / carried
    verify_us = min(verify_times) * scale
    rebuild_us = min(rebuild_times) * scale
    return {
        "journals": carried,
        "rounds": rounds,
        "bundle_bytes": len(blob),
        "bundle_bytes_per_journal": round(len(blob) / carried, 1),
        "build_us_per_journal": round(min(build_times) * scale, 2),
        "decode_us_per_journal": round(min(decode_times) * scale, 2),
        "verify_us_per_journal": round(verify_us, 2),
        "rebuild_us_per_journal": round(rebuild_us, 2),
        "rebuild_vs_verify": round(rebuild_us / verify_us, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke scale")
    parser.add_argument("--journals", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    journals = args.journals or (128 if args.quick else 512)
    rounds = args.rounds or (2 if args.quick else 3)

    report = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "quick": bool(args.quick),
        },
        "export": bench_export(journals, rounds),
    }

    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        args.out.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
