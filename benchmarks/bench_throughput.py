"""End-to-end throughput benchmark: fast-path ECDSA and batched admission.

Standalone script (not a pytest-benchmark module) so CI and developers get a
one-command JSON report::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--quick] [--out FILE]

Two sections:

* ``ecdsa`` — signs/sec and verifies/sec for the windowed fixed-base /
  Shamir fast path against the naive double-and-add ladder, measured in the
  same run so the speedup factors are apples-to-apples.
* ``append`` — appends/sec for ``Ledger.append_batch`` against sequential
  ``Ledger.append`` on a durable file-backed ledger with a clue-heavy
  workload (five clues per journal, as in the paper's N-lineage scenarios).
  Both sides pay identical crypto (receipts are byte-identical); the batch
  side amortises the stream fsync, CM-Tree refreshes, and signature
  inversions.

``--quick`` shrinks iteration counts to a smoke-test scale for CI.

``--obs`` turns on the observability layer (repro.obs) for the append
section and adds a per-phase ``observability`` breakdown to the JSON report
— span call counts and mean wall/self microseconds for every instrumented
phase, so a regression can be localised (fsync? CM-Tree? signing?) from the
artifact alone.  The timed numbers then include the (small) metrics
overhead, so CI's gated comparison always runs *without* ``--obs``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.core import ClientRequest, Ledger, LedgerConfig  # noqa: E402
from repro.crypto import KeyPair, Role  # noqa: E402
from repro.crypto import ecdsa  # noqa: E402
from repro.storage.stream import FileStream  # noqa: E402

URI = "ledger://bench-throughput"
CLIENTS = ("alice", "bob", "carol", "dan")
# A clue-heavy supply-chain journal (the paper's N-lineage setting): every
# transaction is indexed under all eight lineage keys.
CLUE_POOL = (
    "buyer:77",
    "seller:12",
    "commodity:9",
    "region:5",
    "carrier:2",
    "order:41",
    "shipment:8",
    "invoice:3",
)


def _time_per_call(fn, iterations: int) -> float:
    """Best-of-3 mean seconds per call (min over repeats rejects noise)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


def bench_ecdsa(iterations: int, naive_iterations: int) -> dict:
    ecdsa.clear_fast_path_caches()
    rng = random.Random(0xBE7C)
    secret = rng.randrange(1, ecdsa.CURVE_P256.n)
    public = ecdsa.derive_public_key(secret)
    digest = hashlib.sha256(b"throughput-probe").digest()
    signature = ecdsa.sign_digest(secret, digest)  # also builds the G table
    ecdsa.precompute_public_key(public)  # warm the verifier's window table

    sign_fast = _time_per_call(lambda: ecdsa.sign_digest(secret, digest), iterations)
    verify_fast = _time_per_call(
        lambda: ecdsa.verify_digest(public, digest, signature), iterations
    )
    sign_naive = _time_per_call(
        lambda: ecdsa.sign_digest_naive(secret, digest), naive_iterations
    )
    verify_naive = _time_per_call(
        lambda: ecdsa.verify_digest_naive(public, digest, signature), naive_iterations
    )
    return {
        "sign_fast_us": sign_fast * 1e6,
        "sign_naive_us": sign_naive * 1e6,
        "sign_speedup": sign_naive / sign_fast,
        "signs_per_sec": 1.0 / sign_fast,
        "verify_fast_us": verify_fast * 1e6,
        "verify_naive_us": verify_naive * 1e6,
        "verify_speedup": verify_naive / verify_fast,
        "verifies_per_sec": 1.0 / verify_fast,
    }


def _make_ledger(directory: str, tag: str) -> tuple[Ledger, dict[str, KeyPair]]:
    stream = FileStream(Path(directory) / f"{tag}.log", durable=True)
    ledger = Ledger(
        LedgerConfig(uri=URI, fractal_height=10, block_size=64),
        journal_stream=stream,
    )
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"bench:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    return ledger, keys


def _requests(keys: dict[str, KeyPair], count: int, start: int) -> list[ClientRequest]:
    out = []
    for i in range(start, start + count):
        client = CLIENTS[i % len(CLIENTS)]
        out.append(
            ClientRequest.build(
                URI,
                client,
                payload=f"tx-{i}".encode(),
                clues=CLUE_POOL,
                nonce=i.to_bytes(8, "big"),
                client_timestamp=1.0,
            ).signed_by(keys[client])
        )
    return out


def bench_append(batch_size: int, rounds: int, warmup: int) -> dict:
    """Interleaved rounds of (batch_size sequential appends, one batch).

    Sequential and batch segments alternate so system-wide speed drift (CPU
    throttling, fsync latency swings) hits both sides alike; the reported
    speedup is the *median* of per-round paired ratios.
    """
    round_times: list[tuple[float, float]] = []
    with tempfile.TemporaryDirectory() as tmp:
        seq_ledger, keys = _make_ledger(tmp, "seq")
        batch_ledger, _ = _make_ledger(tmp, "batch")

        # Warm both paths: window tables, pubkey LRU, lazy structures.
        for request in _requests(keys, warmup, start=0):
            seq_ledger.append(request)
        batch_ledger.append_batch(_requests(keys, warmup, start=warmup))

        for index in range(rounds):
            seq_work = _requests(keys, batch_size, start=10_000 + index * batch_size)
            start = time.perf_counter()
            for request in seq_work:
                seq_ledger.append(request)
            seq_elapsed = time.perf_counter() - start

            batch_work = _requests(keys, batch_size, start=20_000 + index * batch_size)
            start = time.perf_counter()
            batch_ledger.append_batch(batch_work)
            batch_elapsed = time.perf_counter() - start
            round_times.append((seq_elapsed, batch_elapsed))

    total = rounds * batch_size
    seq_total = sum(seq for seq, _batch in round_times)
    batch_total = sum(batch for _seq, batch in round_times)
    ratios = sorted(seq / batch for seq, batch in round_times)
    return {
        "journals_per_side": total,
        "batch_size": batch_size,
        "rounds": rounds,
        "clues_per_journal": len(CLUE_POOL),
        "sequential_us_per_append": seq_total / total * 1e6,
        "batch_us_per_append": batch_total / total * 1e6,
        "sequential_appends_per_sec": total / seq_total,
        "batch_appends_per_sec": total / batch_total,
        "batch_speedup": ratios[len(ratios) // 2],
    }


def _phase_breakdown(snapshot: dict) -> dict:
    """Condense an obs snapshot into per-phase rows for the JSON report."""
    phases = {}
    histograms = snapshot["histograms"]
    for name, hist in histograms.items():
        if not name.endswith(".wall_us"):
            continue
        phase = name[: -len(".wall_us")]
        self_hist = histograms.get(f"{phase}.self_us", {})
        phases[phase] = {
            "calls": hist["count"],
            "wall_us_mean": hist["mean"],
            "wall_us_total": hist["sum"],
            "self_us_mean": self_hist.get("mean", 0.0),
            "self_us_total": self_hist.get("sum", 0.0),
        }
    return {"phases": phases, "counters": snapshot["counters"]}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smoke-test scale (CI-friendly)"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable the observability layer and embed per-phase breakdowns",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_throughput.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    # Fail on an unwritable report path *before* minutes of benchmarking.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()

    if args.quick:
        ecdsa_report = bench_ecdsa(iterations=8, naive_iterations=3)
    else:
        ecdsa_report = bench_ecdsa(iterations=64, naive_iterations=16)

    if args.obs:
        # Only the append section runs instrumented: the ecdsa section's
        # point is the raw fast-path latency.
        obs.enable()
        obs.reset()
    if args.quick:
        append_report = bench_append(batch_size=8, rounds=1, warmup=8)
    else:
        append_report = bench_append(batch_size=64, rounds=5, warmup=64)

    report = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "quick": args.quick,
            "obs": args.obs,
        },
        "ecdsa": ecdsa_report,
        "append": append_report,
    }
    if args.obs:
        report["observability"] = _phase_breakdown(obs.snapshot())
        obs.disable()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    json.dump(report, sys.stdout, indent=2)
    print()
    print(
        f"\nsign {ecdsa_report['sign_speedup']:.1f}x, "
        f"verify {ecdsa_report['verify_speedup']:.1f}x, "
        f"append_batch {append_report['batch_speedup']:.2f}x "
        f"(report: {args.out})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
