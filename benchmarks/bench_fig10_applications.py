"""Figure 10 benchmarks — application-level kernels vs Fabric.

Full series: ``python -m repro.bench fig10``.  These cases time the real
in-process work: LedgerDB appends (full pipeline incl. pure-Python ECDSA),
LedgerDB clue verification, and the Fabric simulator's endorse/validate
crypto (its modelled batching delay is excluded from wall time by design —
the simulator *accounts* it rather than sleeping).
"""

import pytest

from repro.baselines.fabric import FabricNetwork
from repro.core import ClientRequest, Ledger, LedgerConfig
from repro.crypto import KeyPair, Role


@pytest.fixture(scope="module")
def app_ledger():
    ledger = Ledger(LedgerConfig(uri="ledger://app-bench", fractal_height=8, block_size=64))
    user = KeyPair.generate(seed="app-user")
    ledger.registry.register("user", Role.USER, user.public)
    for i in range(64):
        request = ClientRequest.build(
            "ledger://app-bench", "user", b"x" * 256,
            clues=("HOT-CLUE",) if i % 2 == 0 else (),
            nonce=i.to_bytes(4, "big"),
        ).signed_by(user)
        ledger.append(request)
    return ledger, user


def test_ledgerdb_append_full_pipeline(benchmark, app_ledger):
    ledger, user = app_ledger
    counter = iter(range(10**9))

    def append_one():
        request = ClientRequest.build(
            "ledger://app-bench", "user", b"x" * 256,
            nonce=next(counter).to_bytes(8, "big"),
        ).signed_by(user)
        return ledger.append(request)

    benchmark(append_one)


def test_ledgerdb_notarization_verify(benchmark, app_ledger):
    ledger, _user = app_ledger
    journal = ledger.get_journal(5)
    benchmark(lambda: ledger.verify_journal(journal))


def test_ledgerdb_lineage_verify(benchmark, app_ledger):
    ledger, _user = app_ledger
    jsns = ledger.list_tx("HOT-CLUE")
    journals = [ledger.get_journal(j) for j in jsns]

    def verify_lineage():
        proof = ledger.prove_clue("HOT-CLUE")
        digests = {i: j.tx_hash() for i, j in enumerate(journals)}
        return proof.verify(digests, ledger.state_root())

    assert benchmark(verify_lineage)


@pytest.fixture(scope="module")
def fabric():
    network = FabricNetwork()
    for i in range(20):
        network.invoke("bench-asset", b"v%d" % i)
    return network


def test_fabric_invoke_crypto(benchmark, fabric):
    counter = iter(range(10**9))
    benchmark(lambda: fabric.invoke("bench-asset", b"v-%d" % next(counter)))


def test_fabric_history_verification(benchmark, fabric):
    benchmark(lambda: fabric.verify_history("bench-asset"))
