"""Group-commit service benchmark: concurrent coalesced appends vs sequential.

Standalone script (not a pytest-benchmark module) so CI and developers get a
one-command JSON report::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--out FILE]

One section, ``service``: N client threads, each pipelining a small window
of in-flight futures (an async client), race their pre-signed requests
through :class:`repro.service.LedgerService` (group commit — one stream
write/fsync, grouped CM-Tree flushes, one shared-inversion signing pass per
batch) against a single caller driving ``Ledger.append`` on an identical
durable file-backed ledger.  Both sides pay identical crypto per journal;
what the service buys is the amortisation, so ``coalesce_speedup`` is the
headline number (the acceptance floor is 1.5x — enforce it with
``--min-speedup 1.5``).

Sequential and coalesced segments alternate round by round so system-wide
speed drift (CPU throttling, fsync latency swings) hits both sides alike;
the reported speedup is the *median* of per-round paired ratios.

``--quick`` shrinks the workload to a smoke-test scale for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ClientRequest, Ledger, LedgerConfig  # noqa: E402
from repro.crypto import KeyPair, Role  # noqa: E402
from repro.service import LedgerService, ServiceConfig  # noqa: E402
from repro.storage.stream import FileStream  # noqa: E402

URI = "ledger://bench-service"
CLIENTS = ("alice", "bob", "carol", "dan")
CLUES = ("order:41", "shipment:8", "invoice:3")


def _make_ledger(directory: str, tag: str) -> tuple[Ledger, dict[str, KeyPair]]:
    stream = FileStream(Path(directory) / f"{tag}.log", durable=True)
    ledger = Ledger(
        LedgerConfig(uri=URI, fractal_height=10, block_size=64),
        journal_stream=stream,
    )
    keys = {}
    for name in CLIENTS:
        keypair = KeyPair.generate(seed=f"bench:{name}")
        keys[name] = keypair
        ledger.registry.register(name, Role.USER, keypair.public)
    return ledger, keys


def _requests(keys: dict[str, KeyPair], count: int, start: int) -> list[ClientRequest]:
    out = []
    for i in range(start, start + count):
        client = CLIENTS[i % len(CLIENTS)]
        out.append(
            ClientRequest.build(
                URI,
                client,
                payload=f"tx-{i}".encode(),
                clues=CLUES,
                nonce=i.to_bytes(8, "big"),
                client_timestamp=1.0,
            ).signed_by(keys[client])
        )
    return out


def _run_threads(
    service: LedgerService, per_thread: list[list[ClientRequest]], window: int
) -> float:
    """Drive one request list per thread through the service; seconds elapsed.

    Each thread keeps up to ``window`` futures in flight (an async client's
    pipeline), so the writer can coalesce ``threads * window`` requests.
    """
    errors: list[BaseException] = []

    def worker(requests: list[ClientRequest]) -> None:
        try:
            inflight: deque = deque()
            for request in requests:
                inflight.append(service.submit(request, timeout=60.0))
                if len(inflight) >= window:
                    inflight.popleft().result(timeout=60.0)
            while inflight:
                inflight.popleft().result(timeout=60.0)
        except BaseException as exc:  # benchmark must not swallow failures
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(chunk,)) for chunk in per_thread]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def bench_service(
    threads: int, per_thread: int, rounds: int, warmup: int, window: int = 4
) -> dict:
    round_size = threads * per_thread
    round_times: list[tuple[float, float]] = []
    with tempfile.TemporaryDirectory() as tmp:
        seq_ledger, keys = _make_ledger(tmp, "seq")
        svc_ledger, _ = _make_ledger(tmp, "svc")
        # At most threads * window requests are ever in flight — cap max_batch
        # there so the writer stops lingering the moment every one is aboard.
        service = LedgerService(
            svc_ledger, ServiceConfig(max_batch=threads * window, max_wait_ms=2.0)
        )
        try:
            # Warm both paths: window tables, pubkey LRU, lazy structures.
            # The service side warms through the same thread fan-out so the
            # lifetime mean_batch_size stat reflects coalesced batches only.
            for request in _requests(keys, warmup, start=0):
                seq_ledger.append(request)
            warm = _requests(keys, warmup, start=warmup)
            _run_threads(service, [warm[t::threads] for t in range(threads)], window)

            for index in range(rounds):
                seq_work = _requests(keys, round_size, start=10_000 + index * round_size)
                start = time.perf_counter()
                for request in seq_work:
                    seq_ledger.append(request)
                seq_elapsed = time.perf_counter() - start

                svc_work = _requests(keys, round_size, start=20_000 + index * round_size)
                chunks = [
                    svc_work[t * per_thread : (t + 1) * per_thread] for t in range(threads)
                ]
                svc_elapsed = _run_threads(service, chunks, window)
                round_times.append((seq_elapsed, svc_elapsed))
            stats = service.stats()
        finally:
            service.close()

    total = rounds * round_size
    seq_total = sum(seq for seq, _svc in round_times)
    svc_total = sum(svc for _seq, svc in round_times)
    ratios = sorted(seq / svc for seq, svc in round_times)
    return {
        "threads": threads,
        "per_thread": per_thread,
        "window": window,
        "rounds": rounds,
        "journals_per_side": total,
        "clues_per_journal": len(CLUES),
        "sequential_us_per_append": seq_total / total * 1e6,
        "coalesced_us_per_append": svc_total / total * 1e6,
        "sequential_appends_per_sec": total / seq_total,
        "coalesced_appends_per_sec": total / svc_total,
        "coalesce_speedup": ratios[len(ratios) // 2],
        "mean_batch_size": stats["mean_batch_size"],
        "batches": stats["batches"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smoke-test scale (CI-friendly)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless coalesce_speedup reaches this factor",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    # Fail on an unwritable report path *before* minutes of benchmarking.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()

    if args.quick:
        service_report = bench_service(threads=8, per_thread=6, rounds=1, warmup=8)
    else:
        service_report = bench_service(threads=8, per_thread=24, rounds=3, warmup=32)

    report = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "quick": args.quick,
        },
        "service": service_report,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    json.dump(report, sys.stdout, indent=2)
    print()
    speedup = service_report["coalesce_speedup"]
    print(
        f"\ncoalesced {speedup:.2f}x sequential "
        f"({service_report['coalesced_appends_per_sec']:.0f} vs "
        f"{service_report['sequential_appends_per_sec']:.0f} appends/sec, "
        f"mean batch {service_report['mean_batch_size']:.1f}; report: {args.out})",
        file=sys.stderr,
    )
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"::error::service coalescing below floor: {speedup:.2f}x < "
            f"{args.min_speedup:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
