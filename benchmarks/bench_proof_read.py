"""Proof-read benchmark for the paged node store: cache effects + recovery.

Standalone script (same conventions as ``bench_audit.py``)::

    PYTHONPATH=src python benchmarks/bench_proof_read.py [--quick] [--out FILE]

One section, ``proofs``, over a persistent paged-backend ledger (seeded
keys, sim clock, checkpointed at close):

* ``cold_clue_proof_us`` / ``warm_clue_proof_us`` — CM-Tree clue proofs on
  a freshly opened ledger (every page fault goes to disk) vs the same
  proofs again with the page cache and MPT node memo warm.  This is the
  §IV-B2 "top layers in memory, bottom layers on disk" trade made
  measurable.
* ``single_get_proof_us`` / ``bulk_get_proofs_us`` — N anchored journal
  proofs issued one ``get_proof`` at a time vs one ``get_proofs`` call
  that amortises the trusted-root / epoch-anchor work across the batch.
  Bulk results are checked byte-identical to the singles before any
  timing is trusted; ``bulk_speedup`` is the acceptance metric (floor
  1x — bulk must never lose; enforce with ``--min-bulk-speedup``).
* ``snapshot_open_s`` / ``full_recover_s`` — restart cost: ``Ledger.open``
  riding the snapshot + O(delta) replay vs ``force_rebuild=True`` full
  journal replay of the same directory.

``--quick`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ClientRequest, Ledger, LedgerConfig  # noqa: E402
from repro.core.members import MemberRegistry  # noqa: E402
from repro.crypto import KeyPair, Role  # noqa: E402
from repro.timeauth import SimClock  # noqa: E402

URI = "ledger://bench-proofs"
CLUES = tuple(f"CLUE-{i}" for i in range(8))


def _registry():
    registry = MemberRegistry()
    user = KeyPair.generate(seed="bench-proofs-user")
    registry.register("user", Role.USER, user.public)
    return registry, user


def build_ledger(data_dir: str, journals: int) -> None:
    registry, user = _registry()
    lsp = KeyPair.generate(seed="bench-proofs-lsp")
    clock = SimClock()
    ledger = Ledger(
        LedgerConfig(
            uri=URI, fractal_height=4, block_size=8,
            node_store="paged", cache_pages=64, data_dir=data_dir,
        ),
        clock=clock, registry=registry, lsp_keypair=lsp,
    )
    for i in range(journals):
        request = ClientRequest.build(
            URI, "user", b"bench-%06d" % i, clues=(CLUES[i % len(CLUES)],),
            nonce=i.to_bytes(4, "big"), client_timestamp=clock.now(),
        ).signed_by(user)
        ledger.append(request)
        clock.advance(0.05)
    ledger.commit_block()
    ledger.close()  # checkpoints: reopen takes the snapshot path


def open_ledger(data_dir: str, force_rebuild: bool = False) -> Ledger:
    registry, _user = _registry()
    lsp = KeyPair.generate(seed="bench-proofs-lsp")
    return Ledger.open(
        data_dir, registry, lsp, clock=SimClock(), force_rebuild=force_rebuild
    )


def bench_proofs(journals: int, rounds: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-proofs-") as data_dir:
        build_ledger(data_dir, journals)

        # Restart cost: snapshot + delta replay vs full journal replay.
        open_times, rebuild_times = [], []
        for _ in range(rounds):
            start = time.perf_counter()
            ledger = open_ledger(data_dir)
            open_times.append(time.perf_counter() - start)
            ledger.close(checkpoint=False)

            start = time.perf_counter()
            ledger = open_ledger(data_dir, force_rebuild=True)
            rebuild_times.append(time.perf_counter() - start)
            # The rebuild rewrote the page files; checkpoint so the snapshot
            # manifest matches them again and the next round's open really
            # takes the snapshot path instead of silently falling back.
            ledger.close()

        # Cold vs warm CM-Tree clue proofs.  A freshly opened ledger has an
        # empty page cache and an empty MPT node memo: every trie step is a
        # disk page fault.  The second sweep re-proves the same clues warm.
        cold_times, warm_times = [], []
        for _ in range(rounds):
            ledger = open_ledger(data_dir)
            start = time.perf_counter()
            cold = [ledger.prove_clue(clue).to_bytes() for clue in CLUES]
            cold_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            warm = [ledger.prove_clue(clue).to_bytes() for clue in CLUES]
            warm_times.append(time.perf_counter() - start)
            if warm != cold:
                raise SystemExit("warm clue proofs diverged from cold ones")
            store_stats = ledger.node_store_stats()
            ledger.close(checkpoint=False)

        # Bulk vs single anchored journal proofs on a warm ledger.
        ledger = open_ledger(data_dir)
        sample = list(range(0, ledger.size, 2))
        singles = [ledger.get_proof(jsn).to_bytes() for jsn in sample]  # warm-up
        bulk = [p.to_bytes() for p in ledger.get_proofs(sample)]
        if bulk != singles:
            raise SystemExit("bulk proofs diverged from singles — not benching a lie")
        single_times, bulk_times, ratios = [], [], []
        for _ in range(rounds):
            start = time.perf_counter()
            for jsn in sample:
                ledger.get_proof(jsn)
            single = time.perf_counter() - start

            start = time.perf_counter()
            ledger.get_proofs(sample)
            bulk_t = time.perf_counter() - start

            single_times.append(single)
            bulk_times.append(bulk_t)
            ratios.append(single / bulk_t)
        ledger.close(checkpoint=False)

    cold_med = statistics.median(cold_times)
    warm_med = statistics.median(warm_times)
    return {
        "journals": journals,
        "rounds": rounds,
        "sampled_proofs": len(sample),
        "cold_clue_proof_us": cold_med / len(CLUES) * 1e6,
        "warm_clue_proof_us": warm_med / len(CLUES) * 1e6,
        "cold_warm_ratio": cold_med / warm_med,
        "single_get_proof_us": statistics.median(single_times) / len(sample) * 1e6,
        "bulk_get_proofs_us": statistics.median(bulk_times) / len(sample) * 1e6,
        "bulk_speedup": statistics.median(ratios),
        "snapshot_open_s": statistics.median(open_times),
        "full_recover_s": statistics.median(rebuild_times),
        "recovery_speedup": statistics.median(rebuild_times) / statistics.median(open_times),
        "page_cache_hit_rate": store_stats.get("cache_hit_rate", 0.0),
        "proofs_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke scale")
    parser.add_argument("--journals", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--min-bulk-speedup",
        type=float,
        default=None,
        help="exit non-zero unless bulk_speedup meets this floor",
    )
    args = parser.parse_args(argv)

    journals = args.journals or (96 if args.quick else 384)
    rounds = args.rounds or (2 if args.quick else 3)

    report = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "quick": bool(args.quick),
        },
        "proofs": bench_proofs(journals, rounds),
    }

    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        args.out.write_text(text + "\n")

    speedup = report["proofs"]["bulk_speedup"]
    if args.min_bulk_speedup is not None and speedup < args.min_bulk_speedup:
        print(
            f"FAIL: bulk_speedup {speedup:.2f}x below floor "
            f"{args.min_bulk_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
